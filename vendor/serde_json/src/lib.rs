//! Offline vendored subset of the `serde_json` API: JSON rendering and
//! parsing over the vendored `serde` crate's [`Value`] tree.
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`] and
//! [`Error`] — the functions the workspace calls. Floats are printed
//! with Rust's shortest-roundtrip formatting so
//! `from_str(to_string(x))` reproduces `x` bit-for-bit (non-finite
//! floats render as `null`, as in real serde_json).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float form and is
                // valid JSON for finite values (e.g. `1.0`, `2.5e-9`).
                let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                depth,
                ('[', ']'),
                |out, item, ind, d| {
                    write_value(out, item, ind, d);
                },
            );
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, item), ind, d| {
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, ind, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<&str>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            out.push_str(&pad.repeat(depth + 1));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            out.push_str(&pad.repeat(depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::new("bad \\u escape (surrogate)"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("RTX \"3090\"\n".into())),
            ("mem".into(), Value::Int(25_769_803_776)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("bw".into(), Value::Float(936.2e9)),
            ("tiny".into(), Value::Float(2.5e-9)),
            ("neg".into(), Value::Int(-3)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "seq".into(),
                Value::Array(vec![Value::Int(1), Value::Float(0.1), Value::Array(vec![])]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "failed roundtrip of {text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "\"unterminated", "1 2", "nul"] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let xs = vec![1.5f64, -0.0, 1.0 / 3.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
        let r: Result<u64, String> = Err("oom".into());
        let back: Result<u64, String> = from_str(&to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}

//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so these derives are
//! hand-rolled on top of `proc_macro` alone (no `syn`/`quote`). They
//! cover exactly the shapes the workspace serializes:
//!
//! * structs with named fields (any visibility, no generics), and
//! * enums whose variants are all unit variants (serialized as their
//!   name string),
//!
//! targeting the value-tree data model of the vendored `serde` crate
//! (`Serialize::to_value` / `Deserialize::from_value`). Unsupported
//! shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed derive input: the type name plus its field or variant names.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` (or `!` `[...]`, not expected here).
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Parses the struct/enum the derive was applied to.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generics (on `{name}`)"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
            "vendored serde derive supports only brace-bodied types, found {other:?} on `{name}`"
        ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Parses `field: Type, ...`, returning the field names. Types are
/// skipped with angle-bracket depth tracking so `Vec<(A, B)>`-style
/// commas do not split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, found {tt:?}"));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parses `Variant, ...`, rejecting payload-carrying variants.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected variant name, found {tt:?}"));
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "vendored serde derive supports only unit enum variants (`{}` has a payload)",
                    variants.last().unwrap()
                ))
            }
            other => return Err(format!("expected `,` between variants, found {other:?}")),
        }
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![\n"
            );
            for f in &fields {
                let _ = writeln!(
                    out,
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            out.push_str("])\n}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            );
            for v in &variants {
                let _ = writeln!(
                    out,
                    "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),"
                );
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = ::serde::expect_object(v, {name:?})?;\n\
                 ::std::result::Result::Ok(Self {{\n"
            );
            for f in &fields {
                let _ = writeln!(out, "{f}: ::serde::field(obj, {f:?}, {name:?})?,");
            }
            out.push_str("})\n}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match ::serde::expect_str(v, {name:?})? {{\n"
            );
            for v in &variants {
                let _ = writeln!(out, "{v:?} => ::std::result::Result::Ok({name}::{v}),");
            }
            let _ = writeln!(
                out,
                "other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{other}}`\"))),"
            );
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().unwrap()
}

//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the surface the workspace actually uses: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` plus the trait pair behind them, built on an
//! explicit [`Value`] tree instead of serde's visitor architecture. The
//! companion `serde_json` vendored crate renders and parses [`Value`]s
//! as JSON.
//!
//! Supported out of the box: primitives, `String`, `Vec<T>`, `Option<T>`
//! (as JSON null), `Result<T, E>` (externally tagged, as real serde),
//! and anything deriving the traits (named-field structs and unit-only
//! enums; see `serde_derive`).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value — the crate's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree (the vendored analogue of
/// `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] tree (the vendored analogue of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Deserializes a value of `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive expansions).
// ---------------------------------------------------------------------

/// Asserts `v` is an object; `ty` names the deserialized type in errors.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not an object.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::custom(format!("expected object for `{ty}`")))
}

/// Asserts `v` is a string; `ty` names the deserialized type in errors.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not a string.
pub fn expect_str<'v>(v: &'v Value, ty: &str) -> Result<&'v str, Error> {
    v.as_str()
        .ok_or_else(|| Error::custom(format!("expected string for `{ty}`")))
}

/// Looks up `name` in `obj` and deserializes it; `ty` names the
/// containing type in errors.
///
/// # Errors
///
/// Returns an [`Error`] when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` in `{ty}`")))?;
    T::from_value(v).map_err(|e| Error::custom(format!("field `{ty}.{name}`: {e}")))
}

// ---------------------------------------------------------------------
// Serialize impls.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                i64::try_from(v).map_or(Value::UInt(v), Value::Int)
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, Serialize::to_value)
    }
}

/// Externally tagged, matching real serde: `{"Ok": v}` / `{"Err": e}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        let (tag, v) = match self {
            Ok(v) => ("Ok", v.to_value()),
            Err(e) => ("Err", e.to_value()),
        };
        Value::Object(vec![(tag.to_owned(), v)])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let err = || Error::custom(concat!("expected ", stringify!($t)));
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| err()),
                    // Accept integral floats (JSON has one number type).
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_object() {
            Some([(tag, inner)]) if tag == "Ok" => T::from_value(inner).map(Ok),
            Some([(tag, inner)]) if tag == "Err" => E::from_value(inner).map(Err),
            _ => Err(Error::custom("expected {\"Ok\": ...} or {\"Err\": ...}")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

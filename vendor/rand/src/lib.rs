//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* surface its code uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++
//! (the same family the real `SmallRng` uses on 64-bit targets), seeded
//! through SplitMix64, so streams are deterministic per seed and of
//! respectable statistical quality — but this crate makes no security
//! claims and implements nothing else.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bit source. All [`Rng`] conveniences derive from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, restricted to the `seed_from_u64` entry point
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`]:
/// uniform over all values for integers/bool, uniform in `[0, 1)` for
/// floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator behind the real
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
            let w = rng.gen_range(-8i64..-3);
            assert!((-8..-3).contains(&w));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
            if rng.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "p=0.25 of 2000 gave {trues}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

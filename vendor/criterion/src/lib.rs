//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate keeps
//! the workspace's benches compiling and runnable: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, [`black_box`],
//! and the [`macro@criterion_group!`] / [`macro@criterion_main!`]
//! macros. Measurement is a simple median over `sample_size` samples —
//! no warm-up model, outlier statistics, or HTML reports. CI only
//! compile-checks benches (`cargo bench --no-run`); treat local numbers
//! as relative indicators, exactly as the seed's bench docs already do.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(self.sample_size, &name.into(), &mut f);
    }
}

/// A named set of benchmarks sharing a `Criterion` configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.sample_size, &label, &mut f);
    }

    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.sample_size, &label, &mut |b| f(b, input));
    }

    /// Finishes the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{parameter}", name.into()))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        Self(s.into())
    }
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `f` (called repeatedly across samples).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

fn run_one(sample_size: usize, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples: Vec<u128> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher::default();
            f(&mut b);
            if b.iters == 0 {
                0
            } else {
                b.elapsed_ns / u128::from(b.iters)
            }
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{label}: median {} per iter ({sample_size} samples)",
        fmt_ns(median)
    );
}

fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Collection strategies: currently just [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length lies in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! The case-generation loop: configuration, the test RNG, and the
//! runner the [`crate::proptest!`] macro drives.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Default seed for deterministic runs (override with `PROPTEST_SEED`).
const DEFAULT_SEED: u64 = 0x676e_6e6f_7074_2d31; // "gnnopt-1"

/// Per-suite configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated across the run.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases (before the `PROPTEST_CASES` cap).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The random source strategies draw from. Wraps the vendored
/// `rand::rngs::SmallRng`; `prop_perturb` closures receive a fork.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub(crate) fn from_seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Splits off an independent generator (for `prop_perturb`).
    pub(crate) fn fork(&mut self) -> Self {
        Self::from_seed(self.next_u64())
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

/// Generates cases from a strategy and applies the test closure.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    /// Builds a runner, applying the `PROPTEST_CASES` cap and the
    /// `PROPTEST_SEED` override from the environment.
    pub fn new(mut config: Config) -> Self {
        if let Some(cap) = env_u64("PROPTEST_CASES") {
            config.cases = config.cases.min(cap.min(u64::from(u32::MAX)) as u32);
        }
        let seed = env_u64("PROPTEST_SEED").unwrap_or(DEFAULT_SEED);
        Self {
            config,
            rng: TestRng::from_seed(seed),
            seed,
        }
    }

    /// Runs `test` over `config.cases` generated inputs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable report (seed + case number + message)
    /// for the first failing case, or when `prop_assume!` rejects too
    /// many cases.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "proptest aborted: {rejected} cases rejected by prop_assume! \
                             (last: {reason}) with only {passed} passes \
                             [seed {seed:#018x}]",
                            seed = self.seed,
                        ));
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!(
                        "proptest case #{case} failed: {msg}\n\
                         (no shrinking in the vendored proptest; rerun with \
                         PROPTEST_SEED={seed:#018x} to reproduce)",
                        case = passed + rejected,
                        seed = self.seed,
                    ));
                }
            }
        }
        Ok(())
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: ignoring unparseable {name}={raw}");
            None
        }
    }
}

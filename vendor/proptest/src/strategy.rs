//! Value-generation strategies: the [`Strategy`] trait, its adapters,
//! and the built-in range / tuple / [`Just`] / [`Union`] strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value *tree*: strategies generate
/// plain values and failures are reported by seed instead of shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it with `f`,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms every generated value with `f`, which also receives a
    /// forked [`TestRng`] for extra randomness.
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Chooses uniformly among same-valued strategies (the engine behind
/// [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the property-testing surface the workspace uses:
//! the [`macro@proptest!`] macro, `prop_assert*` / [`macro@prop_assume!`] /
//! [`macro@prop_oneof!`], [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_perturb`, [`strategy::Just`], range and tuple
//! strategies, and [`collection::vec`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its RNG seed and case
//!   number instead of a minimized input. Re-run with
//!   `PROPTEST_SEED=<seed>` to reproduce the exact failing stream.
//! * **Deterministic by default.** Runs use a fixed seed so CI is
//!   reproducible; set `PROPTEST_SEED` to explore other streams.
//! * **`PROPTEST_CASES` is a hard cap**: it bounds even suites that set
//!   an explicit `ProptestConfig::with_cases`, which is how CI keeps
//!   the property suites fast.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-imported surface test files expect.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::proptest!(@run ($cfg), ($($args)*), $body);
        }
    )*};
    (@run ($cfg:expr), ($($pat:pat in $strategy:expr),+ $(,)?), $body:block) => {{
        let mut runner = $crate::test_runner::TestRunner::new($cfg);
        let strategy = ($($strategy,)+);
        if let ::std::result::Result::Err(e) = runner.run(&strategy, |($($pat,)+)| {
            $body
            ::std::result::Result::Ok(())
        }) {
            ::std::panic!("{}", e);
        }
    }};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} (at {}:{})",
                    ::std::format!($($fmt)*),
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    };
}

/// Fails the current case if the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (without failing) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly among the given same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

//! # gnnopt — coordinated computation / IO / memory optimization for GNNs
//!
//! A full reproduction of *"Understanding GNN Computational Graph: A
//! Coordinated Computation, IO, and Memory Perspective"* (MLSys 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense `f32` tensors,
//! * [`graph`] — CSR/CSC graphs, generators, datasets,
//! * [`core`] — the operator IR, autodiff and the three optimization passes
//!   (propagation-postponed reorganization, unified-thread-mapping fusion,
//!   intermediate-data recomputation),
//! * [`sim`] — the analytical GPU execution model,
//! * [`exec`] — the CPU reference executor,
//! * [`models`] — GCN / GAT / GATv2 / EdgeConv / MoNet / GraphSAGE / GIN /
//!   APPNP,
//! * [`train`] — losses, optimizers, schedules and the epoch driver,
//! * [`reorder`] — vertex reordering and neighbor grouping (runtime
//!   optimizations, §8 related work),
//! * [`mod@bench`] — the experiment harness behind every figure binary.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.
//!
//! # Building and testing
//!
//! The workspace builds with stable Rust (pinned via
//! `rust-toolchain.toml`) and has **no crates.io dependencies**: the
//! four external crates the code uses (`rand`, `serde`, `proptest`,
//! `criterion`) are vendored as API-compatible subsets under `vendor/`,
//! so a plain checkout builds fully offline.
//!
//! ```text
//! cargo build --release      # everything, including the 13 figure binaries
//! cargo test -q              # unit + integration + property + doc tests
//! cargo bench --no-run       # compile-check the criterion benches
//! cargo run --example quickstart
//! ```
//!
//! Property suites honour `PROPTEST_CASES` as a hard cap on cases (CI
//! sets 32) and `PROPTEST_SEED` to reproduce a reported failure.

pub use gnnopt_bench as bench;
pub use gnnopt_core as core;
pub use gnnopt_exec as exec;
pub use gnnopt_graph as graph;
pub use gnnopt_models as models;
pub use gnnopt_reorder as reorder;
pub use gnnopt_sim as sim;
pub use gnnopt_tensor as tensor;
pub use gnnopt_train as train;

//! `gnnopt-inspect` — the compiler's introspection CLI.
//!
//! Builds a named model, compiles it under a named preset, and dumps any
//! of: the (rewritten) IR, the kernel plan with stash/recompute decisions,
//! the lowered cluster programs (segments, tiled/full steps, storage
//! classes, per-operand views), the static memory plan (per-region
//! offsets and lifetimes at Reddit scale), a Graphviz rendering, the
//! analytical per-kernel timeline on a device, or a JSON trace. The
//! tool a downstream user reaches for first when a plan does something
//! unexpected.
//!
//! ```text
//! cargo run --release --bin gnnopt-inspect -- gat ours plan
//! cargo run --release --bin gnnopt-inspect -- edgeconv dgl dot > plan.dot
//! cargo run --release --bin gnnopt-inspect -- monet ours timeline --device 2080
//! ```

use gnnopt::core::{compile, display, CompileOptions, Phase, Preset};
use gnnopt::graph::datasets;
use gnnopt::models::*;
use gnnopt::sim::{Device, Timeline, TracePhase};
use std::process::ExitCode;

const USAGE: &str =
    "usage: gnnopt-inspect <model> <preset> <view> [--device 3090|2080] [--inference]
  model:  gat | gatv2 | edgeconv | monet | gcn | sage | gin | appnp
  preset: dgl | fusegnn | ours
  view:   ir | plan | programs | memory | dot | timeline | json";

fn model_ir(name: &str) -> Option<ModelSpec> {
    let spec = match name {
        "gat" => gat(&GatConfig::ablation(64)),
        "gatv2" => gatv2(&Gatv2Config::ablation(64)),
        "edgeconv" => edgeconv(&EdgeConvConfig::ablation()),
        "monet" => monet(&MonetConfig {
            in_dim: 16,
            layer_dims: vec![16],
            kernels: 2,
            pseudo_dim: 1,
        }),
        "gcn" => gcn(&GcnConfig::two_layer(64, 32, 7)),
        "sage" => sage(&SageConfig::mean(64, vec![32, 7])),
        "sage-pool" => sage(&SageConfig::max_pool(64, vec![32, 7])),
        "gin" => gin(&GinConfig {
            in_dim: 64,
            layer_dims: vec![32, 7],
            epsilon: 0.1,
        }),
        "appnp" => appnp(&AppnpConfig::standard(64, 32, 7)),
        _ => return None,
    };
    Some(spec.expect("model builders are infallible for valid configs"))
}

fn preset_of(name: &str) -> Option<Preset> {
    Some(match name {
        "dgl" => Preset::Dgl,
        "fusegnn" => Preset::FuseGnn,
        "ours" => Preset::Ours,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (model_name, preset_name, view) = (&args[0], &args[1], &args[2]);
    let device = if args.iter().any(|a| a == "2080") {
        Device::rtx2080()
    } else {
        Device::rtx3090()
    };
    let training = !args.iter().any(|a| a == "--inference");

    let Some(spec) = model_ir(model_name) else {
        eprintln!("unknown model '{model_name}'\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(preset) = preset_of(preset_name) else {
        eprintln!("unknown preset '{preset_name}'\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let compiled = match compile(&spec.ir, training, &CompileOptions::preset(preset)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = datasets::reddit().full_scale_stats();

    match view.as_str() {
        "ir" => print!("{}", display::dump_ir(&compiled.plan.ir)),
        "plan" => {
            print!("{}", display::dump_plan(&compiled.plan));
            println!(
                "\nreorganization rewrites: {}; stash: {} tensors; aux stash: {}",
                compiled.reorg.rewrites,
                compiled.plan.stash.len(),
                compiled.plan.aux_stash.len()
            );
        }
        "programs" => print!("{}", display::dump_programs(&compiled.plan)),
        "memory" => {
            // The planner is graph-size-parametric; render both executor
            // paths at the dataset's scale so offsets are the real ones.
            let (nv, ne) = (stats.num_vertices(), stats.num_edges());
            for fused in [false, true] {
                let mem = gnnopt::core::plan_memory(&compiled.plan, nv, ne, fused);
                print!("{}", display::dump_memory(&compiled.plan, &mem));
            }
        }
        "dot" => print!(
            "{}",
            display::to_dot(&compiled.plan.ir, Some(&compiled.plan))
        ),
        "timeline" | "json" => {
            let mut timeline = Timeline::new();
            let profiles = compiled.plan.profiles(&stats);
            for (kernel, profile) in compiled.plan.kernels.iter().zip(&profiles) {
                let phase = if compiled.plan.ir.node(kernel.nodes[0]).phase == Phase::Forward {
                    TracePhase::Forward
                } else {
                    TracePhase::Backward
                };
                let name = kernel
                    .nodes
                    .iter()
                    .map(|&n| compiled.plan.ir.node(n).name.as_str())
                    .collect::<Vec<_>>()
                    .join("+");
                timeline.record(
                    name,
                    phase,
                    *profile,
                    device.kernel_latency(profile, &stats),
                );
            }
            if view == "json" {
                println!("{}", timeline.to_json().expect("trace serializes"));
            } else {
                println!(
                    "# {} / {} on {} (Reddit full-scale stats)",
                    model_name, preset_name, device.name
                );
                println!("{timeline}");
                for phase in [TracePhase::Forward, TracePhase::Backward] {
                    let b = timeline.breakdown(phase);
                    if b.kernels > 0 {
                        println!(
                            "{phase}: {} kernels, {:.3} ms, {:.2} GiB IO",
                            b.kernels,
                            b.latency * 1e3,
                            b.io_bytes as f64 / (1u64 << 30) as f64
                        );
                    }
                }
            }
        }
        other => {
            eprintln!("unknown view '{other}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! `gnnopt-inspect` — the compiler's introspection CLI.
//!
//! Builds a named model, compiles it under a named preset, and dumps any
//! of: the (rewritten) IR, the kernel plan with stash/recompute decisions,
//! the lowered cluster programs (segments, tiled/full steps, storage
//! classes, per-operand views), the static memory plan (per-region
//! offsets and lifetimes at Reddit scale), a Graphviz rendering, the
//! analytical per-kernel timeline on a device, or a JSON trace. The
//! tool a downstream user reaches for first when a plan does something
//! unexpected.
//!
//! ```text
//! cargo run --release --bin gnnopt-inspect -- gat ours plan
//! cargo run --release --bin gnnopt-inspect -- edgeconv dgl dot > plan.dot
//! cargo run --release --bin gnnopt-inspect -- monet ours timeline --device 2080
//! ```

use gnnopt::core::{compile, display, CompileOptions, Phase, Preset};
use gnnopt::graph::datasets;
use gnnopt::models::*;
use gnnopt::sim::{Device, Timeline, TracePhase};
use std::process::ExitCode;

const USAGE: &str =
    "usage: gnnopt-inspect <model> <preset> <view> [--device 3090|2080] [--inference] [--shards N]
  model:  gat | gatv2 | edgeconv | monet | gcn | sage | gin | appnp
  preset: dgl | fusegnn | ours
  view:   ir | plan | programs | memory | dot | timeline | json | shards
  shards: partitions an RMAT-14 graph into N edge-cut shards (default 4,
          or GNNOPT_SHARDS) and prints per-shard sizes, arenas, halo rows
          and the per-kernel exchange schedule of one training step";

fn model_ir(name: &str) -> Option<ModelSpec> {
    let spec = match name {
        "gat" => gat(&GatConfig::ablation(64)),
        "gatv2" => gatv2(&Gatv2Config::ablation(64)),
        "edgeconv" => edgeconv(&EdgeConvConfig::ablation()),
        "monet" => monet(&MonetConfig {
            in_dim: 16,
            layer_dims: vec![16],
            kernels: 2,
            pseudo_dim: 1,
        }),
        "gcn" => gcn(&GcnConfig::two_layer(64, 32, 7)),
        "sage" => sage(&SageConfig::mean(64, vec![32, 7])),
        "sage-pool" => sage(&SageConfig::max_pool(64, vec![32, 7])),
        "gin" => gin(&GinConfig {
            in_dim: 64,
            layer_dims: vec![32, 7],
            epsilon: 0.1,
        }),
        "appnp" => appnp(&AppnpConfig::standard(64, 32, 7)),
        _ => return None,
    };
    Some(spec.expect("model builders are infallible for valid configs"))
}

fn preset_of(name: &str) -> Option<Preset> {
    Some(match name {
        "dgl" => Preset::Dgl,
        "fusegnn" => Preset::FuseGnn,
        "ours" => Preset::Ours,
        _ => return None,
    })
}

/// Builds a sharded session over an RMAT-14 graph, runs one training
/// step, and prints per-shard sizes, arenas and the exchange schedule.
fn inspect_shards(spec: &ModelSpec, plan: &gnnopt::core::ExecutionPlan, k: usize) -> ExitCode {
    use gnnopt::exec::{Bindings, ShardedSession};
    use gnnopt::graph::{generators, Graph};
    use gnnopt::tensor::Tensor;

    let graph = Graph::from_edge_list(&generators::rmat(14, 16, 0.57, 0.19, 0.19, 7));
    let mut sess = match ShardedSession::builder(plan, &graph).shards(k).build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sharded session failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut b = Bindings::new();
    for (name, v) in spec.init_values(&graph, 11) {
        b.insert(&name, v.clone());
    }
    let seed = Tensor::ones(&[graph.num_vertices(), spec.output_dim()]);
    if let Err(e) = sess.step(&b, &seed) {
        eprintln!("sharded step failed: {e}");
        return ExitCode::FAILURE;
    }
    let stats = sess.stats();
    println!(
        "sharded execution: {} shards over |V|={} |E|={} (rmat-14 ef16)",
        sess.num_shards(),
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "cut edges: {}  halo vertices: {}  comm: {} bytes in {} exchanges/step",
        stats.cut_edges, stats.halo_vertices, stats.comm_bytes, stats.halo_exchanges
    );
    println!("\nshard  owned_v  local_v  local_e  halo_rows  arena_bytes");
    for (s, sum) in sess.shard_summaries().iter().enumerate() {
        println!(
            "{s:>5}  {:>7}  {:>7}  {:>7}  {:>9}  {:>11}",
            sum.owned_vertices, sum.num_vertices, sum.num_edges, sum.halo_rows, sum.arena_bytes
        );
    }
    if !sess.exchanges().is_empty() {
        println!("\nexchange schedule (one step):");
        println!("kernel  phase     kind           value                     rows       bytes");
        for r in sess.exchanges() {
            println!(
                "{:>6}  {:<8}  {:<13}  {:<24}  {:>8}  {:>10}",
                r.kernel,
                if r.backward { "backward" } else { "forward" },
                format!("{:?}", r.kind),
                r.value,
                r.rows,
                r.bytes
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (model_name, preset_name, view) = (&args[0], &args[1], &args[2]);
    let device = if args.iter().any(|a| a == "2080") {
        Device::rtx2080()
    } else {
        Device::rtx3090()
    };
    let training = !args.iter().any(|a| a == "--inference");

    let Some(spec) = model_ir(model_name) else {
        eprintln!("unknown model '{model_name}'\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(preset) = preset_of(preset_name) else {
        eprintln!("unknown preset '{preset_name}'\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let compiled = match compile(&spec.ir, training, &CompileOptions::preset(preset)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = datasets::reddit().full_scale_stats();

    match view.as_str() {
        "ir" => print!("{}", display::dump_ir(&compiled.plan.ir)),
        "plan" => {
            print!("{}", display::dump_plan(&compiled.plan));
            println!(
                "\nreorganization rewrites: {}; stash: {} tensors; aux stash: {}",
                compiled.reorg.rewrites,
                compiled.plan.stash.len(),
                compiled.plan.aux_stash.len()
            );
        }
        "programs" => print!("{}", display::dump_programs(&compiled.plan)),
        "memory" => {
            // The planner is graph-size-parametric; render both executor
            // paths at the dataset's scale so offsets are the real ones.
            let (nv, ne) = (stats.num_vertices(), stats.num_edges());
            for fused in [false, true] {
                let mem = gnnopt::core::plan_memory(&compiled.plan, nv, ne, fused);
                print!("{}", display::dump_memory(&compiled.plan, &mem));
            }
        }
        "dot" => print!(
            "{}",
            display::to_dot(&compiled.plan.ir, Some(&compiled.plan))
        ),
        "shards" => {
            let k = args
                .iter()
                .position(|a| a == "--shards")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(4);
            return inspect_shards(&spec, &compiled.plan, k);
        }
        "timeline" | "json" => {
            let mut timeline = Timeline::new();
            let profiles = compiled.plan.profiles(&stats);
            for (kernel, profile) in compiled.plan.kernels.iter().zip(&profiles) {
                let phase = if compiled.plan.ir.node(kernel.nodes[0]).phase == Phase::Forward {
                    TracePhase::Forward
                } else {
                    TracePhase::Backward
                };
                let name = kernel
                    .nodes
                    .iter()
                    .map(|&n| compiled.plan.ir.node(n).name.as_str())
                    .collect::<Vec<_>>()
                    .join("+");
                timeline.record(
                    name,
                    phase,
                    *profile,
                    device.kernel_latency(profile, &stats),
                );
            }
            if view == "json" {
                println!("{}", timeline.to_json().expect("trace serializes"));
            } else {
                println!(
                    "# {} / {} on {} (Reddit full-scale stats)",
                    model_name, preset_name, device.name
                );
                println!("{timeline}");
                for phase in [TracePhase::Forward, TracePhase::Backward] {
                    let b = timeline.breakdown(phase);
                    if b.kernels > 0 {
                        println!(
                            "{phase}: {} kernels, {:.3} ms, {:.2} GiB IO",
                            b.kernels,
                            b.latency * 1e3,
                            b.io_bytes as f64 / (1u64 << 30) as f64
                        );
                    }
                }
            }
        }
        other => {
            eprintln!("unknown view '{other}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! Train a GCN on a synthetic citation network (Cora-profile graph) and
//! watch the loss fall — the full forward/loss/backward/update loop
//! running on the optimized execution plan.
//!
//! Run with `cargo run --release --example train_citation`.

use gnnopt::core::{compile, CompileOptions};
use gnnopt::graph::datasets;
use gnnopt::models::{gcn, GcnConfig};
use gnnopt::tensor::Tensor;
use gnnopt::train::{Adam, Trainer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = datasets::cora();
    let graph = ds.build_graph(1);
    println!(
        "{}-profile graph: {} vertices, {} edges, {} classes",
        ds.name,
        graph.num_vertices(),
        graph.num_edges(),
        ds.num_classes
    );

    // 2-layer GCN with a small input width (the synthetic features are
    // random; the published 1433-dim features would train identically but
    // slower on CPU).
    let spec = gcn(&GcnConfig::two_layer(64, 32, ds.num_classes))?;
    let compiled = compile(&spec.ir, true, &CompileOptions::ours())?;

    let mut values = spec.init_values(&graph, 7);
    // Symmetric-normalization edge weights 1/deg(dst).
    let weights: Vec<f32> = (0..graph.num_edges())
        .map(|e| 1.0 / graph.in_degree(graph.dst(e)).max(1) as f32)
        .collect();
    values.insert(
        "edge_weight".into(),
        Tensor::new(&[graph.num_edges(), 1], weights)?,
    );

    // Community-correlated labels: vertices inherit their class from a
    // hash of their highest-degree in-neighbour, so the task is learnable.
    let mut rng = SmallRng::seed_from_u64(3);
    let labels: Vec<usize> = (0..graph.num_vertices())
        .map(|v| {
            let hub = graph
                .in_adj()
                .neighbors(v)
                .iter()
                .max()
                .copied()
                .unwrap_or(v as u32) as usize;
            (hub + rng.gen_range(0..2usize)) % ds.num_classes
        })
        .collect();

    let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
    let mut trainer = Trainer::new(&compiled.plan, &graph, values, params, Adam::new(0.01))?;
    for epoch in 0..40 {
        let report = trainer.step(&labels)?;
        if epoch % 5 == 0 {
            println!(
                "epoch {epoch:>3}: loss {:.4}, accuracy {:.1}%  (fwd {:.1} ms, bwd {:.1} ms)",
                report.loss,
                report.accuracy * 100.0,
                report.run.forward_seconds * 1e3,
                report.run.backward_seconds * 1e3,
            );
        }
    }
    Ok(())
}

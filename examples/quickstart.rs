//! Quickstart: build a GAT, compile it with the paper's three
//! optimizations, execute it, and compare against the DGL-style baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use gnnopt::core::{compile, CompileOptions, Preset};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::{gat, GatConfig};
use gnnopt::sim::Device;
use gnnopt::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic power-law graph standing in for a citation network.
    let graph = Graph::from_edge_list(&generators::rmat(12, 16, 0.57, 0.19, 0.19, 7));
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // A 2-layer multi-head GAT in its *naive* formulation — concatenate
    // endpoint features on every edge, then apply the attention projection
    // per edge (the §4 redundancy the compiler must eliminate).
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(4, 16), (1, 7)],
        negative_slope: 0.2,
        reorganized: false,
    })?;
    let values = spec.init_values(&graph, 42);
    let mut bindings = Bindings::new();
    for (name, tensor) in &values {
        bindings.insert(name, tensor.clone());
    }

    let device = Device::rtx3090();
    let stats = graph.stats();

    for preset in [Preset::Dgl, Preset::Ours] {
        let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset))?;
        let mut session = Session::builder(&compiled.plan, &graph).build()?;
        let outputs = session.forward(&bindings)?;
        let grads = session.backward(Tensor::ones(outputs[0].shape()))?;
        let sim = compiled.plan.exec_stats(&device, &stats);
        println!(
            "\n{preset:?}: {} kernels, {} reorganization rewrites",
            compiled.plan.kernels.len(),
            compiled.reorg.rewrites
        );
        println!(
            "  simulated on {}: latency {:.3} ms, DRAM traffic {:.1} MiB, peak memory {:.1} MiB",
            device.name,
            sim.latency * 1e3,
            sim.total_io() as f64 / (1 << 20) as f64,
            sim.peak_memory as f64 / (1 << 20) as f64,
        );
        println!(
            "  executed on CPU: forward {:.1} ms, backward {:.1} ms, {} parameter gradients",
            session.stats().forward_seconds * 1e3,
            session.stats().backward_seconds * 1e3,
            grads.len()
        );
        println!("  output[0][..4] = {:?}", &outputs[0].as_slice()[..4]);
    }
    Ok(())
}

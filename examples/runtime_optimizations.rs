//! Runtime optimizations on top of the compiler: vertex reordering,
//! neighbor grouping, profile-driven mapping tuning, and a kernel
//! timeline trace.
//!
//! The paper separates computational-graph optimization (its
//! contribution) from runtime optimization à la GNNAdvisor (§8). This
//! example composes both: compile a GAT with the paper's three passes,
//! then (1) reorder the graph for gather locality, (2) flatten the degree
//! skew with neighbor grouping, (3) run a genuinely reordered session on
//! the real executor (`ExecPolicy::reorder`), (4) let the autotuner
//! re-check every kernel's thread mapping, and (5) dump the per-kernel
//! timeline.
//!
//! Run with `cargo run --release --example runtime_optimizations`.

use gnnopt::core::{autotune_mappings, compile, CompileOptions};
use gnnopt::graph::{generators, EdgeList, Graph};
use gnnopt::models::{gat, GatConfig};
use gnnopt::reorder::{locality, strategies, NeighborGrouping};
use gnnopt::sim::{Device, KernelEffects, Timeline, TracePhase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let el: EdgeList = generators::rmat(11, 24, 0.57, 0.19, 0.19, 3);
    let graph = Graph::from_edge_list(&el);
    let stats = graph.stats();
    let device = Device::rtx3090();
    println!(
        "graph: {} vertices, {} edges, max in-degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.degree_summary().max
    );

    // 1. Reordering: measure the gather hit rate of each vertex order.
    let cache_rows = 256;
    println!("\n-- gather locality ({cache_rows}-row cache) --");
    for (name, perm) in [
        ("rcm", strategies::rcm(&el)),
        ("cluster", strategies::cluster(&el, 4)),
    ] {
        let before = locality::lru_hit_rate(&el, cache_rows);
        let after = locality::lru_hit_rate(&perm.apply_to_edges(&el), cache_rows);
        println!(
            "  {name:<8} hit rate {:.1}% → {:.1}%",
            before * 100.0,
            after * 100.0
        );
    }

    // 2. Neighbor grouping: flatten the skew seen by vertex-balanced
    //    kernels.
    println!("\n-- neighbor grouping --");
    let before = stats.vertex_balanced_imbalance(device.thread_groups);
    let grouping = NeighborGrouping::build(&stats, 64);
    let after = grouping
        .grouped_stats()
        .vertex_balanced_imbalance(device.thread_groups);
    println!(
        "  imbalance {before:.2} → {after:.2} with {} groups (+{} merges)",
        grouping.num_groups(),
        grouping.merge_ops()
    );

    // 3. Reordering for real: a session whose policy names a strategy
    //    relabels its CSR graph once at build and restores the caller's
    //    vertex order on every output — same results, better locality.
    let spec = gat(&GatConfig {
        in_dim: 64,
        layers: vec![(4, 32)],
        negative_slope: 0.2,
        reorganized: false,
    })?;
    {
        use gnnopt::core::{ExecPolicy, ReorderPolicy};
        use gnnopt::exec::{Bindings, EnvOverrides, Session};
        let compiled = compile(&spec.ir, true, &CompileOptions::ours())?;
        let mut sess = Session::builder(&compiled.plan, &graph)
            .policy(ExecPolicy::auto().reordered(ReorderPolicy::Auto))
            .fused(true)
            .env(EnvOverrides::Off)
            .build()?;
        let (strategy, seconds) = sess.reorder();
        let mut bindings = Bindings::new();
        for (k, v) in spec.init_values(&graph, 7) {
            bindings.insert(&k, v);
        }
        let out = sess.forward(&bindings)?;
        let run = sess.stats();
        println!(
            "\n-- reordered session: {strategy:?} picked in {seconds:.3}s \
             (one-time), forward {:.3}s, output rows stay in caller order: {} --",
            run.forward_seconds,
            out[0].rows(),
        );
    }

    // 4. Compile with the paper's passes, then autotune the mappings.
    let mut plan = compile(&spec.ir, true, &CompileOptions::ours())?.plan;
    let report = autotune_mappings(&mut plan, &device, &stats);
    println!(
        "\n-- mapping autotune: {}/{} kernels re-mapped, {:.2}x --",
        report.switched,
        report.considered,
        report.speedup()
    );

    // 5. Timeline: simulate each kernel and record a trace.
    let mut timeline = Timeline::new();
    let profiles = plan.profiles(&stats);
    for (kernel, profile) in plan.kernels.iter().zip(&profiles) {
        let phase = if plan.ir.node(kernel.nodes[0]).phase == gnnopt::core::Phase::Forward {
            TracePhase::Forward
        } else {
            TracePhase::Backward
        };
        // Fused graph kernels benefit from the reordered gather locality.
        let latency = if profile.mapping.is_graph() {
            device.kernel_latency_with(profile, &stats, &KernelEffects::locality(0.4, 0.7))
        } else {
            device.kernel_latency(profile, &stats)
        };
        let name = kernel
            .nodes
            .iter()
            .map(|&n| plan.ir.node(n).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        timeline.record(name, phase, *profile, latency);
    }
    println!("\n{timeline}");
    let fwd = timeline.breakdown(TracePhase::Forward);
    let bwd = timeline.breakdown(TracePhase::Backward);
    println!(
        "\nforward {:.1} µs over {} kernels; backward {:.1} µs over {} kernels",
        fwd.latency * 1e6,
        fwd.kernels,
        bwd.latency * 1e6,
        bwd.kernels
    );
    // The JSON trace round-trips for external tooling.
    let json = timeline.to_json()?;
    assert_eq!(Timeline::from_json(&json)?, timeline);
    println!("trace JSON: {} bytes", json.len());
    Ok(())
}

//! EdgeConv on synthetic point clouds: build a kNN graph from a batch of
//! parametric shapes (the ModelNet40 stand-in), train a 2-layer EdgeConv
//! to classify every point's parent cloud — the workload of the paper's
//! EdgeConv experiments, end to end.
//!
//! Run with `cargo run --release --example point_cloud`.

use gnnopt::core::{compile, CompileOptions};
use gnnopt::graph::knn::PointCloud;
use gnnopt::models::{edgeconv, EdgeConvConfig};
use gnnopt::train::{Adam, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 clouds × 128 points, kNN with k = 8.
    let clouds = PointCloud::synthetic(8, 128, 11);
    let graph = clouds.knn_graph(8);
    println!(
        "point-cloud batch: {} points, kNN graph with {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Classify each point into one of 8 shape families (coarsened from
    // the 40 classes so the tiny model converges quickly on CPU).
    let classes = 8;
    let labels: Vec<usize> = (0..graph.num_vertices())
        .map(|p| clouds.labels()[p / clouds.points_per_cloud()] % classes)
        .collect();

    let spec = edgeconv(&EdgeConvConfig {
        in_dim: 3,
        layer_dims: vec![32, classes],
    })?;
    let compiled = compile(&spec.ir, true, &CompileOptions::ours())?;
    println!(
        "compiled with {} kernels ({} reorganization rewrites)",
        compiled.plan.kernels.len(),
        compiled.reorg.rewrites
    );

    let mut values = spec.init_values(&graph, 5);
    // Real coordinates as input features.
    values.insert("h".into(), clouds.points().clone());

    let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
    let mut trainer = Trainer::new(&compiled.plan, &graph, values, params, Adam::new(0.02))?;
    for epoch in 0..30 {
        let report = trainer.step(&labels)?;
        if epoch % 5 == 0 || epoch == 29 {
            println!(
                "epoch {epoch:>3}: loss {:.4}, point accuracy {:.1}%",
                report.loss,
                report.accuracy * 100.0
            );
        }
    }
    Ok(())
}

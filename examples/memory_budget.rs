//! Memory-budget planning: ask the analytical device model whether a
//! training workload fits a GPU *before* running it — the paper's
//! Figure 11 scenario ("runs on an 8 GB RTX 2080 instead of a 24 GB
//! RTX 3090") as a library call.
//!
//! Run with `cargo run --release --example memory_budget`.

use gnnopt::core::{compile, CompileOptions, Preset};
use gnnopt::graph::datasets;
use gnnopt::models::{gat, GatConfig};
use gnnopt::sim::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = datasets::reddit();
    let stats = ds.full_scale_stats();
    println!(
        "workload: 4-head GAT training on {} ({} vertices, {} edges, full scale)",
        ds.name,
        stats.num_vertices(),
        stats.num_edges()
    );

    for (preset, reorganized) in [(Preset::Dgl, true), (Preset::Ours, false)] {
        let mut cfg = GatConfig::ablation(64);
        cfg.reorganized = reorganized;
        let spec = gat(&cfg)?;
        let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset))?;
        println!("\n{preset:?}:");
        for device in [Device::rtx3090(), Device::rtx2080()] {
            match compiled.plan.check_fits(&device, &stats) {
                Ok(peak) => {
                    let sim = compiled.plan.exec_stats(&device, &stats);
                    println!(
                        "  {:<9} fits: peak {:.2} GiB of {:.0} GiB usable, est. {:.0} ms/step",
                        device.name,
                        peak as f64 / (1u64 << 30) as f64,
                        device.usable_memory() as f64 / (1u64 << 30) as f64,
                        sim.latency * 1e3
                    );
                }
                Err(oom) => println!("  {:<9} OOM: {oom}", device.name),
            }
        }
    }
    Ok(())
}

//! Sharded-execution equivalence and partitioner invariants.
//!
//! The sharding contract is **bit-identity**: for any shard count, any
//! partition strategy, any thread count and either execution path
//! (fused or reference), a [`ShardedSession`] must produce exactly the
//! same output bits and exactly the same parameter-gradient bits as the
//! plain unsharded [`Session`] — not merely close, *identical*. The
//! suite enforces that across the model zoo, on adversarial topologies
//! (an extreme hub, isolated vertices), and on property-generated
//! random model IRs; plus the structural invariants of the edge-cut
//! partitioner every exchange map is derived from.

mod common;

use common::{arb_steps, build_ir};
use gnnopt::core::{compile, CompileOptions, ExecPolicy};
use gnnopt::exec::{Bindings, EnvOverrides, Session, ShardStrategy, ShardedSession};
use gnnopt::graph::{generators, EdgeList, Graph, Partition};
use gnnopt::models::*;
use gnnopt::tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;

fn bindings_from(vals: &HashMap<String, Tensor>) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    b
}

/// Runs training on the plain session and on a k-shard session and
/// asserts exact bitwise agreement of outputs and gradients.
#[allow(clippy::too_many_arguments)]
fn assert_bit_identical(
    name: &str,
    ir: &gnnopt::core::IrGraph,
    vals: &HashMap<String, Tensor>,
    g: &Graph,
    k: usize,
    threads: usize,
    fused: bool,
    strategy: ShardStrategy,
) {
    let compiled = compile(ir, true, &CompileOptions::ours()).expect("compiles");
    let b = bindings_from(vals);
    let policy = ExecPolicy {
        threads,
        ..ExecPolicy::serial()
    };

    let mut plain = Session::builder(&compiled.plan, g)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("plain session");
    let ref_out = plain.forward(&b).expect("plain forward");
    let seed = Tensor::ones(ref_out[0].shape());
    let ref_grads = plain.backward(seed.clone()).expect("plain backward");

    let mut sharded = ShardedSession::builder(&compiled.plan, g)
        .shards(k)
        .strategy(strategy)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("sharded session");
    let out = sharded.forward(&b).expect("sharded forward");
    let grads = sharded.backward(seed).expect("sharded backward");

    assert_eq!(ref_out.len(), out.len());
    for (i, (a, s)) in ref_out.iter().zip(&out).enumerate() {
        assert_eq!(
            a.as_slice(),
            s.as_slice(),
            "{name}: output {i} diverges at k={k} threads={threads} fused={fused}"
        );
    }
    assert_eq!(ref_grads.len(), grads.len(), "{name}: grad key sets differ");
    for (key, grad) in &ref_grads {
        assert_eq!(
            grad.as_slice(),
            grads[key].as_slice(),
            "{name}: grad '{key}' diverges at k={k} threads={threads} fused={fused}"
        );
    }
}

fn zoo() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("gcn", gcn(&GcnConfig::two_layer(6, 8, 3)).unwrap()),
        (
            "gat",
            gat(&GatConfig {
                in_dim: 5,
                layers: vec![(2, 4)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        ("sage-max", sage(&SageConfig::max_pool(5, vec![6])).unwrap()),
        (
            "gin",
            gin(&GinConfig {
                in_dim: 4,
                layer_dims: vec![5, 3],
                epsilon: 0.1,
            })
            .unwrap(),
        ),
        ("monet", monet(&MonetConfig::figure7(4, 3, 2, 2)).unwrap()),
    ]
}

#[test]
fn zoo_bit_identical_across_shard_counts() {
    let g = Graph::from_edge_list(&generators::rmat(6, 6, 0.55, 0.2, 0.2, 17));
    for (name, spec) in zoo() {
        let vals = spec.init_values(&g, 23);
        for k in [1, 2, 4] {
            assert_bit_identical(name, &spec.ir, &vals, &g, k, 1, false, ShardStrategy::Bfs);
        }
        // One fused and one multi-threaded leg per model at k=2.
        assert_bit_identical(name, &spec.ir, &vals, &g, 2, 1, true, ShardStrategy::Bfs);
        assert_bit_identical(name, &spec.ir, &vals, &g, 2, 4, false, ShardStrategy::Bfs);
    }
}

#[test]
fn zoo_bit_identical_across_strategies() {
    let g = Graph::from_edge_list(&generators::planted_partition(48, 4, 7.0, 0.8, 5));
    for (name, spec) in zoo() {
        let vals = spec.init_values(&g, 31);
        for strategy in [
            ShardStrategy::Bfs,
            ShardStrategy::Contiguous,
            ShardStrategy::Locality,
        ] {
            assert_bit_identical(name, &spec.ir, &vals, &g, 3, 1, false, strategy);
        }
    }
}

#[test]
fn extreme_hub_and_isolated_vertices_bit_identical() {
    // A star: one hub whose halo appears in every other shard; plus
    // trailing isolated vertices that no edge touches (empty groups on
    // every shard that owns some of them).
    let mut pairs: Vec<(u32, u32)> = (1..25u32).map(|v| (v, 0)).collect();
    pairs.extend((1..25u32).map(|v| (0, v)));
    let g = Graph::from_edge_list(&EdgeList::from_pairs(32, &pairs));
    for (name, spec) in [
        ("gcn", gcn(&GcnConfig::two_layer(4, 5, 2)).unwrap()),
        (
            "gat",
            gat(&GatConfig {
                in_dim: 4,
                layers: vec![(2, 3)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        ("sage-max", sage(&SageConfig::max_pool(4, vec![4])).unwrap()),
    ] {
        let vals = spec.init_values(&g, 41);
        for k in [2, 4] {
            assert_bit_identical(name, &spec.ir, &vals, &g, k, 1, false, ShardStrategy::Bfs);
        }
    }
}

/// `GNNOPT_SHARDS` picks the shard count when the builder doesn't pin
/// one — and whatever count it picks must stay bit-identical. Under the
/// CI `GNNOPT_SHARDS=2` leg this test genuinely runs sharded; with the
/// variable unset it pins the single-shard fast path.
#[test]
fn env_shard_count_is_honored() {
    let g = Graph::from_edge_list(&generators::rmat(6, 6, 0.55, 0.2, 0.2, 29));
    let expected = std::env::var("GNNOPT_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, g.num_vertices());
    let spec = gcn(&GcnConfig::two_layer(5, 6, 3)).unwrap();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let vals = spec.init_values(&g, 37);
    let b = bindings_from(&vals);

    // The reference session must reorder exactly like the sharded one,
    // or a `GNNOPT_REORDER` CI leg pushes the comparison out of the
    // sharding contract (exact bits) into the reordering contract
    // (param grads equal only up to FP reassociation): the single-shard
    // fast path honors the ambient env (so resolve it Loud here too),
    // while the multi-shard driver pins reordering off (so pin it off
    // with `EnvOverrides::Off` — every other env knob is bit-exact).
    let mut plain_builder = Session::builder(&compiled.plan, &g)
        .policy(ExecPolicy::serial())
        .fused(false);
    if expected > 1 {
        plain_builder = plain_builder.env(EnvOverrides::Off);
    }
    let mut plain = plain_builder.build().unwrap();
    let ref_out = plain.forward(&b).unwrap();
    let seed = Tensor::ones(ref_out[0].shape());
    let ref_grads = plain.backward(seed.clone()).unwrap();

    // No .shards() pin: the count comes from the environment (Loud).
    let mut sharded = ShardedSession::builder(&compiled.plan, &g)
        .policy(ExecPolicy::serial())
        .fused(false)
        .build()
        .unwrap();
    assert_eq!(sharded.num_shards(), expected, "GNNOPT_SHARDS not honored");
    let out = sharded.forward(&b).unwrap();
    let grads = sharded.backward(seed).unwrap();
    for (a, s) in ref_out.iter().zip(&out) {
        assert_eq!(a.as_slice(), s.as_slice());
    }
    for (key, grad) in &ref_grads {
        assert_eq!(grad.as_slice(), grads[key].as_slice(), "grad '{key}'");
    }
}

/// Arbitrary multigraphs with isolated trailing vertices, as in the
/// cross-preset property suite.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..24, 0usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..70)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition invariants: every vertex lands in exactly one shard,
    /// shard sizes tile the vertex set, no shard is empty when it could
    /// be non-empty, and the cut-edge count equals a direct recount.
    #[test]
    fn partition_invariants(g in arb_graph(), k in 1usize..6) {
        let n = g.num_vertices();
        for part in [
            Partition::edge_cut_bfs(&g, k),
            Partition::contiguous(&g, k),
        ] {
            let ks = part.num_shards();
            prop_assert!(ks >= 1 && ks <= n.max(1));
            // Exactly-one-shard membership: owner() is total and the
            // per-shard sizes recount it.
            let mut sizes = vec![0usize; ks];
            for v in 0..n {
                let s = part.owner_of(v);
                prop_assert!(s < ks, "owner out of range");
                sizes[s] += 1;
            }
            prop_assert_eq!(&sizes, &part.shard_sizes());
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
            if n >= ks {
                prop_assert!(sizes.iter().all(|&c| c > 0), "empty shard with n >= k");
            }
            // Cut edges: direct recount over the edge list.
            let recount = (0..g.num_edges())
                .filter(|&e| part.owner_of(g.src(e)) != part.owner_of(g.dst(e)))
                .count() as u64;
            prop_assert_eq!(part.cut_edges(&g), recount);
        }
    }

    /// Shard summaries are consistent with the partition: owned counts
    /// tile |V|, local edges cover every edge at least once, and halo
    /// rows only ever name non-owned local vertices.
    #[test]
    fn shard_summaries_consistent(g in arb_graph(), k in 2usize..5) {
        let spec = gcn(&GcnConfig::two_layer(3, 4, 2)).unwrap();
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let sharded = ShardedSession::builder(&compiled.plan, &g)
            .shards(k)
            .policy(ExecPolicy::serial())
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let sums = sharded.shard_summaries();
        prop_assert_eq!(sums.len(), sharded.num_shards());
        prop_assert_eq!(
            sums.iter().map(|s| s.owned_vertices).sum::<usize>(),
            g.num_vertices()
        );
        for s in &sums {
            prop_assert!(s.num_vertices >= s.owned_vertices);
            prop_assert!(s.halo_rows <= s.num_vertices - s.owned_vertices,
                "halo rows must be non-owned local vertices");
            prop_assert!(s.arena_bytes > 0);
        }
        // Every edge lives in at least the shard owning its destination.
        prop_assert!(sums.iter().map(|s| s.num_edges).sum::<usize>() >= g.num_edges());
    }

    /// The strongest form: property-generated model IRs (scatter /
    /// softmax / max-gather / linear chains) stay bit-identical under
    /// sharding — outputs and every parameter gradient.
    #[test]
    fn random_ir_bit_identical(
        steps in arb_steps(),
        g in arb_graph(),
        seed in 0u64..500,
        k in 2usize..5,
        fused_bit in 0u8..2,
    ) {
        let fused = fused_bit == 1;
        let ir = build_ir(&steps, 3);
        let compiled = compile(&ir, true, &CompileOptions::ours()).expect("compiles");
        let mut vals = HashMap::new();
        vals.insert(
            "h".to_string(),
            Tensor::from_fn(&[g.num_vertices(), 3], |i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f32 - 48.0) * 0.021
            }),
        );
        vals.insert(
            "ew".to_string(),
            Tensor::from_fn(&[g.num_edges(), 3], |i| {
                (((i as u64).wrapping_mul(40503).wrapping_add(seed) % 89) as f32 - 44.0) * 0.017
            }),
        );
        for n in compiled.plan.ir.nodes() {
            if n.kind == gnnopt::core::OpKind::Param {
                vals.insert(
                    n.name.clone(),
                    Tensor::from_fn(&[n.dim.heads, n.dim.feat], |i| {
                        (((i as u64).wrapping_mul(69069).wrapping_add(seed) % 83) as f32 - 41.0) * 0.019
                    }),
                );
            }
        }
        let b = bindings_from(&vals);

        let mut plain = Session::builder(&compiled.plan, &g)
            .policy(ExecPolicy::serial())
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let ref_out = plain.forward(&b).unwrap();
        let seed_t = Tensor::ones(ref_out[0].shape());
        let ref_grads = plain.backward(seed_t.clone()).unwrap();

        let mut sharded = ShardedSession::builder(&compiled.plan, &g)
            .shards(k)
            .policy(ExecPolicy::serial())
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let out = sharded.forward(&b).unwrap();
        let grads = sharded.backward(seed_t).unwrap();

        for (a, s) in ref_out.iter().zip(&out) {
            prop_assert_eq!(a.as_slice(), s.as_slice(), "forward outputs diverge");
        }
        prop_assert_eq!(ref_grads.len(), grads.len());
        for (key, grad) in &ref_grads {
            prop_assert_eq!(grad.as_slice(), grads[key].as_slice(), "grad '{}' diverges", key);
        }
    }
}

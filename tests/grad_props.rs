//! Gradient property tests on randomly generated model IRs: the
//! autodiff-derived parameter gradients (executed through the *fully
//! optimized* plan — reorganization + fusion + recomputation) must match
//! central finite differences, and every preset must agree with the DGL
//! baseline on the same random model.

mod common;

use common::{arb_steps, build_ir};
use gnnopt::core::{compile, CompileOptions, Preset};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::tensor::{Tensor, XavierInit};
use proptest::prelude::*;
use std::collections::HashMap;

fn leaf_values(ir: &gnnopt::core::IrGraph, g: &Graph, seed: u64) -> HashMap<String, Tensor> {
    let mut init = XavierInit::new(seed);
    let mut vals = HashMap::new();
    for n in ir.nodes() {
        match n.kind {
            gnnopt::core::OpKind::InputVertex => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_vertices(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::InputEdge => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_edges(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::Param => {
                vals.insert(n.name.clone(), init.matrix(n.dim.heads, n.dim.feat));
            }
            _ => {}
        }
    }
    vals
}

fn bindings_from(vals: &HashMap<String, Tensor>) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// FD check of the first element of every parameter gradient, run
    /// through the fully optimized plan.
    #[test]
    fn optimized_gradients_match_finite_differences(
        steps in arb_steps(),
        seed in 0u64..500,
    ) {
        let ir = build_ir(&steps, 3);
        let g = Graph::from_edge_list(&generators::erdos_renyi(12, 40, seed));
        let vals = leaf_values(&ir, &g, seed);
        let compiled = compile(&ir, true, &CompileOptions::ours()).expect("compiles");

        let forward_sum = |vals: &HashMap<String, Tensor>| -> f32 {
            let mut sess = Session::builder(&compiled.plan, &g).build().expect("session");
            sess.forward(&bindings_from(vals)).expect("forward")[0].sum_all()
        };
        let mut sess = Session::builder(&compiled.plan, &g).build().expect("session");
        let out = sess.forward(&bindings_from(&vals)).expect("forward");
        let grads = sess
            .backward(Tensor::ones(out[0].shape()))
            .expect("backward");

        let h = 1e-2f32;
        for (pname, grad) in &grads {
            let mut probe = vals.clone();
            let base = probe[pname].as_slice()[0];
            probe.get_mut(pname).unwrap().as_mut_slice()[0] = base + h;
            let fp = forward_sum(&probe);
            probe.get_mut(pname).unwrap().as_mut_slice()[0] = base - h;
            let fm = forward_sum(&probe);
            let numeric = (fp - fm) / (2.0 * h);
            let analytic = grad.as_slice()[0];
            // LeakyReLU kinks and f32 give FD limited precision; a
            // relative band is the meaningful check.
            prop_assert!(
                (numeric - analytic).abs() <= 0.15 * (1.0 + analytic.abs().max(numeric.abs())),
                "fd grad of '{pname}' = {numeric}, analytic = {analytic} (steps {steps:?})"
            );
        }
    }

    /// All presets produce identical outputs and gradients on random IRs.
    #[test]
    fn presets_agree_on_random_models(
        steps in arb_steps(),
        seed in 0u64..500,
    ) {
        let ir = build_ir(&steps, 4);
        let g = Graph::from_edge_list(&generators::erdos_renyi(10, 30, seed));
        let vals = leaf_values(&ir, &g, seed);

        let mut results = Vec::new();
        for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
            let compiled =
                compile(&ir, true, &CompileOptions::preset(preset)).expect("compiles");
            let mut sess = Session::builder(&compiled.plan, &g).build().expect("session");
            let out = sess.forward(&bindings_from(&vals)).expect("forward");
            let grads = sess
                .backward(Tensor::ones(out[0].shape()))
                .expect("backward");
            results.push((out[0].clone(), grads));
        }
        let (base_out, base_grads) = &results[0];
        for (out, grads) in &results[1..] {
            prop_assert!(
                out.allclose_with(base_out, 1e-4, 1e-4),
                "outputs diverge by {}",
                out.max_abs_diff(base_out)
            );
            prop_assert_eq!(grads.len(), base_grads.len());
            for (k, v) in grads {
                prop_assert!(
                    v.allclose_with(&base_grads[k], 1e-3, 1e-3),
                    "grad '{}' diverges by {}",
                    k,
                    v.max_abs_diff(&base_grads[k])
                );
            }
        }
    }
}

//! Cross-crate integration tests: every optimization preset must be
//! numerically equivalent to the DGL baseline — same outputs, same
//! parameter gradients — on every model, and gradients must match finite
//! differences. This is the soundness contract of the paper's three
//! rewrites (reorganization §4, fusion §5, recomputation §6).

use gnnopt::core::{compile, CompileOptions, IrGraph, Preset};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::*;
use gnnopt::tensor::Tensor;
use std::collections::HashMap;

fn bindings_from(vals: &HashMap<String, Tensor>) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    b
}

/// Runs training (forward + backward) under a preset.
fn run(
    ir: &IrGraph,
    vals: &HashMap<String, Tensor>,
    g: &Graph,
    preset: Preset,
) -> (Tensor, HashMap<String, Tensor>, usize) {
    let compiled = compile(ir, true, &CompileOptions::preset(preset)).expect("compiles");
    let mut sess = Session::builder(&compiled.plan, g)
        .build()
        .expect("session");
    let out = sess.forward(&bindings_from(vals)).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out[0].clone(), grads, compiled.plan.kernels.len())
}

fn assert_presets_agree(name: &str, ir: &IrGraph, vals: &HashMap<String, Tensor>, g: &Graph) {
    let (out_ours, grads_ours, k_ours) = run(ir, vals, g, Preset::Ours);
    for preset in [Preset::Dgl, Preset::FuseGnn] {
        let (out, grads, k_base) = run(ir, vals, g, preset);
        assert!(
            out.allclose(&out_ours),
            "{name}: {preset:?} output differs by {}",
            out.max_abs_diff(&out_ours)
        );
        assert_eq!(
            grads.len(),
            grads_ours.len(),
            "{name}: grad key sets differ"
        );
        for (key, grad) in &grads {
            assert!(
                grad.allclose_with(&grads_ours[key], 1e-3, 1e-3),
                "{name}: {preset:?} grad '{key}' differs by {}",
                grad.max_abs_diff(&grads_ours[key])
            );
        }
        assert!(
            k_ours <= k_base,
            "{name}: ours must not launch more kernels ({k_ours} vs {k_base})"
        );
    }
}

/// Deterministically perturbs every bound value with a small
/// low-discrepancy offset. ReLU/LeakyReLU losses are non-smooth exactly
/// where a pre-activation sits on its kink; structured inputs can land
/// there (and a finite-difference probe straddling a kink matches no
/// subgradient). Nudging every input by a distinct irrational-step
/// amount moves the pre-activations off those ties, so the gradient
/// check below probes *every* coordinate instead of skipping any.
fn nudge_off_kinks(vals: &HashMap<String, Tensor>) -> HashMap<String, Tensor> {
    let mut names: Vec<&String> = vals.keys().collect();
    names.sort(); // deterministic offsets regardless of hash order
    let mut out = HashMap::new();
    let mut idx = 0u64;
    for name in names {
        let mut t = vals[name].clone();
        for v in t.as_mut_slice() {
            idx += 1;
            // Golden-ratio sequence in (-0.05, 0.05): dense, never zero.
            let u = (idx as f32 * 0.618_034).fract();
            *v += (u - 0.5) * 0.1;
        }
        out.insert(name.clone(), t);
    }
    out
}

/// Finite-difference check of the first element of every parameter grad.
/// Inputs are nudged off ReLU kinks first (see [`nudge_off_kinks`]); no
/// coordinate is skipped.
fn assert_grad_matches_fd(name: &str, ir: &IrGraph, vals: &HashMap<String, Tensor>, g: &Graph) {
    let vals = &nudge_off_kinks(vals);
    let compiled = compile(ir, true, &CompileOptions::ours()).expect("compiles");
    let loss = |vals: &HashMap<String, Tensor>| -> f32 {
        let mut sess = Session::builder(&compiled.plan, g)
            .build()
            .expect("session");
        sess.forward(&bindings_from(vals)).expect("forward")[0].sum_all()
    };
    let mut sess = Session::builder(&compiled.plan, g)
        .build()
        .expect("session");
    let out = sess.forward(&bindings_from(vals)).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    let h = 2e-2f32;
    for (pname, grad) in &grads {
        let mut probe = vals.clone();
        let base = probe[pname].as_slice()[0];
        probe.get_mut(pname).unwrap().as_mut_slice()[0] = base + h;
        let lp = loss(&probe);
        probe.get_mut(pname).unwrap().as_mut_slice()[0] = base - h;
        let lm = loss(&probe);
        let numeric = (lp - lm) / (2.0 * h);
        let analytic = grad.as_slice()[0];
        assert!(
            (numeric - analytic).abs() < 2e-1 * (1.0 + analytic.abs()),
            "{name}: fd grad of '{pname}' = {numeric}, analytic = {analytic}"
        );
    }
}

fn test_graph() -> Graph {
    Graph::from_edge_list(&generators::erdos_renyi(30, 150, 7))
}

#[test]
fn gat_presets_equivalent() {
    let g = test_graph();
    let spec = gat(&GatConfig {
        in_dim: 6,
        layers: vec![(2, 5), (1, 3)],
        negative_slope: 0.2,
        reorganized: false,
    })
    .unwrap();
    let vals = spec.init_values(&g, 3);
    assert_presets_agree("GAT", &spec.ir, &vals, &g);
    assert_grad_matches_fd("GAT", &spec.ir, &vals, &g);
}

#[test]
fn gat_naive_equals_hand_reorganized() {
    // The reorganization pass applied to the naive IR must agree with the
    // hand-reorganized build (DGL's formulation) numerically.
    let g = test_graph();
    let naive = gat(&GatConfig {
        in_dim: 6,
        layers: vec![(2, 4)],
        negative_slope: 0.2,
        reorganized: false,
    })
    .unwrap();
    let vals = naive.init_values(&g, 9);
    let (out_naive, _, _) = run(&naive.ir, &vals, &g, Preset::Ours);
    let (out_base, _, _) = run(&naive.ir, &vals, &g, Preset::Dgl);
    assert!(out_naive.allclose(&out_base));
}

#[test]
fn edgeconv_presets_equivalent() {
    let g = test_graph();
    let spec = edgeconv(&EdgeConvConfig {
        in_dim: 3,
        layer_dims: vec![8, 4],
    })
    .unwrap();
    let vals = spec.init_values(&g, 4);
    assert_presets_agree("EdgeConv", &spec.ir, &vals, &g);
    assert_grad_matches_fd("EdgeConv", &spec.ir, &vals, &g);
}

#[test]
fn monet_presets_equivalent() {
    let g = test_graph();
    let spec = monet(&MonetConfig {
        in_dim: 5,
        layer_dims: vec![6, 3],
        kernels: 2,
        pseudo_dim: 2,
    })
    .unwrap();
    let vals = spec.init_values(&g, 5);
    assert_presets_agree("MoNet", &spec.ir, &vals, &g);
    assert_grad_matches_fd("MoNet", &spec.ir, &vals, &g);
}

#[test]
fn gcn_presets_equivalent() {
    let g = test_graph();
    let spec = gcn(&GcnConfig::two_layer(4, 8, 3)).unwrap();
    let vals = spec.init_values(&g, 6);
    assert_presets_agree("GCN", &spec.ir, &vals, &g);
    assert_grad_matches_fd("GCN", &spec.ir, &vals, &g);
}

#[test]
fn gin_presets_equivalent() {
    let g = test_graph();
    let spec = gin(&GinConfig {
        in_dim: 4,
        layer_dims: vec![8, 3],
        epsilon: 0.2,
    })
    .unwrap();
    let vals = spec.init_values(&g, 8);
    assert_presets_agree("GIN", &spec.ir, &vals, &g);
    assert_grad_matches_fd("GIN", &spec.ir, &vals, &g);
}

#[test]
fn sage_presets_equivalent() {
    let g = test_graph();
    let spec = sage(&SageConfig::mean(4, vec![8, 3])).unwrap();
    let vals = spec.init_values(&g, 7);
    assert_presets_agree("SAGE", &spec.ir, &vals, &g);
    assert_grad_matches_fd("SAGE", &spec.ir, &vals, &g);
}

#[test]
fn sage_max_pool_presets_equivalent() {
    let g = test_graph();
    let spec = sage(&SageConfig::max_pool(4, vec![8, 3])).unwrap();
    let vals = spec.init_values(&g, 7);
    assert_presets_agree("SAGE-pool", &spec.ir, &vals, &g);
    assert_grad_matches_fd("SAGE-pool", &spec.ir, &vals, &g);
}

#[test]
fn gatv2_presets_equivalent() {
    let g = test_graph();
    let spec = gatv2(&Gatv2Config {
        in_dim: 5,
        layers: vec![(2, 4), (1, 3)],
        negative_slope: 0.2,
    })
    .unwrap();
    let vals = spec.init_values(&g, 12);
    assert_presets_agree("GATv2", &spec.ir, &vals, &g);
    assert_grad_matches_fd("GATv2", &spec.ir, &vals, &g);
}

#[test]
fn appnp_presets_equivalent() {
    let g = test_graph();
    let spec = appnp(&AppnpConfig {
        in_dim: 5,
        hidden: 8,
        classes: 3,
        hops: 4,
        alpha: 0.15,
    })
    .unwrap();
    let vals = spec.init_values(&g, 13);
    assert_presets_agree("APPNP", &spec.ir, &vals, &g);
    assert_grad_matches_fd("APPNP", &spec.ir, &vals, &g);
}

#[test]
fn equivalence_holds_on_skewed_and_degenerate_graphs() {
    // Star graph (extreme skew) and ring (no skew), plus isolated
    // vertices via a sparse random graph.
    let spec = gat(&GatConfig {
        in_dim: 4,
        layers: vec![(1, 4)],
        negative_slope: 0.2,
        reorganized: false,
    })
    .unwrap();
    for el in [
        generators::star(16),
        generators::ring(16),
        generators::erdos_renyi(16, 20, 3),
    ] {
        let g = Graph::from_edge_list(&el);
        let vals = spec.init_values(&g, 11);
        assert_presets_agree("GAT/topology", &spec.ir, &vals, &g);
    }
}

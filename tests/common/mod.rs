//! Shared helpers for integration tests: a random-model-IR generator used
//! by the fusion-invariant and gradient property suites.

use gnnopt::core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};
use proptest::prelude::*;

/// One randomly chosen IR-building step. The builder tracks the current
/// tensor and its space and applies only steps legal in that space.
#[derive(Debug, Clone, Copy)]
pub enum Step {
    ScatterSub,
    ScatterCopyU,
    MulEdgeWeight,
    Unary,
    EdgeSoftmax,
    GatherSum,
    GatherMax,
    Linear,
}

/// A strategy over random step sequences.
pub fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Step::ScatterSub),
            Just(Step::ScatterCopyU),
            Just(Step::MulEdgeWeight),
            Just(Step::Unary),
            Just(Step::EdgeSoftmax),
            Just(Step::GatherSum),
            Just(Step::GatherMax),
            Just(Step::Linear),
        ],
        1..14,
    )
}

/// Assembles a valid IR from the step list; steps illegal in the current
/// space are skipped. The output is always a vertex tensor and the graph
/// always contains at least one parameter (so training compiles).
pub fn build_ir(steps: &[Step], feat: usize) -> IrGraph {
    let mut g = IrGraph::new();
    let h = g.input_vertex("h", Dim::flat(feat));
    let ew = g.input_edge("ew", Dim::flat(feat));
    let mut cur = h;
    let mut linear_count = 0;
    for (i, s) in steps.iter().enumerate() {
        let space = g.node(cur).space;
        cur = match (s, space) {
            (Step::ScatterSub, Space::Vertex) => {
                g.scatter(ScatterFn::Bin(BinaryFn::Sub), cur, cur).unwrap()
            }
            (Step::ScatterCopyU, Space::Vertex) => g.scatter(ScatterFn::CopyU, cur, cur).unwrap(),
            (Step::MulEdgeWeight, Space::Edge) => g.binary(BinaryFn::Mul, cur, ew).unwrap(),
            (Step::Unary, _) => g.unary(UnaryFn::LeakyRelu(0.1), cur).unwrap(),
            (Step::EdgeSoftmax, Space::Edge) => g.edge_softmax(cur).unwrap(),
            (Step::GatherSum, Space::Edge) => {
                g.gather(ReduceFn::Sum, EdgeGroup::ByDst, cur).unwrap()
            }
            (Step::GatherMax, Space::Edge) => {
                g.gather(ReduceFn::Max, EdgeGroup::ByDst, cur).unwrap()
            }
            (Step::Linear, _) => {
                let w = g.param(&format!("w{i}"), feat, feat);
                linear_count += 1;
                g.linear(cur, w).unwrap()
            }
            _ => cur, // step illegal in this space: skip
        };
    }
    if g.node(cur).space == Space::Edge {
        cur = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, cur).unwrap();
    }
    if linear_count == 0 {
        // Guarantee a parameter so the training compile path also works.
        let w = g.param("w_out", feat, feat);
        cur = g.linear(cur, w).unwrap();
    }
    g.mark_output(cur);
    g
}

//! Plan-level invariants that hold for every model × preset × topology:
//! schedules respect dependencies, the memory replay is consistent with
//! the executor's measured live set, stash contents obey the §6 policy,
//! and optimized plans strictly reduce simulated cost.

use gnnopt::core::{compile, CompileOptions, Preset, Space};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::*;
use gnnopt::sim::Device;
use gnnopt::tensor::Tensor;

fn all_specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "gat",
            gat(&GatConfig {
                in_dim: 8,
                layers: vec![(2, 6)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        (
            "edgeconv",
            edgeconv(&EdgeConvConfig {
                in_dim: 4,
                layer_dims: vec![8],
            })
            .unwrap(),
        ),
        (
            "monet",
            monet(&MonetConfig {
                in_dim: 6,
                layer_dims: vec![4],
                kernels: 2,
                pseudo_dim: 2,
            })
            .unwrap(),
        ),
        ("gcn", gcn(&GcnConfig::two_layer(4, 6, 3)).unwrap()),
        ("sage", sage(&SageConfig::mean(4, vec![6])).unwrap()),
        (
            "sage-pool",
            sage(&SageConfig::max_pool(4, vec![6])).unwrap(),
        ),
    ]
}

#[test]
fn schedules_respect_dependencies() {
    for (name, spec) in all_specs() {
        for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
            for training in [false, true] {
                let compiled =
                    compile(&spec.ir, training, &CompileOptions::preset(preset)).unwrap();
                let plan = &compiled.plan;
                let mut seen: Vec<usize> = Vec::new();
                for k in &plan.kernels {
                    for &n in k.nodes.iter().chain(&k.recompute) {
                        for &i in &plan.ir.node(n).inputs {
                            let is_leaf = plan.ir.node(i).inputs.is_empty()
                                && matches!(
                                    plan.ir.node(i).kind,
                                    gnnopt::core::OpKind::InputVertex
                                        | gnnopt::core::OpKind::InputEdge
                                        | gnnopt::core::OpKind::Param
                                        | gnnopt::core::OpKind::GradSeed
                                );
                            assert!(
                                is_leaf
                                    || seen.contains(&i)
                                    || k.nodes.contains(&i)
                                    || k.recompute.contains(&i),
                                "{name}/{preset:?}: node {i} used before production"
                            );
                        }
                    }
                    seen.extend(k.nodes.iter().copied());
                    seen.extend(k.recompute.iter().copied());
                }
            }
        }
    }
}

#[test]
fn ours_stash_holds_no_edge_tensors() {
    // §6: with recomputation, nothing O(|E|) survives the boundary
    // (edge-softmax keeps only O(|V|) auxiliaries).
    for (name, spec) in all_specs() {
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        for &s in &compiled.plan.stash {
            assert_ne!(
                compiled.plan.ir.node(s).space,
                Space::Edge,
                "{name}: edge tensor '{}' stashed under full recomputation",
                compiled.plan.ir.node(s).name
            );
        }
    }
}

#[test]
fn simulated_cost_never_worse_than_dgl() {
    let device = Device::rtx3090();
    let stats = gnnopt::graph::GraphStats::synthesize_power_law(5000, 30.0, 0.8);
    for (name, spec) in all_specs() {
        let dgl = compile(&spec.ir, true, &CompileOptions::dgl()).unwrap();
        let ours = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let sd = dgl.plan.exec_stats(&device, &stats);
        let so = ours.plan.exec_stats(&device, &stats);
        assert!(
            so.latency <= sd.latency * 1.02,
            "{name}: ours latency {} vs dgl {}",
            so.latency,
            sd.latency
        );
        // Strict for the paper's models (edge-tensor dominated); SAGE is
        // vertex-dominated and a fused kernel births all its O(|V|)
        // outputs at one schedule step, allowing a small transient bump.
        let bound = if name.starts_with("sage") {
            sd.peak_memory * 5 / 4
        } else {
            sd.peak_memory
        };
        assert!(
            so.peak_memory <= bound,
            "{name}: ours memory {} vs dgl {}",
            so.peak_memory,
            sd.peak_memory
        );
        assert!(so.kernels <= sd.kernels, "{name}: more kernels than DGL");
    }
}

#[test]
fn executor_live_set_tracks_plan_stash() {
    // The executor's measured boundary bytes must stay within the plan's
    // analytic stash accounting (same graph, so both are exact counts).
    let g = Graph::from_edge_list(&generators::erdos_renyi(64, 640, 3));
    let stats = g.stats();
    for (name, spec) in all_specs() {
        let vals = spec.init_values(&g, 5);
        for preset in [Preset::Dgl, Preset::Ours] {
            let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset)).unwrap();
            let (_, stash_bytes) = compiled.plan.memory_replay(&stats, u64::MAX).unwrap();
            let mut b = Bindings::new();
            for (k, v) in &vals {
                b.insert(k, v.clone());
            }
            let mut sess = Session::builder(&compiled.plan, &g).build().unwrap();
            let out = sess.forward(&b).unwrap();
            let measured = sess.stats().boundary_bytes;
            sess.backward(Tensor::ones(out[0].shape())).unwrap();
            // Measured boundary additionally holds inputs/params/outputs;
            // the plan's stash figure must be a lower bound.
            assert!(
                stash_bytes <= measured,
                "{name}/{preset:?}: plan stash {stash_bytes} exceeds measured boundary {measured}"
            );
        }
    }
}

#[test]
fn memory_plan_never_aliases_and_bounds_the_live_set() {
    // Static memory planner invariants, zoo-wide: two regions may share
    // arena bytes only if their [birth, death] intervals are disjoint,
    // every region lies inside the arena and covers its request, and
    // `arena_bytes` dominates the tightest-possible live-set peak.
    use gnnopt::core::{plan_memory, MemRegion};
    let live = |r: &MemRegion, p: usize| r.birth <= p && (r.death == usize::MAX || p <= r.death);
    for (name, spec) in all_specs() {
        for preset in [Preset::Dgl, Preset::Ours] {
            for training in [false, true] {
                for fused in [false, true] {
                    let compiled =
                        compile(&spec.ir, training, &CompileOptions::preset(preset)).unwrap();
                    let mp = plan_memory(&compiled.plan, 96, 960, fused);
                    assert!(
                        mp.arena_bytes >= mp.peak_live_bytes(),
                        "{name}/{preset:?}: arena {} below live-set peak {}",
                        mp.arena_bytes,
                        mp.peak_live_bytes()
                    );
                    for r in &mp.regions {
                        assert!(
                            r.offset + r.bytes <= mp.arena_bytes,
                            "{name}/{preset:?}: region {r:?} spills past the arena"
                        );
                        assert!(
                            r.bytes >= r.request,
                            "{name}/{preset:?}: region {r:?} smaller than its request"
                        );
                    }
                    for (i, a) in mp.regions.iter().enumerate() {
                        for b in &mp.regions[i + 1..] {
                            let share_bytes =
                                a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
                            let share_life = (0..mp.positions).any(|p| live(a, p) && live(b, p));
                            assert!(
                                !(share_bytes && share_life),
                                "{name}/{preset:?}: aliasing regions (training={training} \
                                 fused={fused}): {a:?} vs {b:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn memory_replay_detects_oom_consistently() {
    let spec = gat(&GatConfig::ablation(64)).unwrap();
    let stats = gnnopt::graph::GraphStats::synthesize_power_law(100_000, 200.0, 0.9);
    let compiled = compile(&spec.ir, true, &CompileOptions::dgl()).unwrap();
    let (peak, _) = compiled.plan.memory_replay(&stats, u64::MAX).unwrap();
    // Just below peak must OOM; at peak must fit.
    assert!(compiled.plan.memory_replay(&stats, peak - 1).is_err());
    assert!(compiled.plan.memory_replay(&stats, peak).is_ok());
}

//! Lowering totality: every kernel of every plan lowers to a
//! [`gnnopt_core::KernelProgram`] — no per-kernel fallback exists, so a
//! fused session executes *all* kernels through the tiled interpreter —
//! and cluster-scheduled execution is bit-identical to node-by-node
//! reference execution on adversarial graphs (isolated vertices, extreme
//! hubs) across the threads × fused matrix.

mod common;

use common::{arb_steps, build_ir};
use gnnopt::core::{compile, CompileOptions, ExecPolicy, Preset};
use gnnopt::exec::{Bindings, EnvOverrides, Session};
use gnnopt::graph::{generators, EdgeList, Graph};
use gnnopt::models::*;
use gnnopt::tensor::{Tensor, XavierInit};
use proptest::prelude::*;
use std::collections::HashMap;

fn zoo() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "gat",
            gat(&GatConfig {
                in_dim: 8,
                layers: vec![(2, 6)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        (
            "gat-reorg",
            gat(&GatConfig {
                in_dim: 8,
                layers: vec![(2, 6)],
                negative_slope: 0.2,
                reorganized: true,
            })
            .unwrap(),
        ),
        (
            "gatv2",
            gatv2(&Gatv2Config {
                in_dim: 5,
                layers: vec![(2, 4)],
                negative_slope: 0.2,
            })
            .unwrap(),
        ),
        (
            "edgeconv",
            edgeconv(&EdgeConvConfig {
                in_dim: 4,
                layer_dims: vec![8],
            })
            .unwrap(),
        ),
        (
            "monet",
            monet(&MonetConfig {
                in_dim: 6,
                layer_dims: vec![4],
                kernels: 2,
                pseudo_dim: 2,
            })
            .unwrap(),
        ),
        ("gcn", gcn(&GcnConfig::two_layer(4, 6, 3)).unwrap()),
        ("sage", sage(&SageConfig::mean(4, vec![6])).unwrap()),
        (
            "sage-pool",
            sage(&SageConfig::max_pool(4, vec![6])).unwrap(),
        ),
        (
            "gin",
            gin(&GinConfig {
                in_dim: 4,
                layer_dims: vec![6],
                epsilon: 0.1,
            })
            .unwrap(),
        ),
        ("appnp", appnp(&AppnpConfig::standard(6, 4, 3)).unwrap()),
    ]
}

/// Every kernel of every zoo model × preset × phase has a lowered
/// program — the invariant the CI fallback gate enforces.
#[test]
fn every_zoo_kernel_lowers() {
    for (name, spec) in zoo() {
        for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
            for training in [false, true] {
                let compiled =
                    compile(&spec.ir, training, &CompileOptions::preset(preset)).unwrap();
                let plan = &compiled.plan;
                assert_eq!(
                    plan.programs.len(),
                    plan.kernels.len(),
                    "{name}/{preset:?}/training={training}: lowering must be total"
                );
                for (k, prog) in plan.kernels.iter().zip(&plan.programs) {
                    assert!(
                        !prog.steps.is_empty(),
                        "{name}/{preset:?}/training={training}: kernel {} lowered empty",
                        k.id
                    );
                }
            }
        }
    }
}

/// With total lowering, a fused session runs *every* kernel through the
/// tiled interpreter — `fused_kernels` equals the plan's kernel count,
/// with no silent reference-path drop-through.
#[test]
fn fused_sessions_run_every_kernel_fused() {
    let g = Graph::from_edge_list(&generators::erdos_renyi(32, 160, 9));
    for (name, spec) in zoo() {
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let plan = &compiled.plan;
        let mut b = Bindings::new();
        for (k, v) in spec.init_values(&g, 4) {
            b.insert(&k, v);
        }
        let mut sess = Session::builder(plan, &g)
            .fused(true)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let out = sess.forward(&b).unwrap();
        sess.backward(Tensor::ones(out[0].shape())).unwrap();
        assert_eq!(
            sess.stats().fused_kernels,
            plan.kernels.len() as u64,
            "{name}: every kernel must execute through the fused path"
        );
    }
}

fn leaf_values(ir: &gnnopt::core::IrGraph, g: &Graph, seed: u64) -> HashMap<String, Tensor> {
    let mut init = XavierInit::new(seed);
    let mut vals = HashMap::new();
    for n in ir.nodes() {
        match n.kind {
            gnnopt::core::OpKind::InputVertex => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_vertices(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::InputEdge => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_edges(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::Param => {
                vals.insert(n.name.clone(), init.matrix(n.dim.heads, n.dim.feat));
            }
            _ => {}
        }
    }
    vals
}

fn run(
    ir: &gnnopt::core::IrGraph,
    vals: &HashMap<String, Tensor>,
    g: &Graph,
    threads: usize,
    fused: bool,
) -> (Tensor, HashMap<String, Tensor>) {
    let compiled = compile(ir, true, &CompileOptions::ours()).expect("compiles");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let mut sess = Session::builder(&compiled.plan, g)
        .policy(ExecPolicy {
            threads,
            parallel_threshold: 0,
            ..ExecPolicy::serial()
        })
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out[0].clone(), grads)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Random edges plus a guaranteed extreme hub (every vertex feeds vertex
/// 0) plus trailing isolated vertices.
fn hub_graph(n: usize, extra: &[(u32, u32)], iso: usize) -> Graph {
    let mut pairs: Vec<(u32, u32)> = (1..n as u32).map(|u| (u, 0)).collect();
    pairs.extend_from_slice(extra);
    pairs.sort_unstable();
    pairs.dedup();
    Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cluster-scheduled fused execution of *random* model IRs is
    /// bit-identical to node-by-node reference execution — outputs and
    /// every gradient — on hub-heavy graphs with isolated vertices, at
    /// one and four threads.
    #[test]
    fn cluster_programs_match_reference_bit_for_bit(
        steps in arb_steps(),
        extra in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        seed in 0u64..1000,
        iso in 0usize..4,
    ) {
        let ir = build_ir(&steps, 3);
        let g = hub_graph(12, &extra, iso);
        let vals = leaf_values(&ir, &g, seed);
        let (ref_out, ref_grads) = run(&ir, &vals, &g, 1, false);
        for threads in [1usize, 4] {
            for fused in [false, true] {
                let (out, grads) = run(&ir, &vals, &g, threads, fused);
                prop_assert_eq!(
                    bits(&ref_out),
                    bits(&out),
                    "t{}/fused={}: output must be bit-identical",
                    threads, fused
                );
                for (k, gr) in &ref_grads {
                    prop_assert_eq!(
                        bits(gr),
                        bits(&grads[k]),
                        "t{}/fused={}: grad '{}' must be bit-identical",
                        threads, fused, k
                    );
                }
            }
        }
    }
}

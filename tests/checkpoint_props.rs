//! Property tests for the DNN segment-checkpointing planner
//! (`core::checkpoint`): the dynamic program is cross-validated against
//! brute-force enumeration of *all* segmentations on small chains, and
//! its structural invariants hold on arbitrary ones.

use gnnopt::core::checkpoint::{optimal_plan, CheckpointPlan, StageCost};
use proptest::prelude::*;

fn arb_stages() -> impl Strategy<Value = Vec<StageCost>> {
    proptest::collection::vec(
        (1u64..100, 1u64..100).prop_map(|(flops, activation_bytes)| StageCost {
            flops,
            activation_bytes,
        }),
        1..9,
    )
}

/// Enumerates every contiguous segmentation (each of the `n-1` interior
/// boundaries is either a cut or not) and returns the minimal recompute
/// FLOPs among those within `budget`.
fn brute_force_best(stages: &[StageCost], budget: u64) -> Option<u64> {
    let n = stages.len();
    let cuts = n.saturating_sub(1);
    let mut best: Option<u64> = None;
    for mask in 0u32..(1 << cuts) {
        let boundaries: Vec<usize> = (0..cuts).filter(|i| mask & (1 << i) != 0).collect();
        let plan = CheckpointPlan::new(boundaries, n);
        if plan.peak_memory(stages) <= budget {
            let flops = plan.recompute_flops(stages);
            best = Some(best.map_or(flops, |b: u64| b.min(flops)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DP finds a plan exactly when brute force does, and with the
    /// same (optimal) recompute cost.
    #[test]
    fn dp_matches_brute_force(stages in arb_stages(), budget in 1u64..1200) {
        let dp = optimal_plan(&stages, budget);
        let bf = brute_force_best(&stages, budget);
        match (dp, bf) {
            (None, None) => {}
            (Some(plan), Some(best)) => {
                prop_assert!(plan.peak_memory(&stages) <= budget, "DP exceeded budget");
                prop_assert_eq!(
                    plan.recompute_flops(&stages),
                    best,
                    "DP is suboptimal"
                );
            }
            (dp, bf) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility mismatch: dp={:?} bf={:?}",
                    dp.map(|p| p.recompute_flops(&stages)),
                    bf
                )));
            }
        }
    }

    /// Feasibility is monotone in the budget, and looser budgets never
    /// force more recomputation.
    #[test]
    fn budget_monotonicity(stages in arb_stages(), b1 in 1u64..1200, b2 in 1u64..1200) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let plo = optimal_plan(&stages, lo);
        let phi = optimal_plan(&stages, hi);
        if let Some(p) = &plo {
            prop_assert!(phi.is_some(), "a feasible tight budget implies a feasible loose one");
            prop_assert!(
                phi.as_ref().unwrap().recompute_flops(&stages) <= p.recompute_flops(&stages)
            );
        }
    }

    /// Structural invariants of any plan: segments tile the chain, the
    /// stash-all plan has zero recompute, and peak memory never exceeds
    /// the total activation footprint plus the model output.
    #[test]
    fn plan_invariants(stages in arb_stages()) {
        let n = stages.len();
        let total: u64 = stages.iter().map(|s| s.activation_bytes).sum();
        for plan in [CheckpointPlan::stash_all(n), CheckpointPlan::sqrt_n(n)] {
            let segs = plan.segments();
            prop_assert_eq!(segs.first().map(|s| s.0), Some(0));
            prop_assert_eq!(segs.last().map(|s| s.1), Some(n));
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            prop_assert!(plan.peak_memory(&stages) <= total + stages[n - 1].activation_bytes);
        }
        prop_assert_eq!(CheckpointPlan::stash_all(n).recompute_flops(&stages), 0);
    }
}

//! End-to-end permutation transparency on *randomly generated* model
//! IRs: a session that relabels the graph at build time (any strategy,
//! any thread count, either executor path) must return the same
//! user-facing results as the identity ordering — bit-identical
//! vertex-space outputs, parameter gradients equal up to floating-point
//! reassociation — and the `Trainer` must amortize the one-time
//! preprocessing across epochs.

mod common;

use common::{arb_steps, build_ir};
use gnnopt::core::{compile, CompileOptions, ExecPolicy, ReorderPolicy};
use gnnopt::exec::{Bindings, EnvOverrides, Session};
use gnnopt::graph::{generators, EdgeList, Graph};
use gnnopt::tensor::{Tensor, XavierInit};
use proptest::prelude::*;
use std::collections::HashMap;

fn leaf_values(ir: &gnnopt::core::IrGraph, g: &Graph, seed: u64) -> HashMap<String, Tensor> {
    let mut init = XavierInit::new(seed);
    let mut vals = HashMap::new();
    for n in ir.nodes() {
        match n.kind {
            gnnopt::core::OpKind::InputVertex => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_vertices(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::InputEdge => {
                vals.insert(
                    n.name.clone(),
                    init.uniform(&[g.num_edges(), n.dim.total()], 0.1, 1.0),
                );
            }
            gnnopt::core::OpKind::Param => {
                vals.insert(n.name.clone(), init.matrix(n.dim.heads, n.dim.feat));
            }
            _ => {}
        }
    }
    vals
}

fn run(
    ir: &gnnopt::core::IrGraph,
    vals: &HashMap<String, Tensor>,
    g: &Graph,
    policy: ExecPolicy,
    fused: bool,
) -> (Tensor, HashMap<String, Tensor>) {
    let compiled = compile(ir, true, &CompileOptions::ours()).expect("compiles");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let mut sess = Session::builder(&compiled.plan, g)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out[0].clone(), grads)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random scatter/softmax/gather/linear chains over random graphs
    /// with isolated vertices, across the full strategy × threads ×
    /// fused matrix.
    #[test]
    fn random_models_are_reorder_transparent(
        steps in arb_steps(),
        seed in 0u64..500,
        iso in 0usize..4,
    ) {
        let ir = build_ir(&steps, 3);
        let base = generators::erdos_renyi(12, 40, seed);
        let g = Graph::from_edge_list(&EdgeList::from_pairs(12 + iso, base.edges()));
        let vals = leaf_values(&ir, &g, seed);
        let (ref_out, ref_grads) = run(&ir, &vals, &g, ExecPolicy::serial(), false);
        for strategy in [
            ReorderPolicy::DegreeSort,
            ReorderPolicy::Bfs,
            ReorderPolicy::Rcm,
            ReorderPolicy::Cluster,
            ReorderPolicy::Auto,
        ] {
            for threads in [1usize, 4] {
                for fused in [false, true] {
                    let policy = ExecPolicy {
                        threads,
                        parallel_threshold: 0,
                        ..ExecPolicy::serial()
                    }
                    .reordered(strategy);
                    let (out, grads) = run(&ir, &vals, &g, policy, fused);
                    prop_assert_eq!(
                        bits(&ref_out),
                        bits(&out),
                        "{:?}/t{}/fused={}: output must be bit-identical",
                        strategy, threads, fused
                    );
                    for (k, gr) in &ref_grads {
                        prop_assert!(
                            gr.allclose_with(&grads[k], 1e-5, 1e-4),
                            "{:?}/t{}/fused={}: grad '{}' off by {}",
                            strategy, threads, fused, k, gr.max_abs_diff(&grads[k])
                        );
                    }
                }
            }
        }
    }
}

/// `Auto` must pick a strategy that does not lose locality: the resolved
/// mean gather index gap is never worse than the caller's order, and on
/// a scrambled grid (where RCM-style orders shine) it genuinely
/// reorders.
#[test]
fn auto_never_hurts_and_reorders_a_scrambled_grid() {
    use gnnopt::reorder::{locality, Permutation};
    let grid = gnnopt::graph::generators::grid(16, 16).to_undirected();
    // Deterministic scramble (LCG-driven Fisher–Yates).
    let mut ids: Vec<u32> = (0..grid.num_vertices() as u32).collect();
    let mut state = 0x2545_f491_u64;
    for i in (1..ids.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        ids.swap(i, j);
    }
    let scrambled = Permutation::from_order(&ids).unwrap().apply_to_edges(&grid);
    let g = Graph::from_edge_list(&scrambled);

    let spec = gnnopt::models::gcn(&gnnopt::models::GcnConfig {
        in_dim: 3,
        layer_dims: vec![2],
    })
    .unwrap();
    let compiled = compile(&spec.ir, false, &CompileOptions::ours()).unwrap();
    let sess = Session::builder(&compiled.plan, &g)
        .policy(ExecPolicy::serial().reordered(ReorderPolicy::Auto))
        .fused(false)
        .env(EnvOverrides::Off)
        .build()
        .unwrap();
    let (strategy, seconds) = sess.reorder();
    assert_ne!(
        strategy,
        ReorderPolicy::None,
        "a scrambled grid leaves plenty of locality to recover"
    );
    assert!(seconds > 0.0);
    // The strategy Auto picked genuinely reduces the mean index gap.
    let before = locality::report(&scrambled).mean_gap;
    let after = match strategy {
        ReorderPolicy::DegreeSort => gnnopt::reorder::strategies::degree_sort(&scrambled),
        ReorderPolicy::Bfs => gnnopt::reorder::strategies::bfs(&scrambled, 0),
        ReorderPolicy::Rcm => gnnopt::reorder::strategies::rcm(&scrambled),
        ReorderPolicy::Cluster => {
            gnnopt::reorder::strategies::cluster(&scrambled, ReorderPolicy::CLUSTER_SWEEPS)
        }
        _ => unreachable!("resolved strategies are concrete"),
    };
    let after = locality::report(&after.apply_to_edges(&scrambled)).mean_gap;
    assert!(
        after < before,
        "auto-selected {strategy:?} must improve the mean gap: {before:.1} → {after:.1}"
    );
}

//! Steady-state allocation counting: with the arena on, a warmed
//! [`Session::step`] performs **zero** heap allocations on the serial
//! reference path — every tensor of the step comes out of the
//! planner-seeded buffer pool. A `#[global_allocator]` shim counts every
//! `alloc`/`realloc`/`alloc_zeroed` so the property is enforced, not
//! eyeballed.
//!
//! The suite lives in its own integration-test binary on purpose: the
//! one `#[test]` below is the only test in the process, so no parallel
//! test thread can attribute its allocations to the measured window.

use gnnopt::core::{compile, CompileOptions, ExecPolicy};
use gnnopt::exec::{Bindings, EnvOverrides, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::*;
use gnnopt::tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pass-through allocator that counts allocation events (not frees:
/// a steady-state step that allocates nothing has nothing to free
/// either, and counting only acquisitions keeps the signal simple).
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Ring of the most recent allocation sizes — reported when the zero
/// assertion fails so the offending request is identifiable without
/// re-running under a debugger.
static SIZES: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
        SIZES[(n as usize) % 16].store(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "gat",
            gat(&GatConfig {
                in_dim: 8,
                layers: vec![(2, 6)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        ("gcn", gcn(&GcnConfig::two_layer(8, 12, 4)).unwrap()),
        ("sage", sage(&SageConfig::max_pool(8, vec![8])).unwrap()),
    ]
}

/// Allocation events across one `step()` after one warmup step.
fn steady_allocs(sess: &mut Session, b: &Bindings, seed: &Tensor) -> u64 {
    sess.step(b, seed).unwrap(); // warmup: pool fills and seeds settle
    let before = ALLOCS.load(Ordering::SeqCst);
    sess.step(b, seed).unwrap();
    let n = ALLOCS.load(Ordering::SeqCst) - before;
    if n > 0 && n < 16 {
        let sizes: Vec<u64> = (0..n as usize)
            .map(|i| SIZES[(before as usize + i) % 16].load(Ordering::SeqCst))
            .collect();
        eprintln!("  window alloc sizes: {sizes:?}");
    }
    n
}

#[test]
fn warm_step_allocates_nothing_with_arena_on() {
    let g = Graph::from_edge_list(&generators::erdos_renyi(96, 960, 7));
    for (name, spec) in specs() {
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let mut b = Bindings::new();
        for (k, v) in spec.init_values(&g, 11) {
            b.insert(&k, v.clone());
        }
        // Learn the output shape once, outside the measured sessions.
        let mut probe = Session::builder(&compiled.plan, &g)
            .policy(ExecPolicy::serial())
            .fused(false)
            .arena(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let out = probe.forward(&b).unwrap();
        let seed = Tensor::ones(out[0].shape());
        drop(probe);

        let mut arena_sess = Session::builder(&compiled.plan, &g)
            .policy(ExecPolicy::serial())
            .fused(false)
            .arena(true)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let with_arena = steady_allocs(&mut arena_sess, &b, &seed);

        // The numeric guard's all-finite scan path must be free too:
        // `GNNOPT_GUARD=1` may not buy per-step allocations.
        let mut guarded_sess = Session::builder(&compiled.plan, &g)
            .policy(ExecPolicy::serial().with_guard(true))
            .fused(false)
            .arena(true)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let with_guard = steady_allocs(&mut guarded_sess, &b, &seed);

        let mut heap_sess = Session::builder(&compiled.plan, &g)
            .policy(ExecPolicy::serial())
            .fused(false)
            .arena(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let without = steady_allocs(&mut heap_sess, &b, &seed);

        eprintln!(
            "{name}: steady-state allocations/step: \
             arena={with_arena} guarded={with_guard} heap={without}"
        );
        assert_eq!(
            with_arena, 0,
            "{name}: a warmed arena step must not touch the heap \
             (heap path allocated {without} times)"
        );
        assert_eq!(
            with_guard, 0,
            "{name}: the numeric guard must scan without allocating"
        );
    }

    two_concurrent_sessions_stay_zero_alloc(&g);
}

/// Buffer pools are per-session (owned by the [`Session`]), not a
/// process-global: two sessions on *different* models, stepping
/// **concurrently** on separate threads, must each stay zero-allocation
/// once warmed — neither can steal or miss buffers because of the
/// other. Run from the single `#[test]` above so the measured window
/// stays free of test-harness allocations.
fn two_concurrent_sessions_stay_zero_alloc(g: &Graph) {
    use std::sync::Barrier;

    let specs = specs();
    let compiled: Vec<_> = specs
        .iter()
        .map(|(_, spec)| compile(&spec.ir, true, &CompileOptions::ours()).unwrap())
        .collect();
    // Barrier phases: [0] both warmed → [1] window opens → [2] steps done.
    let barrier = Barrier::new(3);
    let before = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for ((name, spec), compiled) in specs.iter().zip(&compiled).take(2) {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut b = Bindings::new();
                for (k, v) in spec.init_values(g, 13) {
                    b.insert(&k, v.clone());
                }
                let mut sess = Session::builder(&compiled.plan, g)
                    .policy(ExecPolicy::serial())
                    .fused(false)
                    .arena(true)
                    .env(EnvOverrides::Off)
                    .build()
                    .unwrap();
                let out = sess.forward(&b).unwrap();
                let seed = Tensor::ones(out[0].shape());
                sess.step(&b, &seed).unwrap(); // warmup
                let _ = name;
                barrier.wait(); // [0] warmed
                barrier.wait(); // [1] window open
                sess.step(&b, &seed).unwrap();
                barrier.wait(); // [2] steps done
            });
        }
        barrier.wait(); // [0]
        before.store(ALLOCS.load(Ordering::SeqCst), Ordering::SeqCst);
        barrier.wait(); // [1]
        barrier.wait(); // [2]
    });
    let delta = ALLOCS.load(Ordering::SeqCst) - before.load(Ordering::SeqCst);
    eprintln!("two concurrent sessions: allocations during both steps: {delta}");
    assert_eq!(
        delta, 0,
        "two warmed sessions stepping concurrently must not allocate \
         (per-session pools must not interfere)"
    );
}

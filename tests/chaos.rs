//! Chaos property suite: random failpoint plans against the whole
//! session surface (reference/fused × plain/sharded × serial/threaded)
//! must **contain** every injected fault — a step either returns the
//! clean result bit-for-bit or a typed error, never wrong data, never
//! an abort, never a deadlock (the test completing is the proof), and
//! a session rebuilt after the chaos reproduces the clean bits.
//!
//! The suite runs with the numeric guard on, so an injected NaN is a
//! typed [`ExecError::NonFinite`] instead of silently poisoned data;
//! the guard-off control (same fault, `Ok` result) lives in
//! `crates/exec/tests/fault.rs`. The `Trainer` rides along: its
//! bounded skip-and-retry policy must absorb a transient injected NaN
//! and report the retry in `RunStats::nonfinite_retries`.
//!
//! Failpoint state is process-global, so everything here serializes on
//! one mutex and executor sessions use [`EnvOverrides::Off`].

use gnnopt::core::fault::{self, FaultGuard};
use gnnopt::core::{compile, CompileOptions, ExecPolicy, ExecutionPlan};
use gnnopt::exec::{Bindings, EnvOverrides, ExecError, Session, ShardedSession};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::{gcn, sage, GcnConfig, ModelSpec, SageConfig};
use gnnopt::tensor::Tensor;
use gnnopt::train::{Sgd, Trainer};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static CHAOS_TESTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CHAOS_TESTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn zoo() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("gcn", gcn(&GcnConfig::two_layer(5, 6, 3)).unwrap()),
        ("sage-max", sage(&SageConfig::max_pool(5, vec![6])).unwrap()),
    ]
}

fn bindings(spec: &ModelSpec, g: &Graph) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in spec.init_values(g, 13) {
        b.insert(&k, v.clone());
    }
    b
}

/// Output and gradient bit patterns of one forward+backward.
type RunBits = (Vec<Vec<u32>>, Vec<(String, Vec<u32>)>);

/// One guarded forward+backward under the given configuration.
fn run_once(
    plan: &ExecutionPlan,
    g: &Graph,
    b: &Bindings,
    fused: bool,
    threads: usize,
    shards: usize,
) -> Result<RunBits, ExecError> {
    let policy = ExecPolicy {
        threads,
        parallel_threshold: 0,
        ..ExecPolicy::serial()
    }
    .with_guard(true);
    let bits = |out: Vec<Tensor>, grads: std::collections::HashMap<String, Tensor>| {
        let o = out
            .iter()
            .map(|t| t.as_slice().iter().map(|x| x.to_bits()).collect())
            .collect();
        let mut gr: Vec<(String, Vec<u32>)> = grads
            .into_iter()
            .map(|(k, t)| (k, t.as_slice().iter().map(|x| x.to_bits()).collect()))
            .collect();
        gr.sort_by(|a, b| a.0.cmp(&b.0));
        (o, gr)
    };
    if shards == 1 {
        let mut sess = Session::builder(plan, g)
            .policy(policy)
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()?;
        let out = sess.forward(b)?;
        let seed = Tensor::ones(out[0].shape());
        let grads = sess.backward(seed);
        // Whatever happened, the pool must have survived consistent:
        // trim takes the pool lock (a worker that died holding it would
        // poison the mutex) and drains every parked buffer.
        sess.pool().trim();
        assert_eq!(sess.pool().resident_bytes(), 0, "pool leak after chaos");
        Ok(bits(out, grads?))
    } else {
        let mut sess = ShardedSession::builder(plan, g)
            .shards(shards)
            .policy(policy)
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()?;
        let out = sess.forward(b)?;
        let seed = Tensor::ones(out[0].shape());
        let grads = sess.backward(seed)?;
        Ok(bits(out, grads))
    }
}

/// A random failpoint plan: 1–2 rules over every wired site and action,
/// with every trigger flavor.
fn arb_plan() -> impl Strategy<Value = String> {
    let site = prop_oneof![
        Just("refexec"),
        Just("fused.launch"),
        Just("worker"),
        Just("pool.take"),
        Just("exchange"),
    ];
    let action = prop_oneof![
        Just("panic"),
        Just("error"),
        Just("nan"),
        Just("corrupt"),
        Just("exhaust"),
    ];
    let trigger = prop_oneof![
        Just(String::new()),
        (1u64..8).prop_map(|n| format!("@{n}")),
        (1u64..5).prop_map(|k| format!("%{k}")),
    ];
    let rule = (site, action, trigger).prop_map(|(s, a, t)| format!("{s}:{a}{t}"));
    proptest::collection::vec(rule, 1..3).prop_map(|rules| rules.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The containment invariant, under every execution shape.
    #[test]
    fn injected_faults_never_produce_wrong_data(
        plan_spec in arb_plan(),
        model in 0usize..2,
        fused in prop_oneof![Just(false), Just(true)],
        threads in 1usize..3,
        shards in 1usize..3,
    ) {
        let _l = lock();
        fault::clear();
        let g = Graph::from_edge_list(&generators::erdos_renyi(18, 64, 7));
        let (name, spec) = zoo().swap_remove(model);
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let b = bindings(&spec, &g);
        let repro = format!(
            "GNNOPT_FAILPOINTS='{plan_spec}' model={name} fused={fused} \
             threads={threads} shards={shards}"
        );

        let baseline = run_once(&compiled.plan, &g, &b, false, 1, 1)
            .expect("clean serial run");

        let chaotic = {
            let _guard = FaultGuard::install(&plan_spec).unwrap();
            run_once(&compiled.plan, &g, &b, fused, threads, shards)
        };
        // A fault that never fired (or degraded gracefully) must leave
        // the result untouched; any typed error is correct containment.
        if let Ok(bits) = chaotic {
            prop_assert_eq!(bits, baseline.clone(), "wrong data: {}", repro);
        }

        // Plan cleared: a rebuilt session reproduces the clean bits.
        let rebuilt = run_once(&compiled.plan, &g, &b, fused, threads, shards)
            .expect("rebuilt session after chaos");
        prop_assert_eq!(rebuilt, baseline, "rebuild diverged: {}", repro);
    }
}

/// The trainer's bounded skip-and-retry policy: a transient injected
/// NaN costs one discarded attempt (counted in the report), a zero
/// retry budget propagates the guard error.
#[test]
fn trainer_retries_transient_nonfinite_steps() {
    let _l = lock();
    fault::clear();
    let g = Graph::from_edge_list(&generators::erdos_renyi(18, 64, 7));
    let spec = gcn(&GcnConfig::two_layer(5, 6, 3)).unwrap();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
    let labels: Vec<usize> = (0..g.num_vertices()).map(|i| i % 3).collect();

    // The trainer owns its session, so the guard arrives via the
    // documented env contract; restored below.
    let saved = std::env::var("GNNOPT_GUARD").ok();
    std::env::set_var("GNNOPT_GUARD", "1");
    let trainer = Trainer::new(
        &compiled.plan,
        &g,
        spec.init_values(&g, 13),
        params.clone(),
        Sgd::new(0.1),
    );
    let strict = Trainer::new(
        &compiled.plan,
        &g,
        spec.init_values(&g, 13),
        params,
        Sgd::new(0.1),
    );
    match saved {
        Some(v) => std::env::set_var("GNNOPT_GUARD", v),
        None => std::env::remove_var("GNNOPT_GUARD"),
    }
    let mut trainer = trainer.unwrap().with_nonfinite_retry(2);
    let mut strict = strict.unwrap();

    // `@1` fires on the first kernel of the first attempt only: the
    // retry's fresh attempt runs clean.
    {
        let _guard = FaultGuard::install("refexec:nan@1").unwrap();
        let report = trainer.step(&labels).expect("retry must absorb the fault");
        assert_eq!(report.run.nonfinite_retries, 1, "one discarded attempt");
    }

    // Default budget (zero retries): the guard error propagates.
    {
        let _guard = FaultGuard::install("refexec:nan@1").unwrap();
        assert!(matches!(
            strict.step(&labels),
            Err(ExecError::NonFinite { .. })
        ));
    }
}

//! Property tests of the fusion partitioner on randomly generated model
//! IRs: whatever the dataflow shape, every partition must (a) cover each
//! compute node exactly once, (b) schedule kernels topologically, (c)
//! respect the cross-group legality rule (no kernel both produces a
//! vertex value with a graph op and scatters it through the source
//! endpoint), and (d) keep edge-softmax kernels vertex-balanced.

mod common;

use common::{arb_steps, build_ir};
use gnnopt::core::fusion::{partition, MappingPolicy};
use gnnopt::core::{compile, CompileOptions};
use gnnopt::core::{EdgeGroup, FusionLevel, IrGraph, NodeId, OpKind, ScatterFn, Space};
use gnnopt::sim::ThreadMapping;
use proptest::prelude::*;
use std::collections::HashMap;

/// The §5 legality rule, checked structurally on a finished partition:
/// an in-kernel value produced by a reduction grouped `G` may only be
/// read back at endpoint `G`, and only when `G` matches the kernel's
/// primary direction (a diverging reduction is atomic, and atomic partial
/// state must never be read in-kernel). Values resolved through views and
/// vertex elementwise ops inherit their producer's grouping; values from
/// other kernels (global memory) are always safe.
fn kernel_is_legal(ir: &IrGraph, nodes: &[NodeId]) -> bool {
    let member: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    // Primary direction: softmax forces ByDst, else the first reduction.
    let mut primary: Option<EdgeGroup> = None;
    for &n in nodes {
        match &ir.node(n).kind {
            OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd => {
                primary = Some(EdgeGroup::ByDst);
                break;
            }
            k => {
                if primary.is_none() {
                    primary = k.reduction_group();
                }
            }
        }
    }
    // Transitively collect the reduction groups feeding a vertex operand.
    fn feeding_groups(
        ir: &IrGraph,
        member: &std::collections::HashSet<NodeId>,
        id: NodeId,
        out: &mut Vec<Option<EdgeGroup>>,
    ) {
        if !member.contains(&id) {
            return;
        }
        let node = ir.node(id);
        if let Some(g) = node.kind.reduction_group() {
            out.push(Some(g));
            return;
        }
        let mut recursed = false;
        for &i in &node.inputs {
            if ir.node(i).space == Space::Vertex {
                feeding_groups(ir, member, i, out);
                recursed = true;
            }
        }
        if !recursed {
            out.push(None);
        }
    }
    for &n in nodes {
        let node = ir.node(n);
        let reads: Vec<(usize, EdgeGroup)> = match &node.kind {
            OpKind::Scatter(ScatterFn::CopyU) => vec![(0, EdgeGroup::BySrc)],
            OpKind::Scatter(ScatterFn::CopyV) => vec![(1, EdgeGroup::ByDst)],
            OpKind::Scatter(_) => vec![(0, EdgeGroup::BySrc), (1, EdgeGroup::ByDst)],
            _ => Vec::new(),
        };
        for (idx, endpoint) in reads {
            let input = *node.inputs.get(idx).unwrap_or(&node.inputs[0]);
            let mut groups = Vec::new();
            feeding_groups(ir, &member, input, &mut groups);
            for g in groups {
                if g != Some(endpoint) || primary.is_some_and(|p| p != endpoint) {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitions_satisfy_structural_invariants(
        steps in arb_steps(),
        feat in 2usize..12,
    ) {
        let ir = build_ir(&steps, feat);
        for level in [
            FusionLevel::None,
            FusionLevel::DglBuiltin,
            FusionLevel::EdgeOnly,
            FusionLevel::Unified,
        ] {
            for policy in [MappingPolicy::Auto, MappingPolicy::ForceVertex, MappingPolicy::ForceEdge] {
                let kernels = partition(&ir, level, policy);
                // (a) exact cover of compute nodes.
                let mut owner: HashMap<NodeId, usize> = HashMap::new();
                for k in &kernels {
                    for &n in &k.nodes {
                        prop_assert!(
                            owner.insert(n, k.id).is_none(),
                            "{level:?}/{policy:?}: node {n} in two kernels"
                        );
                    }
                }
                for n in ir.nodes() {
                    let is_leaf = matches!(
                        n.kind,
                        OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed
                    );
                    prop_assert_eq!(
                        owner.contains_key(&n.id),
                        !is_leaf,
                        "{:?}/{:?}: node {} cover mismatch", level, policy, n.id
                    );
                }
                // (b) kernel order is topological w.r.t. dataflow.
                for k in &kernels {
                    for &n in &k.nodes {
                        for &i in &ir.node(n).inputs {
                            if let Some(&ki) = owner.get(&i) {
                                prop_assert!(
                                    ki <= k.id,
                                    "{level:?}/{policy:?}: kernel {} uses later kernel {}",
                                    k.id, ki
                                );
                            }
                        }
                    }
                }
                // (c) cross-group legality inside every kernel.
                for k in &kernels {
                    prop_assert!(
                        kernel_is_legal(&ir, &k.nodes),
                        "{level:?}/{policy:?}: kernel {} violates §5 legality",
                        k.id
                    );
                }
                // (d) softmax kernels are vertex-balanced.
                for k in &kernels {
                    let has_softmax = k
                        .nodes
                        .iter()
                        .any(|&n| matches!(ir.node(n).kind, OpKind::EdgeSoftmax));
                    if has_softmax {
                        prop_assert_eq!(k.mapping, ThreadMapping::VertexBalanced);
                    }
                }
            }
        }
    }

    /// The full training pipeline compiles every random IR and its
    /// backward kernels obey the same legality rule.
    #[test]
    fn training_compile_respects_legality(
        steps in arb_steps(),
        feat in 2usize..8,
    ) {
        let ir = build_ir(&steps, feat);
        let compiled = compile(&ir, true, &CompileOptions::ours()).expect("compiles");
        for k in &compiled.plan.kernels {
            prop_assert!(
                kernel_is_legal(&compiled.plan.ir, &k.nodes),
                "backward kernel {} violates §5 legality",
                k.id
            );
        }
    }
}

//! Figure 11 as an invariant: the DGL baseline plan for the paper's
//! ablation workloads does not fit an RTX 2080, while the fully-optimized
//! plan does — at a latency comparable to DGL on the RTX 3090.

use gnnopt::bench::{gat_ablation, monet_ablation, run_variant};
use gnnopt::core::CompileOptions;
use gnnopt::graph::datasets;
use gnnopt::sim::Device;

#[test]
fn dgl_gat_reddit_needs_3090_ours_fits_2080() {
    let wl = gat_ablation(&datasets::reddit(), false).expect("gat workload");
    let rtx2080 = Device::rtx2080();
    let rtx3090 = Device::rtx3090();

    let dgl_2080 = run_variant(
        "DGL",
        &wl.ir,
        &wl.stats,
        &CompileOptions::dgl(),
        true,
        &rtx2080,
    )
    .expect("dgl compiles");
    assert!(
        dgl_2080.fits.is_err(),
        "DGL's stash-everything plan must OOM on 8 GB: got {:?}",
        dgl_2080.fits
    );

    let ours_2080 = run_variant(
        "Ours",
        &wl.ir,
        &wl.stats,
        &CompileOptions::ours(),
        true,
        &rtx2080,
    )
    .expect("ours compiles");
    assert!(
        ours_2080.fits.is_ok(),
        "the optimized plan must fit 8 GB: got {:?}",
        ours_2080.fits
    );

    // Comparable latency: ours-on-2080 within 2× of DGL-on-3090 (the
    // paper reports parity or better).
    let dgl_3090 = run_variant(
        "DGL",
        &wl.ir,
        &wl.stats,
        &CompileOptions::dgl(),
        true,
        &rtx3090,
    )
    .expect("dgl compiles");
    assert!(
        ours_2080.stats.latency < dgl_3090.stats.latency * 2.0,
        "ours on 2080 ({:.1} ms) should be comparable to DGL on 3090 ({:.1} ms)",
        ours_2080.stats.latency * 1e3,
        dgl_3090.stats.latency * 1e3
    );
}

#[test]
fn monet_reddit_memory_ordering_holds_on_both_devices() {
    let wl = monet_ablation(&datasets::reddit()).expect("monet workload");
    for device in [Device::rtx3090(), Device::rtx2080()] {
        let dgl = run_variant(
            "DGL",
            &wl.ir,
            &wl.stats,
            &CompileOptions::dgl(),
            true,
            &device,
        )
        .expect("dgl compiles");
        let ours = run_variant(
            "Ours",
            &wl.ir,
            &wl.stats,
            &CompileOptions::ours(),
            true,
            &device,
        )
        .expect("ours compiles");
        assert!(
            ours.stats.peak_memory < dgl.stats.peak_memory,
            "{}: ours must use less memory",
            device.name
        );
        assert!(
            ours.stats.latency <= dgl.stats.latency,
            "{}: ours must not be slower",
            device.name
        );
    }
}

#[test]
fn oom_reports_name_the_offending_allocation() {
    let wl = gat_ablation(&datasets::reddit(), false).expect("gat workload");
    let dgl = run_variant(
        "DGL",
        &wl.ir,
        &wl.stats,
        &CompileOptions::dgl(),
        true,
        &Device::rtx2080(),
    )
    .expect("dgl compiles");
    let msg = dgl.fits.expect_err("must OOM");
    // The error must carry actionable details: a byte amount at minimum.
    assert!(
        msg.contains("byte") || msg.contains("GiB") || msg.contains("capacity"),
        "unhelpful OOM message: {msg}"
    );
}

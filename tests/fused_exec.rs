//! Memory realization of fused execution: the tiled interpreter must
//! turn the *predicted* fusion savings (which `gnnopt-sim` has always
//! reported) into *measured* `peak_value_bytes` drops on the CPU
//! executor — cross-checked against the plan's own memory replay and the
//! lowered programs' byte arithmetic.

use gnnopt::core::{compile, CompileOptions, ExecPolicy, Storage};
use gnnopt::exec::{Bindings, EnvOverrides, RunStats, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::{gat, GatConfig, ModelSpec};
use gnnopt::tensor::Tensor;

/// A GAT training workload big enough that its edge intermediates
/// dominate memory (~66k edges ≫ 4k vertices).
fn workload() -> (Graph, ModelSpec) {
    let graph = Graph::from_edge_list(&generators::rmat(12, 16, 0.57, 0.19, 0.19, 7));
    let spec = gat(&GatConfig {
        in_dim: 16,
        layers: vec![(2, 8)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    (graph, spec)
}

fn train_step(
    plan: &gnnopt::core::ExecutionPlan,
    graph: &Graph,
    spec: &ModelSpec,
    threads: usize,
    fused: bool,
) -> (
    Vec<Tensor>,
    std::collections::HashMap<String, Tensor>,
    RunStats,
) {
    let mut sess = Session::builder(plan, graph)
        .policy(ExecPolicy {
            threads,
            ..ExecPolicy::auto()
        })
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let mut b = Bindings::new();
    for (k, v) in spec.init_values(graph, 3) {
        b.insert(&k, v);
    }
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out, grads, sess.stats())
}

#[test]
fn gat_training_fused_realizes_the_predicted_memory_savings() {
    let (graph, spec) = workload();
    let (n, m) = (graph.num_vertices(), graph.num_edges());
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let plan = &compiled.plan;

    let (out_r, grads_r, reference) = train_step(plan, &graph, &spec, 1, false);
    let (out_f, grads_f, fused) = train_step(plan, &graph, &spec, 2, true);

    // Same plan, same numbers: the ByDst tiling preserves per-vertex edge
    // order, so fused results are bit-identical at any thread count.
    let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&out_r[0]),
        bits(&out_f[0]),
        "outputs must be bit-identical"
    );
    for (k, g) in &grads_r {
        assert_eq!(
            bits(g),
            bits(&grads_f[k]),
            "grad '{k}' must be bit-identical"
        );
    }

    // The realized saving: edge-space intermediates no longer exist as
    // full tensors, so the measured peak strictly drops — by at least one
    // full O(E·d) edge tensor on this workload.
    assert!(
        fused.fused_kernels >= 3,
        "forward + both backward GAT kernels lower"
    );
    assert_eq!(reference.fused_kernels, 0);
    assert!(
        fused.peak_value_bytes < reference.peak_value_bytes,
        "fused peak {} must beat reference peak {}",
        fused.peak_value_bytes,
        reference.peak_value_bytes
    );
    let edge_tensor = 4 * m as u64; // one [E, 1]-column tensor
    assert!(
        reference.peak_value_bytes - fused.peak_value_bytes >= edge_tensor,
        "saving {} smaller than one edge tensor {}",
        reference.peak_value_bytes - fused.peak_value_bytes,
        edge_tensor
    );

    // Scratch is bounded by the tiling, far below the internals it
    // replaces, and the boundary (stash + aux) is untouched.
    let internal_total: u64 = plan
        .programs
        .iter()
        .map(|p| p.internal_full_bytes(n, m))
        .sum();
    assert!(fused.scratch_bytes > 0);
    assert!(
        fused.scratch_bytes < internal_total / 4,
        "scratch {} should be a small fraction of the {} internal bytes it replaces",
        fused.scratch_bytes,
        internal_total
    );
    assert_eq!(reference.boundary_bytes, fused.boundary_bytes);

    // Cross-check against the analytical model. `memory_replay` is the
    // simulator's prediction for this plan assuming fusion keeps
    // internals out of DRAM entirely; the measured fused peak must land
    // between that ideal and ideal + the interior spills the tiled
    // interpreter genuinely has to pay (cross-segment reads), with
    // headroom for accounting differences (aux lifetimes, stash timing).
    let (replay_peak, _) = plan
        .memory_replay(&graph.stats(), u64::MAX)
        .expect("unbounded replay");
    let interior_max: u64 = plan
        .programs
        .iter()
        .map(|p| p.interior_full_bytes(n, m))
        .max()
        .unwrap_or(0);
    assert!(
        fused.peak_value_bytes >= replay_peak / 2,
        "measured fused peak {} implausibly beats the analytical ideal {}",
        fused.peak_value_bytes,
        replay_peak
    );
    assert!(
        fused.peak_value_bytes <= replay_peak + 2 * interior_max,
        "measured fused peak {} exceeds predicted ideal {} + spills {}",
        fused.peak_value_bytes,
        replay_peak,
        interior_max
    );
    // The reference executor, which materializes every kernel-internal
    // node, must sit above the simulator's fused prediction by at least
    // the internals of the largest program.
    let internal_max: u64 = plan
        .programs
        .iter()
        .map(|p| p.internal_full_bytes(n, m))
        .max()
        .unwrap_or(0);
    assert!(
        reference.peak_value_bytes >= replay_peak + internal_max / 2,
        "reference peak {} vs replay {} + internals {}",
        reference.peak_value_bytes,
        replay_peak,
        internal_max
    );
}

#[test]
fn lowered_programs_classify_the_gat_plan_as_expected() {
    let (graph, spec) = workload();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let plan = &compiled.plan;
    assert!(plan.exec.fused, "ours preset turns fused execution on");

    // Lowering is total: every kernel — including singleton dense
    // kernels, which lower to one-step programs — has a program.
    assert_eq!(plan.programs.len(), plan.kernels.len());
    for (k, prog) in plan.kernels.iter().zip(&plan.programs) {
        assert!(!prog.steps.is_empty(), "kernel {} lowers", k.id);
        if k.nodes.len() == 1 && k.recompute.is_empty() {
            assert_eq!(prog.steps.len(), 1, "singleton kernel {} is one step", k.id);
        }
    }

    // Structural cross-check with the simulator's materialization
    // analysis: a program materializes exactly the nodes the plan says
    // leave the kernel — nothing more (no hidden full tensors besides
    // declared interior spills), nothing less (no missing boundaries).
    for (k, prog) in plan.kernels.iter().zip(&plan.programs) {
        let mut predicted = plan.materialized_nodes(k);
        predicted.sort_unstable();
        let mut got: Vec<_> = prog.materialized().collect();
        got.sort_unstable();
        assert_eq!(got, predicted, "kernel {} boundary set", k.id);
        for s in &prog.steps {
            if s.storage == Storage::Scratch {
                assert!(
                    !predicted.contains(&s.node),
                    "scratch step {} is a declared boundary",
                    s.node
                );
            }
        }
    }

    // The edge-space internals the tiled interpreter keeps on-chip are
    // the dominant predicted saving (> half of all internal bytes).
    let (n, m) = (graph.num_vertices(), graph.num_edges());
    let internal: u64 = plan
        .programs
        .iter()
        .map(|p| p.internal_full_bytes(n, m))
        .sum();
    let edge_internal: u64 = plan
        .programs
        .iter()
        .flat_map(|p| p.steps.iter())
        .filter(|s| s.storage == Storage::Scratch && s.space == gnnopt::core::Space::Edge)
        .map(|s| 4 * m as u64 * s.cols as u64)
        .sum();
    assert!(edge_internal * 2 > internal, "edge internals dominate");
    assert!(edge_internal > 0);
}

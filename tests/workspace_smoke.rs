//! Workspace smoke test: one fast end-to-end canary CI runs on every
//! commit. Builds a tiny GCN layer directly in the operator IR, compiles
//! it under all three presets (exercising reorganization §4, fusion §5
//! and recomputation §6 together through `pipeline::Preset`), executes
//! forward + backward on the CPU reference executor, and checks the
//! presets agree numerically. If this passes, every workspace layer —
//! tensor, graph, core, sim, exec — is wired together correctly.

use gnnopt::core::ir::IrGraph;
use gnnopt::core::{
    compile, BinaryFn, CompileOptions, Dim, EdgeGroup, Preset, ReduceFn, ScatterFn, UnaryFn,
};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{EdgeList, Graph};
use gnnopt::tensor::Tensor;

/// One GCN layer, hand-built in the IR:
/// `h' = relu( gather_sum( edge_weight · scatter_copy_u(h · W) ) )`.
fn tiny_gcn_layer() -> IrGraph {
    let mut ir = IrGraph::new();
    let h = ir.input_vertex("h", Dim::flat(4));
    let ew = ir.input_edge("edge_weight", Dim::flat(1));
    let w = ir.param("w", 4, 3);
    let proj = ir.linear(h, w).expect("linear");
    let msgs = ir.scatter(ScatterFn::CopyU, proj, proj).expect("scatter");
    let weighted = ir.binary(BinaryFn::Mul, msgs, ew).expect("binary");
    let agg = ir
        .gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)
        .expect("gather");
    let out = ir.unary(UnaryFn::Relu, agg).expect("relu");
    ir.mark_output(out);
    ir
}

#[test]
fn gcn_layer_runs_end_to_end_under_every_preset() {
    let graph = Graph::from_edge_list(&EdgeList::from_pairs(
        5,
        &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 3), (0, 4), (2, 4)],
    ));
    let ir = tiny_gcn_layer();

    let mut bindings = Bindings::new();
    bindings.insert(
        "h",
        Tensor::from_fn(&[graph.num_vertices(), 4], |i| (i % 5) as f32 * 0.25 - 0.5),
    );
    bindings.insert(
        "edge_weight",
        Tensor::from_fn(&[graph.num_edges(), 1], |i| 1.0 / (1.0 + i as f32)),
    );
    bindings.insert(
        "w",
        Tensor::from_fn(&[4, 3], |i| (i % 7) as f32 * 0.2 - 0.6),
    );

    let mut results = Vec::new();
    for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
        let compiled = compile(&ir, true, &CompileOptions::preset(preset))
            .unwrap_or_else(|e| panic!("{preset:?} failed to compile: {e}"));
        let mut sess = Session::builder(&compiled.plan, &graph)
            .build()
            .expect("session");
        let out = sess.forward(&bindings).expect("forward");
        assert_eq!(out.len(), 1, "{preset:?}: one model output expected");
        assert_eq!(
            out[0].shape(),
            &[graph.num_vertices(), 3],
            "{preset:?}: output must be [|V|, out_dim]"
        );
        let grads = sess
            .backward(Tensor::ones(out[0].shape()))
            .expect("backward");
        let gw = grads.get("w").expect("gradient for the parameter");
        assert_eq!(gw.shape(), &[4, 3], "{preset:?}: grad shape matches param");
        results.push((preset, out[0].clone(), gw.clone()));
    }

    // All presets are rewrites of the same computation: outputs and
    // gradients must agree across the board.
    let (_, base_out, base_gw) = &results[0];
    for (preset, out, gw) in &results[1..] {
        assert!(
            out.allclose(base_out),
            "{preset:?} output diverges from Dgl by {}",
            out.max_abs_diff(base_out)
        );
        assert!(
            gw.allclose(base_gw),
            "{preset:?} grad diverges from Dgl by {}",
            gw.max_abs_diff(base_gw)
        );
    }
}

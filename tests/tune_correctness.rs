//! The mapping autotuner only re-labels kernels (mapping + atomics); the
//! numerical results of the plan must be bit-identical before and after,
//! and the tuned plan must still execute end-to-end.

use gnnopt::core::{autotune_mappings, compile, CompileOptions};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{generators, Graph};
use gnnopt::models::{edgeconv, gat, EdgeConvConfig, GatConfig};
use gnnopt::sim::Device;
use gnnopt::tensor::Tensor;

fn bindings_from(vals: &std::collections::HashMap<String, Tensor>) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    b
}

#[test]
fn tuned_plans_execute_identically() {
    let g = Graph::from_edge_list(&generators::rmat(6, 8, 0.6, 0.18, 0.18, 21));
    let stats = g.stats();
    let device = Device::rtx3090();
    let specs = vec![
        (
            "gat",
            gat(&GatConfig {
                in_dim: 6,
                layers: vec![(2, 5)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        (
            "edgeconv",
            edgeconv(&EdgeConvConfig {
                in_dim: 4,
                layer_dims: vec![6],
            })
            .unwrap(),
        ),
    ];
    for (name, spec) in specs {
        let vals = spec.init_values(&g, 31);
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

        let mut sess = Session::builder(&compiled.plan, &g)
            .build()
            .expect("session");
        let out_before = sess.forward(&bindings_from(&vals)).expect("forward");
        let grads_before = sess
            .backward(Tensor::ones(out_before[0].shape()))
            .expect("backward");

        let mut tuned = compiled.plan.clone();
        let report = autotune_mappings(&mut tuned, &device, &stats);
        assert!(
            report.latency_after <= report.latency_before * (1.0 + 1e-12),
            "{name}: tuning may not slow the plan"
        );

        let mut sess = Session::builder(&tuned, &g).build().expect("tuned session");
        let out_after = sess.forward(&bindings_from(&vals)).expect("tuned forward");
        let grads_after = sess
            .backward(Tensor::ones(out_after[0].shape()))
            .expect("tuned backward");

        assert_eq!(
            out_before[0].as_slice(),
            out_after[0].as_slice(),
            "{name}: outputs must be bit-identical after tuning"
        );
        for (k, gb) in &grads_before {
            assert_eq!(
                gb.as_slice(),
                grads_after[k].as_slice(),
                "{name}: grad '{k}' must be bit-identical after tuning"
            );
        }
    }
}

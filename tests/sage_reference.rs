//! GraphSAGE against a dense, loop-level manual reference: both
//! aggregators (mean and max-pool) are pure IR compositions, so their
//! forward values and parameter gradients must match a hand-written
//! implementation of the Hamilton et al. equations — no reliance on any
//! compiler pass, executor path, or autodiff rule being "obviously"
//! right. Runs the full preset × fused matrix against the one manual
//! answer.

use gnnopt::core::{compile, CompileOptions, ExecPolicy, Preset};
use gnnopt::exec::{Bindings, EnvOverrides, Session};
use gnnopt::graph::{generators, EdgeList, Graph};
use gnnopt::models::{sage, SageConfig};
use gnnopt::tensor::Tensor;
use std::collections::HashMap;

/// Small graph with a hub (vertex 0 receives from everyone) and two
/// isolated vertices, so empty reduction groups and degree skew are both
/// exercised.
fn test_graph() -> Graph {
    let mut pairs: Vec<(u32, u32)> = generators::erdos_renyi(8, 20, 11).edges().to_vec();
    for u in 1..8u32 {
        pairs.push((u, 0));
    }
    pairs.sort_unstable();
    pairs.dedup();
    Graph::from_edge_list(&EdgeList::from_pairs(10, &pairs))
}

/// `[n, k] · [k, m]` on plain slices.
fn matmul(x: &[f32], w: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += x[i * k + p] * w[p * m + j];
            }
            out[i * m + j] = acc;
        }
    }
    out
}

/// `x^T · y` where `x: [n, k]`, `y: [n, m]` → `[k, m]`.
fn matmul_tn(x: &[f32], y: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; k * m];
    for i in 0..n {
        for p in 0..k {
            for j in 0..m {
                out[p * m + j] += x[i * k + p] * y[i * m + j];
            }
        }
    }
    out
}

/// One manual GraphSAGE layer (forward + backward under `dL/dout = 1`),
/// returning `(out, dw_self, dw_neigh, dw_pool)`.
#[allow(clippy::too_many_lines)]
fn manual_layer(
    g: &Graph,
    h: &[f32],
    ws: &[f32],
    wn: &[f32],
    wp: Option<&[f32]>,
    d_in: usize,
    d_out: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Option<Vec<f32>>) {
    let n = g.num_vertices();
    let m = g.num_edges();

    // Aggregation: mean of raw features, or elementwise max of the
    // relu-activated pooling projection. Ties break to the lowest edge
    // id, matching the executor's strictly-greater max scan.
    let (agg, pool_act, argmax) = if let Some(wp) = wp {
        let proj = matmul(h, wp, n, d_in, d_in);
        let act: Vec<f32> = proj.iter().map(|v| v.max(0.0)).collect();
        let mut agg = vec![0.0f32; n * d_in];
        let mut arg = vec![usize::MAX; n * d_in];
        for e in 0..m {
            let (u, v) = (g.src(e), g.dst(e));
            for c in 0..d_in {
                let val = act[u * d_in + c];
                if arg[v * d_in + c] == usize::MAX || val > agg[v * d_in + c] {
                    agg[v * d_in + c] = val;
                    arg[v * d_in + c] = e;
                }
            }
        }
        for i in 0..n * d_in {
            if arg[i] == usize::MAX {
                agg[i] = 0.0;
            }
        }
        (agg, Some(act), Some(arg))
    } else {
        let mut agg = vec![0.0f32; n * d_in];
        let mut deg = vec![0usize; n];
        for e in 0..m {
            let (u, v) = (g.src(e), g.dst(e));
            deg[v] += 1;
            for c in 0..d_in {
                agg[v * d_in + c] += h[u * d_in + c];
            }
        }
        for v in 0..n {
            if deg[v] > 0 {
                for c in 0..d_in {
                    agg[v * d_in + c] /= deg[v] as f32;
                }
            }
        }
        (agg, None, None)
    };

    let self_proj = matmul(h, ws, n, d_in, d_out);
    let neigh_proj = matmul(&agg, wn, n, d_in, d_out);
    let pre: Vec<f32> = self_proj
        .iter()
        .zip(&neigh_proj)
        .map(|(a, b)| a + b)
        .collect();
    let out: Vec<f32> = pre.iter().map(|v| v.max(0.0)).collect();

    // Backward, seeded with ones.
    let g_pre: Vec<f32> = pre
        .iter()
        .map(|&v| if v > 0.0 { 1.0f32 } else { 0.0 })
        .collect();
    let dw_self = matmul_tn(h, &g_pre, n, d_in, d_out);
    let dw_neigh = matmul_tn(&agg, &g_pre, n, d_in, d_out);
    // d agg = g_pre · wn^T.
    let mut d_agg = vec![0.0f32; n * d_in];
    for i in 0..n {
        for p in 0..d_in {
            let mut acc = 0.0f32;
            for j in 0..d_out {
                acc += g_pre[i * d_out + j] * wn[p * d_out + j];
            }
            d_agg[i * d_in + p] = acc;
        }
    }
    let dw_pool = pool_act.map(|act| {
        let arg = argmax.unwrap();
        // Route d_agg to each column's argmax source row, then through
        // the pooling relu and projection.
        let mut d_act = vec![0.0f32; n * d_in];
        for v in 0..n {
            for c in 0..d_in {
                let e = arg[v * d_in + c];
                if e != usize::MAX {
                    d_act[g.src(e) * d_in + c] += d_agg[v * d_in + c];
                }
            }
        }
        let d_proj: Vec<f32> = d_act
            .iter()
            .zip(&act)
            .map(|(&dv, &a)| if a > 0.0 { dv } else { 0.0 })
            .collect();
        matmul_tn(h, &d_proj, n, d_in, d_in)
    });
    (out, dw_self, dw_neigh, dw_pool)
}

fn assert_close(name: &str, tag: &str, got: &Tensor, want: &[f32]) {
    let gs = got.as_slice();
    assert_eq!(gs.len(), want.len(), "{tag}: '{name}' length");
    for (i, (a, b)) in gs.iter().zip(want).enumerate() {
        assert!(
            (a - b).abs() <= 1e-4 + 1e-4 * b.abs(),
            "{tag}: '{name}'[{i}] = {a} vs manual {b}"
        );
    }
}

fn check(cfg: &SageConfig) {
    let g = test_graph();
    let spec = sage(cfg).unwrap();
    let vals: HashMap<String, Tensor> = spec.init_values(&g, 5).into_iter().collect();
    let d_in = cfg.in_dim;
    let d_out = cfg.layer_dims[0];

    let (out, dw_self, dw_neigh, dw_pool) = manual_layer(
        &g,
        vals["h"].as_slice(),
        vals["w0_self"].as_slice(),
        vals["w0_neigh"].as_slice(),
        vals.get("w0_pool").map(Tensor::as_slice),
        d_in,
        d_out,
    );

    for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
        for fused in [false, true] {
            let tag = format!("{preset:?}/fused={fused}");
            let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset)).unwrap();
            let mut b = Bindings::new();
            for (k, v) in &vals {
                b.insert(k, v.clone());
            }
            let mut sess = Session::builder(&compiled.plan, &g)
                .policy(ExecPolicy::serial())
                .fused(fused)
                .env(EnvOverrides::Off)
                .build()
                .unwrap();
            let outs = sess.forward(&b).unwrap();
            assert_close("output", &tag, &outs[0], &out);
            let grads = sess.backward(Tensor::ones(outs[0].shape())).unwrap();
            assert_close("w0_self", &tag, &grads["w0_self"], &dw_self);
            assert_close("w0_neigh", &tag, &grads["w0_neigh"], &dw_neigh);
            if let Some(ref dwp) = dw_pool {
                assert_close("w0_pool", &tag, &grads["w0_pool"], dwp);
            }
        }
    }
}

#[test]
fn sage_mean_matches_dense_manual_reference() {
    check(&SageConfig::mean(5, vec![4]));
}

#[test]
fn sage_max_pool_matches_dense_manual_reference() {
    check(&SageConfig::max_pool(5, vec![4]));
}

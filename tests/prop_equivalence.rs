//! Property-based cross-preset equivalence: on *arbitrary* graphs and
//! dimensions, the optimized plan must agree with the baseline plan to
//! floating-point tolerance — outputs and gradients alike.

use gnnopt::core::{compile, CompileOptions, Preset};
use gnnopt::exec::{Bindings, Session};
use gnnopt::graph::{EdgeList, Graph};
use gnnopt::models::{gat, gcn, GatConfig, GcnConfig};
use gnnopt::tensor::Tensor;
use proptest::prelude::*;

/// Arbitrary multigraphs with `iso` guaranteed isolated trailing vertices
/// (edges only touch the first `n`), so the executor's empty-group
/// identity semantics are exercised by every equivalence case.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..20, 0usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..60)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

fn run(
    ir: &gnnopt::core::IrGraph,
    vals: &std::collections::HashMap<String, Tensor>,
    g: &Graph,
    preset: Preset,
) -> (Tensor, std::collections::HashMap<String, Tensor>) {
    let compiled = compile(ir, true, &CompileOptions::preset(preset)).expect("compiles");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let mut sess = Session::builder(&compiled.plan, g)
        .build()
        .expect("session");
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out[0].clone(), grads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gat_equivalent_on_arbitrary_graphs(
        g in arb_graph(), seed in 0u64..1000, heads in 1usize..3, feat in 1usize..6,
    ) {
        let spec = gat(&GatConfig {
            in_dim: 4,
            layers: vec![(heads, feat)],
            negative_slope: 0.2,
            reorganized: false,
        }).unwrap();
        let vals = spec.init_values(&g, seed);
        let (o1, g1) = run(&spec.ir, &vals, &g, Preset::Dgl);
        let (o2, g2) = run(&spec.ir, &vals, &g, Preset::Ours);
        prop_assert!(o1.allclose_with(&o2, 1e-3, 1e-3), "outputs differ by {}", o1.max_abs_diff(&o2));
        for (k, v) in &g1 {
            prop_assert!(v.allclose_with(&g2[k], 1e-2, 1e-2), "grad {k} differs by {}", v.max_abs_diff(&g2[k]));
        }
    }

    #[test]
    fn gcn_equivalent_on_arbitrary_graphs(
        g in arb_graph(), seed in 0u64..1000, hidden in 1usize..8,
    ) {
        let spec = gcn(&GcnConfig::two_layer(3, hidden, 2)).unwrap();
        let vals = spec.init_values(&g, seed);
        let (o1, g1) = run(&spec.ir, &vals, &g, Preset::Dgl);
        let (o2, g2) = run(&spec.ir, &vals, &g, Preset::Ours);
        prop_assert!(o1.allclose_with(&o2, 1e-3, 1e-3));
        for (k, v) in &g1 {
            prop_assert!(v.allclose_with(&g2[k], 1e-2, 1e-2), "grad {k}");
        }
    }
}

//! Degree statistics: the interface between graphs and the GPU execution
//! model.
//!
//! The analytical simulator (`gnnopt-sim`) never touches edge arrays — all
//! it needs is `|V|`, `|E|` and the in-degree distribution, captured here.
//! This is what lets the benchmark harness evaluate *full-scale* Reddit
//! (233 K vertices, 115 M edges) analytically while numerical-correctness
//! tests run on scaled-down graphs.

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    /// Maximum in-degree.
    pub max: u32,
    /// Mean in-degree.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); 0 for regular graphs.
    pub cv: f64,
}

/// The graph-shape information consumed by cost models: vertex count, edge
/// count and the in-degree of every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    in_degrees: Vec<u32>,
    num_edges: usize,
}

impl GraphStats {
    /// Builds stats from an explicit in-degree vector.
    pub fn from_in_degrees(in_degrees: Vec<u32>) -> Self {
        let num_edges = in_degrees.iter().map(|&d| d as usize).sum();
        Self {
            in_degrees,
            num_edges,
        }
    }

    /// Synthesizes a power-law-ish degree distribution with the given
    /// vertex count, average degree and skew, *without* materializing any
    /// edges. Used to model full-scale datasets (e.g. Reddit) whose edge
    /// arrays would not fit the CPU budget.
    ///
    /// `skew = 0` gives a regular graph; larger skews concentrate degree on
    /// low-index vertices following `deg(i) ∝ (i+1)^-skew`, renormalized to
    /// preserve the requested edge count.
    pub fn synthesize_power_law(num_vertices: usize, avg_degree: f64, skew: f64) -> Self {
        assert!(num_vertices > 0, "need at least one vertex");
        let target_edges = (num_vertices as f64 * avg_degree).round() as usize;
        if skew <= 0.0 {
            let d = avg_degree.round() as u32;
            return Self::from_in_degrees(vec![d; num_vertices]);
        }
        let weights: Vec<f64> = (0..num_vertices)
            .map(|i| 1.0 / ((i + 1) as f64).powf(skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut degrees: Vec<u32> = weights
            .iter()
            .map(|w| ((w / total) * target_edges as f64).floor() as u32)
            .collect();
        // Distribute the rounding remainder round-robin so Σdeg == target.
        let assigned: usize = degrees.iter().map(|&d| d as usize).sum();
        let mut remainder = target_edges.saturating_sub(assigned);
        let mut i = 0;
        while remainder > 0 {
            degrees[i % num_vertices] += 1;
            remainder -= 1;
            i += 1;
        }
        Self::from_in_degrees(degrees)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.in_degrees.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Per-vertex in-degrees.
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// Average in-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.in_degrees.is_empty() {
            0.0
        } else {
            self.num_edges as f64 / self.in_degrees.len() as f64
        }
    }

    /// Summary statistics (max, mean, coefficient of variation).
    pub fn degree_summary(&self) -> DegreeSummary {
        let n = self.in_degrees.len().max(1) as f64;
        let mean = self.num_edges as f64 / n;
        let max = self.in_degrees.iter().copied().max().unwrap_or(0);
        let var = self
            .in_degrees
            .iter()
            .map(|&d| {
                let x = d as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        DegreeSummary { max, mean, cv }
    }

    /// Work imbalance of a vertex-balanced mapping: vertices are dealt
    /// round-robin to `workers` thread groups, each group's work is the sum
    /// of its vertices' degrees, and the imbalance is
    /// `max_group_work / mean_group_work` (≥ 1).
    ///
    /// This is the factor the paper's §5 identifies as the cost of
    /// vertex-balanced fusion on skewed graphs like Reddit.
    pub fn vertex_balanced_imbalance(&self, workers: usize) -> f64 {
        let workers = workers.max(1);
        if self.num_edges == 0 {
            return 1.0;
        }
        let num_groups = workers.min(self.in_degrees.len()).max(1);
        let mut group = vec![0u64; num_groups];
        for (i, &d) in self.in_degrees.iter().enumerate() {
            group[i % num_groups] += d as u64;
        }
        let max = *group.iter().max().expect("nonempty") as f64;
        let mean = self.num_edges as f64 / group.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            (max / mean).max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_balanced() {
        let s = GraphStats::synthesize_power_law(128, 8.0, 0.0);
        assert_eq!(s.num_edges(), 1024);
        assert!((s.vertex_balanced_imbalance(32) - 1.0).abs() < 1e-9);
        assert_eq!(s.degree_summary().max, 8);
    }

    #[test]
    fn power_law_preserves_edge_count() {
        let s = GraphStats::synthesize_power_law(1000, 49.2, 1.2);
        assert_eq!(s.num_edges(), 49200);
        assert!(s.degree_summary().max > 100);
    }

    #[test]
    fn skew_increases_imbalance() {
        let flat = GraphStats::synthesize_power_law(1024, 16.0, 0.0);
        let skewed = GraphStats::synthesize_power_law(1024, 16.0, 1.5);
        assert!(
            skewed.vertex_balanced_imbalance(64) > flat.vertex_balanced_imbalance(64),
            "skewed graphs must show more vertex-balanced imbalance"
        );
    }

    #[test]
    fn imbalance_at_least_one() {
        let s = GraphStats::from_in_degrees(vec![0, 0, 10, 0]);
        assert!(s.vertex_balanced_imbalance(4) >= 1.0);
    }

    #[test]
    fn empty_graph_degenerate() {
        let s = GraphStats::from_in_degrees(vec![0; 4]);
        assert_eq!(s.num_edges(), 0);
        assert_eq!(s.vertex_balanced_imbalance(8), 1.0);
        assert_eq!(s.avg_degree(), 0.0);
    }
}

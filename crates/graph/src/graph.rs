use crate::{EdgeList, GraphStats};

/// One direction of adjacency in CSR layout with per-entry edge ids.
///
/// `indptr` has `n + 1` entries; the neighbours of vertex `v` are
/// `nbr[indptr[v]..indptr[v+1]]` and the corresponding canonical edge ids
/// are `eid[...]` over the same range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    indptr: Vec<usize>,
    nbr: Vec<u32>,
    eid: Vec<u32>,
}

impl Adjacency {
    /// Neighbour ids of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.nbr[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Canonical edge ids incident to `v` in this direction.
    pub fn edge_ids(&self, v: usize) -> &[u32] {
        &self.eid[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Degree of `v` in this direction.
    pub fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    /// The `indptr` offsets array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }
}

/// A directed graph in dual-CSR form (by destination and by source), with a
/// canonical destination-major edge numbering shared by both directions.
///
/// This is the structure every graph-related kernel in `gnnopt-exec`
/// iterates; its `O(|V| + |E|)` index arrays are also what the IO cost
/// model charges for reading graph topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    num_edges: usize,
    /// Indexed by destination; neighbours are sources. Edge ids here are
    /// contiguous (`eid[i] == i`) by the canonical ordering.
    in_adj: Adjacency,
    /// Indexed by source; neighbours are destinations.
    out_adj: Adjacency,
    /// `src[e]`, `dst[e]` for canonical edge id `e`.
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl Graph {
    /// Builds the dual-CSR representation from a canonical edge list.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let m = el.num_edges();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for &(s, d) in el.edges() {
            src.push(s);
            dst.push(d);
        }

        // In-adjacency: the canonical order is already destination-major.
        let mut in_indptr = vec![0usize; n + 1];
        for &d in &dst {
            in_indptr[d as usize + 1] += 1;
        }
        for v in 0..n {
            in_indptr[v + 1] += in_indptr[v];
        }
        let in_adj = Adjacency {
            indptr: in_indptr,
            nbr: src.clone(),
            eid: (0..m as u32).collect(),
        };

        // Out-adjacency: counting sort by source.
        let mut out_indptr = vec![0usize; n + 1];
        for &s in &src {
            out_indptr[s as usize + 1] += 1;
        }
        for v in 0..n {
            out_indptr[v + 1] += out_indptr[v];
        }
        let mut cursor = out_indptr.clone();
        let mut out_nbr = vec![0u32; m];
        let mut out_eid = vec![0u32; m];
        for e in 0..m {
            let s = src[e] as usize;
            out_nbr[cursor[s]] = dst[e];
            out_eid[cursor[s]] = e as u32;
            cursor[s] += 1;
        }
        let out_adj = Adjacency {
            indptr: out_indptr,
            nbr: out_nbr,
            eid: out_eid,
        };

        Self {
            num_vertices: n,
            num_edges: m,
            in_adj,
            out_adj,
            src,
            dst,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Source vertex of canonical edge `e`.
    pub fn src(&self, e: usize) -> usize {
        self.src[e] as usize
    }

    /// Destination vertex of canonical edge `e`.
    pub fn dst(&self, e: usize) -> usize {
        self.dst[e] as usize
    }

    /// All edge sources, indexed by canonical edge id.
    pub fn src_slice(&self) -> &[u32] {
        &self.src
    }

    /// All edge destinations, indexed by canonical edge id.
    pub fn dst_slice(&self) -> &[u32] {
        &self.dst
    }

    /// In-adjacency (neighbours are sources; iteration grouped by dst).
    pub fn in_adj(&self) -> &Adjacency {
        &self.in_adj
    }

    /// Out-adjacency (neighbours are destinations; iteration grouped by src).
    pub fn out_adj(&self) -> &Adjacency {
        &self.out_adj
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_adj.degree(v)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_adj.degree(v)
    }

    /// Degree statistics consumed by the GPU execution model.
    pub fn stats(&self) -> GraphStats {
        GraphStats::from_in_degrees(
            (0..self.num_vertices)
                .map(|v| self.in_degree(v) as u32)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        Graph::from_edge_list(&EdgeList::from_pairs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn canonical_edge_ids_are_dst_major() {
        let g = diamond();
        // dst-major order: (0,1), (0,2), (1,3), (2,3)
        assert_eq!(g.src(0), 0);
        assert_eq!(g.dst(0), 1);
        assert_eq!(g.dst(3), 3);
        assert_eq!(g.src(3), 2);
    }

    #[test]
    fn in_adj_edge_ids_contiguous() {
        let g = diamond();
        assert_eq!(g.in_adj().edge_ids(3), &[2, 3]);
        assert_eq!(g.in_adj().neighbors(3), &[1, 2]);
    }

    #[test]
    fn out_adj_consistent_with_edges() {
        let g = diamond();
        for v in 0..g.num_vertices() {
            for (&d, &e) in g.out_adj().neighbors(v).iter().zip(g.out_adj().edge_ids(v)) {
                assert_eq!(g.src(e as usize), v);
                assert_eq!(g.dst(e as usize), d as usize);
            }
        }
    }

    #[test]
    fn degree_sums_equal_edge_count() {
        let g = diamond();
        let in_sum: usize = (0..4).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..4).map(|v| g.out_degree(v)).sum();
        assert_eq!(in_sum, g.num_edges());
        assert_eq!(out_sum, g.num_edges());
    }
}

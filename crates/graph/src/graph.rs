use crate::{EdgeList, GraphStats};

/// One direction of adjacency in CSR layout with per-entry edge ids.
///
/// `indptr` has `n + 1` entries; the neighbours of vertex `v` are
/// `nbr[indptr[v]..indptr[v+1]]` and the corresponding canonical edge ids
/// are `eid[...]` over the same range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    indptr: Vec<usize>,
    nbr: Vec<u32>,
    eid: Vec<u32>,
}

impl Adjacency {
    /// Neighbour ids of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.nbr[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Canonical edge ids incident to `v` in this direction.
    pub fn edge_ids(&self, v: usize) -> &[u32] {
        &self.eid[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Degree of `v` in this direction.
    pub fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    /// The `indptr` offsets array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }
}

/// A directed graph in dual-CSR form (by destination and by source), with a
/// canonical destination-major edge numbering shared by both directions.
///
/// This is the structure every graph-related kernel in `gnnopt-exec`
/// iterates; its `O(|V| + |E|)` index arrays are also what the IO cost
/// model charges for reading graph topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    num_edges: usize,
    /// Indexed by destination; neighbours are sources. Edge ids here are
    /// contiguous (`eid[i] == i`) by the canonical ordering.
    in_adj: Adjacency,
    /// Indexed by source; neighbours are destinations.
    out_adj: Adjacency,
    /// `src[e]`, `dst[e]` for canonical edge id `e`.
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl Graph {
    /// Builds the dual-CSR representation from a canonical edge list.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let m = el.num_edges();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for &(s, d) in el.edges() {
            src.push(s);
            dst.push(d);
        }

        // In-adjacency: the canonical order is already destination-major.
        let mut in_indptr = vec![0usize; n + 1];
        for &d in &dst {
            in_indptr[d as usize + 1] += 1;
        }
        for v in 0..n {
            in_indptr[v + 1] += in_indptr[v];
        }
        let in_adj = Adjacency {
            indptr: in_indptr,
            nbr: src.clone(),
            eid: (0..m as u32).collect(),
        };

        // Out-adjacency: counting sort by source.
        let mut out_indptr = vec![0usize; n + 1];
        for &s in &src {
            out_indptr[s as usize + 1] += 1;
        }
        for v in 0..n {
            out_indptr[v + 1] += out_indptr[v];
        }
        let mut cursor = out_indptr.clone();
        let mut out_nbr = vec![0u32; m];
        let mut out_eid = vec![0u32; m];
        for e in 0..m {
            let s = src[e] as usize;
            out_nbr[cursor[s]] = dst[e];
            out_eid[cursor[s]] = e as u32;
            cursor[s] += 1;
        }
        let out_adj = Adjacency {
            indptr: out_indptr,
            nbr: out_nbr,
            eid: out_eid,
        };

        Self {
            num_vertices: n,
            num_edges: m,
            in_adj,
            out_adj,
            src,
            dst,
        }
    }

    /// Reassembles a graph from raw dual-CSR parts **without checking
    /// any invariant** — the deserialization seam for transports that
    /// ship CSR arrays across processes (ROADMAP item 4), and the only
    /// way tests can build deliberately corrupt graphs for
    /// [`Graph::validate`]. Every consumer of an untrusted graph must
    /// call [`Graph::validate`] before executing on it; the session
    /// builders in `gnnopt-exec` do so unconditionally.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts_unchecked(
        num_vertices: usize,
        in_indptr: Vec<usize>,
        in_nbr: Vec<u32>,
        in_eid: Vec<u32>,
        out_indptr: Vec<usize>,
        out_nbr: Vec<u32>,
        out_eid: Vec<u32>,
        src: Vec<u32>,
        dst: Vec<u32>,
    ) -> Self {
        Self {
            num_vertices,
            num_edges: src.len(),
            in_adj: Adjacency {
                indptr: in_indptr,
                nbr: in_nbr,
                eid: in_eid,
            },
            out_adj: Adjacency {
                indptr: out_indptr,
                nbr: out_nbr,
                eid: out_eid,
            },
            src,
            dst,
        }
    }

    /// Checks every structural invariant the kernels index by, naming
    /// the first violated one: CSR `indptr` shape/monotonicity/total in
    /// both directions, in-bounds neighbor and edge endpoints,
    /// dual-CSR/edge-array agreement, and the canonical dst-major edge
    /// numbering (`in_adj.eid[i] == i`, destinations non-decreasing).
    ///
    /// Graphs built by [`Graph::from_edge_list`] or
    /// [`Graph::permute_vertices`] satisfy this by construction; the
    /// check exists so graphs arriving through
    /// [`Graph::from_raw_parts_unchecked`] (a future wire transport, a
    /// spilled file) fail **at session build** with a named invariant
    /// instead of UB-adjacent indexing deep inside a kernel. Cost is
    /// one `O(|V| + |E|)` pass per direction.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices;
        let m = self.num_edges;
        if self.src.len() != m || self.dst.len() != m {
            return Err(format!(
                "edge arrays disagree with num_edges: |src|={}, |dst|={}, m={m}",
                self.src.len(),
                self.dst.len()
            ));
        }
        if m > u32::MAX as usize || n > u32::MAX as usize {
            return Err(format!("graph exceeds u32 id space: n={n}, m={m}"));
        }
        for (name, adj) in [("in_adj", &self.in_adj), ("out_adj", &self.out_adj)] {
            if adj.indptr.len() != n + 1 {
                return Err(format!(
                    "{name}.indptr has {} entries, expected n+1={}",
                    adj.indptr.len(),
                    n + 1
                ));
            }
            if adj.indptr[0] != 0 {
                return Err(format!("{name}.indptr[0] = {}, expected 0", adj.indptr[0]));
            }
            if let Some(v) = (0..n).find(|&v| adj.indptr[v] > adj.indptr[v + 1]) {
                return Err(format!(
                    "{name}.indptr decreases at vertex {v}: {} > {}",
                    adj.indptr[v],
                    adj.indptr[v + 1]
                ));
            }
            if adj.indptr[n] != m {
                return Err(format!(
                    "{name}.indptr[n] = {}, expected num_edges = {m}",
                    adj.indptr[n]
                ));
            }
            if adj.nbr.len() != m || adj.eid.len() != m {
                return Err(format!(
                    "{name} arrays disagree with num_edges: |nbr|={}, |eid|={}, m={m}",
                    adj.nbr.len(),
                    adj.eid.len()
                ));
            }
            if let Some(i) = adj.nbr.iter().position(|&u| u as usize >= n) {
                return Err(format!(
                    "{name}.nbr[{i}] = {} is out of bounds (n={n})",
                    adj.nbr[i]
                ));
            }
            if let Some(i) = adj.eid.iter().position(|&e| e as usize >= m) {
                return Err(format!(
                    "{name}.eid[{i}] = {} is out of bounds (m={m})",
                    adj.eid[i]
                ));
            }
        }
        if let Some(i) = self.src.iter().position(|&u| u as usize >= n) {
            return Err(format!(
                "src[{i}] = {} is out of bounds (n={n})",
                self.src[i]
            ));
        }
        if let Some(i) = self.dst.iter().position(|&u| u as usize >= n) {
            return Err(format!(
                "dst[{i}] = {} is out of bounds (n={n})",
                self.dst[i]
            ));
        }
        // Canonical numbering: in_adj walks edge ids contiguously and
        // destinations are grouped dst-major.
        if let Some(i) = (0..m).find(|&i| self.in_adj.eid[i] as usize != i) {
            return Err(format!(
                "in_adj.eid[{i}] = {} breaks the canonical dst-major numbering (expected {i})",
                self.in_adj.eid[i]
            ));
        }
        if let Some(e) = (1..m).find(|&e| self.dst[e] < self.dst[e - 1]) {
            return Err(format!(
                "dst is not non-decreasing at edge {e}: {} after {}",
                self.dst[e],
                self.dst[e - 1]
            ));
        }
        for v in 0..n {
            let (lo, hi) = (self.in_adj.indptr[v], self.in_adj.indptr[v + 1]);
            for i in lo..hi {
                if self.dst[i] as usize != v {
                    return Err(format!(
                        "in_adj row {v} claims edge {i}, but dst[{i}] = {}",
                        self.dst[i]
                    ));
                }
                if self.in_adj.nbr[i] != self.src[i] {
                    return Err(format!(
                        "in_adj.nbr[{i}] = {} disagrees with src[{i}] = {}",
                        self.in_adj.nbr[i], self.src[i]
                    ));
                }
            }
            let (lo, hi) = (self.out_adj.indptr[v], self.out_adj.indptr[v + 1]);
            for i in lo..hi {
                let e = self.out_adj.eid[i] as usize;
                if self.src[e] as usize != v {
                    return Err(format!(
                        "out_adj row {v} lists edge {e}, but src[{e}] = {}",
                        self.src[e]
                    ));
                }
                if self.out_adj.nbr[i] != self.dst[e] {
                    return Err(format!(
                        "out_adj.nbr[{i}] = {} disagrees with dst[{e}] = {}",
                        self.out_adj.nbr[i], self.dst[e]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Source vertex of canonical edge `e`.
    pub fn src(&self, e: usize) -> usize {
        self.src[e] as usize
    }

    /// Destination vertex of canonical edge `e`.
    pub fn dst(&self, e: usize) -> usize {
        self.dst[e] as usize
    }

    /// All edge sources, indexed by canonical edge id.
    pub fn src_slice(&self) -> &[u32] {
        &self.src
    }

    /// All edge destinations, indexed by canonical edge id.
    pub fn dst_slice(&self) -> &[u32] {
        &self.dst
    }

    /// In-adjacency (neighbours are sources; iteration grouped by dst).
    pub fn in_adj(&self) -> &Adjacency {
        &self.in_adj
    }

    /// Out-adjacency (neighbours are destinations; iteration grouped by src).
    pub fn out_adj(&self) -> &Adjacency {
        &self.out_adj
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_adj.degree(v)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_adj.degree(v)
    }

    /// Degree statistics consumed by the GPU execution model.
    pub fn stats(&self) -> GraphStats {
        GraphStats::from_in_degrees(
            (0..self.num_vertices)
                .map(|v| self.in_degree(v) as u32)
                .collect(),
        )
    }

    /// Reconstructs the canonical [`EdgeList`] of this graph (sorted
    /// `(dst, src)` ascending). This is the interchange form the
    /// reordering strategies and locality metrics consume; note it
    /// re-canonicalizes, so a graph built by [`Graph::permute_vertices`]
    /// round-trips to the same vertex labeling but not necessarily the
    /// same within-group edge order.
    pub fn edge_list(&self) -> EdgeList {
        let pairs: Vec<(u32, u32)> = self
            .src
            .iter()
            .copied()
            .zip(self.dst.iter().copied())
            .collect();
        EdgeList::from_pairs(self.num_vertices, &pairs)
    }

    /// Relabels every vertex through the bijection `new_of_old`
    /// (`new_of_old[old] = new`), returning the isomorphic graph plus the
    /// induced canonical-edge-id map `new_eid_of_old` (`map[old_e]` is the
    /// relabeled graph's id of edge `old_e`).
    ///
    /// The permutation is **stable**: the new graph's edges are grouped by
    /// new destination, and inside each destination group they keep the
    /// source graph's edge order (not re-sorted by new source id). Since a
    /// destination group maps wholly onto one new destination group, every
    /// per-vertex in-neighbor *sequence* is preserved under relabeling —
    /// which is what makes `ByDst` reductions on the permuted graph
    /// bit-identical to the original, not merely equal up to
    /// floating-point reassociation.
    ///
    /// # Panics
    ///
    /// Panics if `new_of_old` is not a bijection on `0..num_vertices`.
    pub fn permute_vertices(&self, new_of_old: &[u32]) -> (Graph, Vec<u32>) {
        let n = self.num_vertices;
        let m = self.num_edges;
        assert_eq!(new_of_old.len(), n, "permutation length must match |V|");
        let mut seen = vec![false; n];
        for &id in new_of_old {
            assert!((id as usize) < n, "permutation id {id} out of range");
            assert!(!seen[id as usize], "permutation repeats id {id}");
            seen[id as usize] = true;
        }

        // Counting sort of edges by new destination, preserving the old
        // edge order inside each destination bucket (stability).
        let mut in_indptr = vec![0usize; n + 1];
        for &d in &self.dst {
            in_indptr[new_of_old[d as usize] as usize + 1] += 1;
        }
        for v in 0..n {
            in_indptr[v + 1] += in_indptr[v];
        }
        let mut cursor = in_indptr.clone();
        let mut src = vec![0u32; m];
        let mut dst = vec![0u32; m];
        let mut new_eid_of_old = vec![0u32; m];
        for e in 0..m {
            let nd = new_of_old[self.dst[e] as usize];
            let pos = cursor[nd as usize];
            cursor[nd as usize] += 1;
            src[pos] = new_of_old[self.src[e] as usize];
            dst[pos] = nd;
            new_eid_of_old[e] = pos as u32;
        }
        let in_adj = Adjacency {
            indptr: in_indptr,
            nbr: src.clone(),
            eid: (0..m as u32).collect(),
        };

        // Out-adjacency: counting sort by new source over the new order.
        let mut out_indptr = vec![0usize; n + 1];
        for &s in &src {
            out_indptr[s as usize + 1] += 1;
        }
        for v in 0..n {
            out_indptr[v + 1] += out_indptr[v];
        }
        let mut cursor = out_indptr.clone();
        let mut out_nbr = vec![0u32; m];
        let mut out_eid = vec![0u32; m];
        for e in 0..m {
            let s = src[e] as usize;
            out_nbr[cursor[s]] = dst[e];
            out_eid[cursor[s]] = e as u32;
            cursor[s] += 1;
        }
        let out_adj = Adjacency {
            indptr: out_indptr,
            nbr: out_nbr,
            eid: out_eid,
        };

        (
            Graph {
                num_vertices: n,
                num_edges: m,
                in_adj,
                out_adj,
                src,
                dst,
            },
            new_eid_of_old,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        Graph::from_edge_list(&EdgeList::from_pairs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn canonical_edge_ids_are_dst_major() {
        let g = diamond();
        // dst-major order: (0,1), (0,2), (1,3), (2,3)
        assert_eq!(g.src(0), 0);
        assert_eq!(g.dst(0), 1);
        assert_eq!(g.dst(3), 3);
        assert_eq!(g.src(3), 2);
    }

    #[test]
    fn in_adj_edge_ids_contiguous() {
        let g = diamond();
        assert_eq!(g.in_adj().edge_ids(3), &[2, 3]);
        assert_eq!(g.in_adj().neighbors(3), &[1, 2]);
    }

    #[test]
    fn out_adj_consistent_with_edges() {
        let g = diamond();
        for v in 0..g.num_vertices() {
            for (&d, &e) in g.out_adj().neighbors(v).iter().zip(g.out_adj().edge_ids(v)) {
                assert_eq!(g.src(e as usize), v);
                assert_eq!(g.dst(e as usize), d as usize);
            }
        }
    }

    #[test]
    fn degree_sums_equal_edge_count() {
        let g = diamond();
        let in_sum: usize = (0..4).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..4).map(|v| g.out_degree(v)).sum();
        assert_eq!(in_sum, g.num_edges());
        assert_eq!(out_sum, g.num_edges());
    }

    #[test]
    fn edge_list_roundtrips_through_from_edge_list() {
        let el = EdgeList::from_pairs(5, &[(0, 1), (3, 1), (4, 2), (1, 4)]);
        let g = Graph::from_edge_list(&el);
        assert_eq!(g.edge_list(), el);
    }

    #[test]
    fn permute_vertices_identity_is_noop() {
        let g = diamond();
        let (p, emap) = g.permute_vertices(&[0, 1, 2, 3]);
        assert_eq!(p, g);
        assert_eq!(emap, vec![0, 1, 2, 3]);
    }

    #[test]
    fn permute_vertices_relabels_consistently() {
        let g = diamond();
        // Reverse labeling: 0↔3, 1↔2.
        let (p, emap) = g.permute_vertices(&[3, 2, 1, 0]);
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.num_edges(), 4);
        for (e, &ne) in emap.iter().enumerate() {
            let ne = ne as usize;
            assert_eq!(p.src(ne), 3 - g.src(e));
            assert_eq!(p.dst(ne), 3 - g.dst(e));
        }
        // Degrees move with the labels.
        assert_eq!(p.in_degree(0), g.in_degree(3));
        assert_eq!(p.out_degree(3), g.out_degree(0));
    }

    /// The stability contract: every new destination group lists its
    /// (relabeled) sources in the *same order* the old group listed them.
    #[test]
    fn permute_vertices_preserves_in_neighbor_sequences() {
        let el = EdgeList::from_pairs(6, &[(0, 3), (5, 3), (2, 3), (1, 3), (4, 0), (3, 5)]);
        let g = Graph::from_edge_list(&el);
        let perm = [4u32, 2, 5, 1, 0, 3];
        let (p, _) = g.permute_vertices(&perm);
        for v in 0..g.num_vertices() {
            let relabeled: Vec<u32> = g
                .in_adj()
                .neighbors(v)
                .iter()
                .map(|&u| perm[u as usize])
                .collect();
            assert_eq!(
                p.in_adj().neighbors(perm[v] as usize),
                relabeled.as_slice(),
                "in-neighbor sequence of vertex {v} must be preserved"
            );
        }
    }

    #[test]
    #[should_panic(expected = "repeats id")]
    fn permute_vertices_rejects_non_bijection() {
        let _ = diamond().permute_vertices(&[0, 0, 1, 2]);
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        assert_eq!(diamond().validate(), Ok(()));
        let (p, _) = diamond().permute_vertices(&[3, 2, 1, 0]);
        assert_eq!(p.validate(), Ok(()));
        let empty = Graph::from_edge_list(&EdgeList::from_pairs(3, &[]));
        assert_eq!(empty.validate(), Ok(()));
    }

    #[test]
    fn validate_names_each_broken_invariant() {
        let g = diamond();
        let corrupt = |f: &dyn Fn(&mut Graph)| {
            let mut c = g.clone();
            f(&mut c);
            c.validate().expect_err("corruption must be detected")
        };

        let e = corrupt(&|c| c.in_adj.indptr[2] = 4);
        assert!(e.contains("indptr decreases"), "{e}");
        let e = corrupt(&|c| c.in_adj.indptr[4] = 3);
        assert!(e.contains("expected num_edges"), "{e}");
        let e = corrupt(&|c| c.out_adj.nbr[0] = 9);
        assert!(e.contains("out of bounds"), "{e}");
        let e = corrupt(&|c| c.in_adj.eid[1] = 0);
        assert!(e.contains("canonical dst-major numbering"), "{e}");
        let e = corrupt(&|c| c.dst.swap(0, 3));
        assert!(e.contains("non-decreasing"), "{e}");
        let e = corrupt(&|c| c.src[1] = 3);
        assert!(e.contains("src[1]"), "{e}");
        let e = corrupt(&|c| {
            c.src.pop();
            c.dst.pop();
        });
        assert!(e.contains("disagree with num_edges"), "{e}");
    }

    #[test]
    fn raw_parts_roundtrip_validates() {
        let g = diamond();
        let rebuilt = Graph::from_raw_parts_unchecked(
            g.num_vertices,
            g.in_adj.indptr.clone(),
            g.in_adj.nbr.clone(),
            g.in_adj.eid.clone(),
            g.out_adj.indptr.clone(),
            g.out_adj.nbr.clone(),
            g.out_adj.eid.clone(),
            g.src.clone(),
            g.dst.clone(),
        );
        assert_eq!(rebuilt, g);
        assert_eq!(rebuilt.validate(), Ok(()));
        // An unchecked constructor happily holds garbage; validate is
        // the gate.
        let bad = Graph::from_raw_parts_unchecked(
            2,
            vec![0, 1],
            vec![5],
            vec![0],
            vec![0, 1, 1],
            vec![1],
            vec![0],
            vec![0],
            vec![1],
        );
        let e = bad.validate().expect_err("bad graph must fail");
        assert!(e.contains("in_adj.indptr has 2 entries"), "{e}");
    }
}

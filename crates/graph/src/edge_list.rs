/// A raw directed edge list (COO form) over `n` vertices.
///
/// This is the interchange format produced by generators and consumed by
/// [`crate::Graph::from_edge_list`]. Edges are `(src, dst)` pairs;
/// construction deduplicates and removes self-loops, because none of the
/// paper's models use them and they would distort degree statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    /// Edges sorted destination-major: `(dst, src)` ascending.
    edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Builds an edge list from `(src, dst)` pairs, dropping self-loops and
    /// duplicates, and sorting destination-major.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`, or if `num_vertices`
    /// or the edge count exceeds the `u32` id space (vertex and edge ids
    /// are `u32` throughout the CSR pipeline; a silent wrap here would
    /// corrupt every downstream adjacency structure).
    pub fn from_pairs(num_vertices: usize, pairs: &[(u32, u32)]) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "num_vertices {num_vertices} exceeds the u32 vertex-id space ({})",
            u32::MAX
        );
        let mut edges: Vec<(u32, u32)> = pairs
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| {
                assert!(
                    (s as usize) < num_vertices && (d as usize) < num_vertices,
                    "edge ({s}, {d}) out of range for {num_vertices} vertices"
                );
                (s, d)
            })
            .collect();
        edges.sort_unstable_by_key(|&(s, d)| (d, s));
        edges.dedup();
        assert!(
            edges.len() <= u32::MAX as usize,
            "edge count {} exceeds the u32 edge-id space ({})",
            edges.len(),
            u32::MAX
        );
        Self {
            num_vertices,
            edges,
        }
    }

    /// Adds the reverse of every edge (making the graph symmetric), then
    /// re-canonicalizes.
    pub fn to_undirected(&self) -> Self {
        let mut pairs: Vec<(u32, u32)> = self.edges.clone();
        pairs.extend(self.edges.iter().map(|&(s, d)| (d, s)));
        Self::from_pairs(self.num_vertices, &pairs)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (deduplicated, loop-free) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical destination-major edge slice: `(src, dst)` pairs where
    /// position in this slice *is* the edge id.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Returns true if the list contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_loops() {
        let el = EdgeList::from_pairs(3, &[(0, 1), (0, 1), (2, 2), (1, 0)]);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edges(), &[(1, 0), (0, 1)]);
    }

    #[test]
    fn destination_major_order() {
        let el = EdgeList::from_pairs(4, &[(3, 1), (0, 2), (2, 1), (0, 1)]);
        assert_eq!(el.edges(), &[(0, 1), (2, 1), (3, 1), (0, 2)]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let el = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]);
        let und = el.to_undirected();
        assert_eq!(und.num_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = EdgeList::from_pairs(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 vertex-id space")]
    fn vertex_count_past_u32_panics() {
        let _ = EdgeList::from_pairs(u32::MAX as usize + 1, &[]);
    }

    #[test]
    fn vertex_count_at_u32_boundary_is_accepted() {
        // Exactly u32::MAX vertices is representable (ids 0..MAX-1 fit).
        let el = EdgeList::from_pairs(u32::MAX as usize, &[(0, 1)]);
        assert_eq!(el.num_edges(), 1);
    }
}

//! Synthetic graph generators.
//!
//! All generators are deterministic per seed (using `SmallRng`) so every
//! experiment in the benchmark harness is reproducible.

use crate::EdgeList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: `num_edges` distinct directed edges drawn
/// uniformly.
///
/// # Panics
///
/// Panics if `num_edges` exceeds the number of possible loop-free edges.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList {
    let possible = num_vertices.saturating_mul(num_vertices.saturating_sub(1));
    assert!(
        num_edges <= possible,
        "cannot place {num_edges} edges in a {num_vertices}-vertex simple digraph"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(num_edges + num_edges / 8);
    // Oversample, dedup via EdgeList, and top up until the target is met.
    let mut el = EdgeList::from_pairs(num_vertices, &[]);
    while el.num_edges() < num_edges {
        let need = num_edges - el.num_edges();
        pairs.clear();
        pairs.extend(el.edges().iter().copied());
        for _ in 0..need + need / 4 + 4 {
            let s = rng.gen_range(0..num_vertices) as u32;
            let d = rng.gen_range(0..num_vertices) as u32;
            pairs.push((s, d));
        }
        el = EdgeList::from_pairs(num_vertices, &pairs);
        if el.num_edges() > num_edges {
            let trimmed: Vec<_> = el.edges()[..num_edges].to_vec();
            el = EdgeList::from_pairs(num_vertices, &trimmed);
        }
    }
    el
}

/// R-MAT power-law generator (Chakrabarti et al.), the standard model for
/// skewed social graphs like Reddit.
///
/// `scale` is log2 of the vertex count; `edge_factor` is the average
/// degree; `(a, b, c)` are the recursive quadrant probabilities (the
/// remaining mass goes to the fourth quadrant). Typical skew: `a = 0.57,
/// b = 0.19, c = 0.19`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> EdgeList {
    assert!(a + b + c < 1.0, "quadrant probabilities must sum below 1");
    assert!(
        scale <= 31,
        "rmat scale {scale} produces vertex ids past the u32 id space (max scale 31)"
    );
    let n = 1usize << scale;
    let target = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let sample = |rng: &mut SmallRng| {
        let (mut s, mut d) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (si, di) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            s |= si << bit;
            d |= di << bit;
        }
        (s as u32, d as u32)
    };
    // Oversample once, then top up only for the deduplication deficit, so
    // the O(m log m) canonicalization runs a bounded number of times.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(target + target / 2);
    for _ in 0..target + target / 4 + 16 {
        pairs.push(sample(&mut rng));
    }
    let mut el = EdgeList::from_pairs(n, &pairs);
    while el.num_edges() < target {
        let deficit = target - el.num_edges();
        pairs.clear();
        pairs.extend_from_slice(el.edges());
        for _ in 0..deficit * 2 + 1024 {
            pairs.push(sample(&mut rng));
        }
        el = EdgeList::from_pairs(n, &pairs);
    }
    if el.num_edges() > target {
        // Deterministic trim, keeping canonical order.
        let trimmed: Vec<_> = el.edges()[..target].to_vec();
        EdgeList::from_pairs(n, &trimmed)
    } else {
        el
    }
}

/// A directed ring: `i → (i + 1) mod n`.
pub fn ring(num_vertices: usize) -> EdgeList {
    let pairs: Vec<(u32, u32)> = (0..num_vertices)
        .map(|i| (i as u32, ((i + 1) % num_vertices) as u32))
        .collect();
    EdgeList::from_pairs(num_vertices, &pairs)
}

/// A star: every spoke `1..n` points at hub `0`. The most degree-skewed
/// graph possible — used by load-imbalance tests.
pub fn star(num_vertices: usize) -> EdgeList {
    let pairs: Vec<(u32, u32)> = (1..num_vertices).map(|i| (i as u32, 0)).collect();
    EdgeList::from_pairs(num_vertices, &pairs)
}

/// A 4-connected 2-D grid of `rows × cols` vertices (directed both ways).
pub fn grid(rows: usize, cols: usize) -> EdgeList {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut pairs = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pairs.push((id(r, c), id(r, c + 1)));
                pairs.push((id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                pairs.push((id(r, c), id(r + 1, c)));
                pairs.push((id(r + 1, c), id(r, c)));
            }
        }
    }
    EdgeList::from_pairs(rows * cols, &pairs)
}

/// Planted-partition (stochastic block model) graph: `num_blocks`
/// equal-sized communities, each vertex drawing ~`within_degree` in-edges
/// from its own block and ~`between_degree` from the others.
///
/// The ground-truth community structure makes this the reference workload
/// for locality/reordering experiments: a clustered vertex order should
/// recover near-block-diagonal adjacency.
///
/// # Panics
///
/// Panics if `num_blocks` is zero or exceeds `num_vertices`.
pub fn planted_partition(
    num_vertices: usize,
    num_blocks: usize,
    within_degree: f64,
    between_degree: f64,
    seed: u64,
) -> EdgeList {
    assert!(
        num_blocks > 0 && num_blocks <= num_vertices,
        "need 1..=num_vertices blocks"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let block_size = num_vertices.div_ceil(num_blocks);
    let block_of = |v: usize| v / block_size;
    let mut pairs = Vec::new();
    for v in 0..num_vertices {
        let b = block_of(v);
        let lo = b * block_size;
        let hi = ((b + 1) * block_size).min(num_vertices);
        let within = poissonish(&mut rng, within_degree);
        for _ in 0..within {
            if hi - lo > 1 {
                let u = rng.gen_range(lo..hi) as u32;
                pairs.push((u, v as u32));
            }
        }
        let between = poissonish(&mut rng, between_degree);
        for _ in 0..between {
            if num_vertices > hi - lo {
                // Rejection-sample a vertex outside the block.
                loop {
                    let u = rng.gen_range(0..num_vertices);
                    if block_of(u) != b {
                        pairs.push((u as u32, v as u32));
                        break;
                    }
                }
            }
        }
    }
    EdgeList::from_pairs(num_vertices, &pairs)
}

/// A cheap integer sample with the given mean: `floor(mean)` plus one
/// with probability `frac(mean)`.
fn poissonish(rng: &mut SmallRng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    base + usize::from(rng.gen_bool(mean.fract().clamp(0.0, 1.0 - 1e-12)))
}

/// The complete digraph on `n` vertices (no loops).
pub fn complete(num_vertices: usize) -> EdgeList {
    let mut pairs = Vec::with_capacity(num_vertices * (num_vertices - 1));
    for s in 0..num_vertices as u32 {
        for d in 0..num_vertices as u32 {
            if s != d {
                pairs.push((s, d));
            }
        }
    }
    EdgeList::from_pairs(num_vertices, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "past the u32 id space")]
    fn rmat_scale_past_u32_panics() {
        let _ = rmat(32, 1, 0.57, 0.19, 0.19, 1);
    }

    #[test]
    fn erdos_renyi_exact_count_and_deterministic() {
        let a = erdos_renyi(64, 300, 9);
        let b = erdos_renyi(64, 300, 9);
        assert_eq!(a.num_edges(), 300);
        assert_eq!(a, b);
        let c = erdos_renyi(64, 300, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed() {
        let el = rmat(8, 16, 0.57, 0.19, 0.19, 3);
        let g = crate::Graph::from_edge_list(&el);
        let s = g.stats().degree_summary();
        assert!(
            s.max as f64 > 3.0 * s.mean,
            "rmat should be skewed: max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn ring_degrees_are_one() {
        let g = crate::Graph::from_edge_list(&ring(10));
        for v in 0..10 {
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn star_concentrates_in_degree() {
        let g = crate::Graph::from_edge_list(&star(17));
        assert_eq!(g.in_degree(0), 16);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn grid_edge_count() {
        let el = grid(3, 4);
        // horizontal: 3 rows × 3 gaps × 2 dirs + vertical: 2 gaps × 4 cols × 2
        assert_eq!(el.num_edges(), 3 * 3 * 2 + 2 * 4 * 2);
    }

    #[test]
    fn complete_has_all_pairs() {
        assert_eq!(complete(5).num_edges(), 20);
    }

    #[test]
    fn planted_partition_is_assortative() {
        let el = planted_partition(400, 8, 12.0, 2.0, 9);
        let block = |v: u32| v as usize / 50;
        let within = el
            .edges()
            .iter()
            .filter(|&&(s, d)| block(s) == block(d))
            .count();
        let frac = within as f64 / el.num_edges() as f64;
        // Expectation ≈ 12/(12+2) ≈ 0.86 (dedup pulls it down slightly).
        assert!(frac > 0.75, "within-block fraction too low: {frac}");
    }

    #[test]
    fn planted_partition_degree_matches_request() {
        let el = planted_partition(600, 6, 8.0, 4.0, 3);
        let avg = el.num_edges() as f64 / 600.0;
        // Dedup collisions shave a little off 12.
        assert!((9.0..=12.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn planted_partition_deterministic_per_seed() {
        assert_eq!(
            planted_partition(100, 4, 6.0, 1.0, 7),
            planted_partition(100, 4, 6.0, 1.0, 7)
        );
        assert_ne!(
            planted_partition(100, 4, 6.0, 1.0, 7),
            planted_partition(100, 4, 6.0, 1.0, 8)
        );
    }

    #[test]
    #[should_panic(expected = "blocks")]
    fn planted_partition_rejects_zero_blocks() {
        let _ = planted_partition(10, 0, 1.0, 1.0, 1);
    }
}

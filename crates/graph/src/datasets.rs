//! Profiles of the paper's evaluation datasets.
//!
//! Real Cora/Citeseer/Pubmed/Reddit files are not available offline, so
//! each profile records the *published* statistics (|V|, |E|, feature
//! width, class count) and can (a) synthesize an executable graph matched
//! to those statistics — full-size for the citation graphs, scaled for
//! Reddit — and (b) hand the *full-scale* degree distribution to the
//! analytical simulator so IO/memory figures are computed at paper scale
//! (see DESIGN.md §2 for the substitution argument).

use crate::generators;
use crate::{Graph, GraphStats};

/// Which generator family matches a dataset's degree profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Mild skew (citation networks).
    Citation,
    /// Heavy power-law skew (social networks; Reddit).
    Social,
}

/// A named dataset profile with published statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Published vertex count.
    pub num_vertices: usize,
    /// Published (directed) edge count.
    pub num_edges: usize,
    /// Input feature width.
    pub feature_dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Degree-profile family.
    pub topology: Topology,
    /// Scale factor applied when materializing an executable graph
    /// (1 = full size). Reddit uses 1/16 to fit the CPU budget.
    pub exec_scale: f64,
}

/// Cora citation network (2 708 vertices, 10 556 edges).
pub fn cora() -> DatasetSpec {
    DatasetSpec {
        name: "Cora",
        num_vertices: 2708,
        num_edges: 10556,
        feature_dim: 1433,
        num_classes: 7,
        topology: Topology::Citation,
        exec_scale: 1.0,
    }
}

/// Citeseer citation network (3 327 vertices, 9 104 edges).
pub fn citeseer() -> DatasetSpec {
    DatasetSpec {
        name: "Citeseer",
        num_vertices: 3327,
        num_edges: 9104,
        feature_dim: 3703,
        num_classes: 6,
        topology: Topology::Citation,
        exec_scale: 1.0,
    }
}

/// Pubmed citation network (19 717 vertices, 88 648 edges).
pub fn pubmed() -> DatasetSpec {
    DatasetSpec {
        name: "Pubmed",
        num_vertices: 19717,
        num_edges: 88648,
        feature_dim: 500,
        num_classes: 3,
        topology: Topology::Citation,
        exec_scale: 1.0,
    }
}

/// Reddit social network (232 965 vertices, ≈114.6 M edges). Executable
/// graphs are scaled to 1/16 of the vertices at the same average degree;
/// the analytical simulator always sees the full-scale statistics.
pub fn reddit() -> DatasetSpec {
    DatasetSpec {
        name: "Reddit",
        num_vertices: 232_965,
        num_edges: 114_615_892,
        feature_dim: 602,
        num_classes: 41,
        topology: Topology::Social,
        exec_scale: 1.0 / 16.0,
    }
}

/// All four node-classification datasets in the paper's Figure 7 order.
pub fn figure7_datasets() -> Vec<DatasetSpec> {
    vec![cora(), pubmed(), citeseer(), reddit()]
}

impl DatasetSpec {
    /// Average degree implied by the published statistics.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges as f64 / self.num_vertices as f64
    }

    /// Degree skew exponent for the analytical distribution.
    fn skew(&self) -> f64 {
        match self.topology {
            Topology::Citation => 0.55,
            Topology::Social => 0.9,
        }
    }

    /// Full-scale degree statistics for the analytical simulator.
    pub fn full_scale_stats(&self) -> GraphStats {
        GraphStats::synthesize_power_law(self.num_vertices, self.avg_degree(), self.skew())
    }

    /// Vertex count of the executable (possibly scaled) graph.
    pub fn exec_vertices(&self) -> usize {
        ((self.num_vertices as f64 * self.exec_scale).round() as usize).max(16)
    }

    /// Materializes an executable synthetic graph matched to the profile:
    /// `exec_vertices()` vertices at the published average degree, with the
    /// topology family's skew.
    pub fn build_graph(&self, seed: u64) -> Graph {
        let n = self.exec_vertices();
        let target_edges = (n as f64 * self.avg_degree()).round() as usize;
        let el = match self.topology {
            Topology::Citation => generators::erdos_renyi(n, target_edges, seed),
            Topology::Social => {
                // RMAT needs a power-of-two scale; round up, then trim to
                // the n highest-degree vertices with a *bijective* relabel.
                // (Folding surplus ids with `% n` manufactured self-loops
                // and over-weighted low ids whenever n wasn't a power of
                // two.) Trimming discards edges, so oversample the edge
                // factor and prefix-trim back to the target count.
                let scale = (n as f64).log2().ceil() as u32;
                let pow = 1usize << scale;
                let ef = (1.3 * target_edges as f64 / pow as f64).ceil() as usize;
                let el = generators::rmat(scale, ef.max(1), 0.57, 0.19, 0.19, seed);
                // Rank the 2^scale vertices by total degree (dense first,
                // id as tie-break) and keep the densest n.
                let mut deg = vec![0u32; pow];
                for &(s, d) in el.edges() {
                    deg[s as usize] += 1;
                    deg[d as usize] += 1;
                }
                let mut rank: Vec<u32> = (0..pow as u32).collect();
                rank.sort_unstable_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
                // new_id[v] = position of v in the density ranking; only
                // positions < n survive. The map is injective on the kept
                // set, so no two distinct edges can collide post-relabel.
                let mut new_id = vec![u32::MAX; pow];
                for (pos, &v) in rank.iter().enumerate().take(n) {
                    new_id[v as usize] = pos as u32;
                }
                let mut pairs: Vec<(u32, u32)> = el
                    .edges()
                    .iter()
                    .filter_map(|&(s, d)| {
                        let (s, d) = (new_id[s as usize], new_id[d as usize]);
                        (s != u32::MAX && d != u32::MAX).then_some((s, d))
                    })
                    .collect();
                // Deterministic prefix trim back down to the target count.
                pairs.truncate(target_edges);
                crate::EdgeList::from_pairs(n, &pairs)
            }
        };
        Graph::from_edge_list(&el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_statistics() {
        assert_eq!(cora().num_vertices, 2708);
        assert_eq!(citeseer().feature_dim, 3703);
        assert_eq!(pubmed().num_classes, 3);
        assert!(reddit().avg_degree() > 400.0);
    }

    #[test]
    fn full_scale_stats_match_published_counts() {
        let s = pubmed().full_scale_stats();
        assert_eq!(s.num_vertices(), 19717);
        assert_eq!(s.num_edges(), 88648);
    }

    #[test]
    fn exec_graph_close_to_target_density() {
        let d = cora();
        let g = d.build_graph(3);
        assert_eq!(g.num_vertices(), 2708);
        let got = g.num_edges() as f64;
        let want = 10556.0;
        assert!(
            (got - want).abs() / want < 0.05,
            "edge count {got} too far from {want}"
        );
    }

    #[test]
    fn reddit_exec_graph_is_scaled_but_dense() {
        let d = reddit();
        let g = d.build_graph(4);
        assert!(g.num_vertices() < 20_000);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 100.0, "scaled Reddit should stay dense, got {avg}");
    }

    #[test]
    fn social_exec_graph_has_no_self_loops_and_matches_avg_degree() {
        // Reddit's exec vertex count is NOT a power of two, so this
        // exercises the densest-prefix trim (the old `% n` fold both
        // manufactured self-loops and aliased distinct edges here).
        let d = reddit();
        let g = d.build_graph(11);
        assert_eq!(g.num_vertices() % 2, 0); // sanity: 14560, not 16384
        assert_ne!(
            g.num_vertices().count_ones(),
            1,
            "n must not be a power of two"
        );
        for e in 0..g.num_edges() {
            assert_ne!(g.src(e), g.dst(e), "self-loop at edge {e}");
        }
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let want = d.avg_degree();
        assert!(
            (avg - want).abs() / want < 0.10,
            "average degree {avg:.1} too far from profile's {want:.1}"
        );
    }

    #[test]
    fn social_stats_skewed() {
        let s = reddit().full_scale_stats().degree_summary();
        assert!(s.cv > 0.5, "Reddit profile must be skewed, cv = {}", s.cv);
    }
}

//! Point clouds and k-nearest-neighbour graphs for EdgeConv / DGCNN.
//!
//! ModelNet40 is not redistributable here, so [`PointCloud::synthetic`]
//! samples from 40 parametric shape families (spheres, boxes, tori, …) —
//! EdgeConv consumes nothing but point coordinates and the kNN topology, so
//! this exercises exactly the same code path (see DESIGN.md §2).

use crate::{EdgeList, Graph};
use gnnopt_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A batch of 3-D point clouds with class labels.
#[derive(Debug, Clone)]
pub struct PointCloud {
    /// `[batch * points_per_cloud, 3]` coordinates.
    points: Tensor,
    points_per_cloud: usize,
    labels: Vec<usize>,
}

/// Number of synthetic shape families (mirrors ModelNet40's 40 classes).
pub const NUM_SHAPE_CLASSES: usize = 40;

impl PointCloud {
    /// Samples `batch` clouds of `points_per_cloud` points each. Every
    /// cloud draws a class in `0..NUM_SHAPE_CLASSES`; the class selects a
    /// parametric surface plus a deterministic deformation, so clouds of
    /// the same class are geometrically similar.
    pub fn synthetic(batch: usize, points_per_cloud: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(batch * points_per_cloud * 3);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let class = rng.gen_range(0..NUM_SHAPE_CLASSES);
            labels.push(class);
            for _ in 0..points_per_cloud {
                let p = sample_shape_point(class, &mut rng);
                data.extend_from_slice(&p);
            }
        }
        Self {
            points: Tensor::new(&[batch * points_per_cloud, 3], data)
                .expect("synthetic cloud shape is consistent"),
            points_per_cloud,
            labels,
        }
    }

    /// The `[batch * points, 3]` coordinate matrix.
    pub fn points(&self) -> &Tensor {
        &self.points
    }

    /// Points per individual cloud.
    pub fn points_per_cloud(&self) -> usize {
        self.points_per_cloud
    }

    /// Number of clouds in the batch.
    pub fn batch(&self) -> usize {
        self.labels.len()
    }

    /// Per-cloud class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds the batched kNN graph: within each cloud independently, adds
    /// edge `u → v` whenever `u` is one of the `k` nearest neighbours of
    /// `v` (matching DGCNN's convention: messages flow from neighbours into
    /// the centre vertex). The result is block-diagonal over the batch.
    pub fn knn_graph(&self, k: usize) -> Graph {
        let n = self.points_per_cloud;
        let b = self.batch();
        assert!(k < n, "k = {k} must be below points-per-cloud {n}");
        let mut pairs = Vec::with_capacity(b * n * k);
        let coords = self.points.as_slice();
        for cloud in 0..b {
            let base = cloud * n;
            for v in 0..n {
                let pv = &coords[(base + v) * 3..(base + v) * 3 + 3];
                // (distance, index) selection of the k nearest.
                let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
                for u in 0..n {
                    if u == v {
                        continue;
                    }
                    let pu = &coords[(base + u) * 3..(base + u) * 3 + 3];
                    let d = sq_dist(pv, pu);
                    if best.len() < k {
                        best.push((d, u));
                        if best.len() == k {
                            best.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                        }
                    } else if d < best[k - 1].0 {
                        best[k - 1] = (d, u);
                        let mut i = k - 1;
                        while i > 0 && best[i].0 < best[i - 1].0 {
                            best.swap(i, i - 1);
                            i -= 1;
                        }
                    }
                }
                for &(_, u) in &best {
                    pairs.push(((base + u) as u32, (base + v) as u32));
                }
            }
        }
        Graph::from_edge_list(&EdgeList::from_pairs(b * n, &pairs))
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// Samples one point from the parametric surface of shape `class`.
fn sample_shape_point(class: usize, rng: &mut SmallRng) -> [f32; 3] {
    use std::f32::consts::PI;
    let family = class % 5;
    // Per-class deterministic deformation so the 40 classes differ within a
    // family.
    let stretch = 1.0 + 0.15 * (class / 5) as f32;
    let u: f32 = rng.gen_range(0.0..2.0 * PI);
    let t: f32 = rng.gen_range(-1.0f32..1.0);
    let noise = rng.gen_range(-0.02f32..0.02);
    let p = match family {
        // Sphere
        0 => {
            let r = (1.0 - t * t).sqrt();
            [r * u.cos(), r * u.sin(), t]
        }
        // Box surface
        1 => {
            let face = rng.gen_range(0..6);
            let a = rng.gen_range(-1.0f32..1.0);
            let b = rng.gen_range(-1.0f32..1.0);
            match face {
                0 => [1.0, a, b],
                1 => [-1.0, a, b],
                2 => [a, 1.0, b],
                3 => [a, -1.0, b],
                4 => [a, b, 1.0],
                _ => [a, b, -1.0],
            }
        }
        // Torus
        2 => {
            let v = rng.gen_range(0.0..2.0 * PI);
            let (major, minor) = (0.8, 0.35);
            [
                (major + minor * v.cos()) * u.cos(),
                (major + minor * v.cos()) * u.sin(),
                minor * v.sin(),
            ]
        }
        // Cylinder
        3 => [u.cos() * 0.7, u.sin() * 0.7, t],
        // Cone
        _ => {
            let h = (t + 1.0) / 2.0;
            [(1.0 - h) * u.cos(), (1.0 - h) * u.sin(), h * 1.5 - 0.75]
        }
    };
    [p[0] * stretch + noise, p[1] + noise, p[2] / stretch + noise]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_in_degree_is_exactly_k() {
        let pc = PointCloud::synthetic(2, 32, 1);
        let g = pc.knn_graph(4);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 64 * 4);
        for v in 0..g.num_vertices() {
            assert_eq!(g.in_degree(v), 4);
        }
    }

    #[test]
    fn knn_stays_within_cloud() {
        let pc = PointCloud::synthetic(3, 16, 2);
        let g = pc.knn_graph(3);
        for e in 0..g.num_edges() {
            assert_eq!(g.src(e) / 16, g.dst(e) / 16, "edge crosses cloud boundary");
        }
    }

    #[test]
    fn knn_picks_nearest() {
        // 4 collinear points: neighbours of x=0 with k=1 must be x=1.
        let points = Tensor::new(
            &[4, 3],
            vec![
                0.0, 0.0, 0.0, //
                1.0, 0.0, 0.0, //
                3.0, 0.0, 0.0, //
                7.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let pc = PointCloud {
            points,
            points_per_cloud: 4,
            labels: vec![0],
        };
        let g = pc.knn_graph(1);
        // in-neighbour of vertex 0 is vertex 1
        assert_eq!(g.in_adj().neighbors(0), &[1]);
        // in-neighbour of vertex 3 is vertex 2
        assert_eq!(g.in_adj().neighbors(3), &[2]);
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = PointCloud::synthetic(2, 8, 5);
        let b = PointCloud::synthetic(2, 8, 5);
        assert_eq!(a.points().as_slice(), b.points().as_slice());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn labels_in_class_range() {
        let pc = PointCloud::synthetic(16, 4, 9);
        assert!(pc.labels().iter().all(|&c| c < NUM_SHAPE_CLASSES));
    }
}

//! Edge-cut vertex partitioning for sharded execution.
//!
//! A [`Partition`] assigns every vertex to exactly one of `k` shards; an
//! edge whose endpoints land in different shards is a **cut edge**. The
//! executor replicates each cut edge into both endpoint shards and keeps
//! the endpoint rows it does not own as *halo* rows, so the quality
//! metric a partitioner optimizes here is the communication volume of
//! that replication: fewer cut edges, balanced per-shard edge load.
//!
//! Two strategies are provided, both deterministic:
//!
//! * [`Partition::edge_cut_bfs`] — a greedy BFS grower: seed a shard at
//!   the smallest unassigned vertex id, grow it along undirected
//!   adjacency until the shard's share of the total edge load is
//!   reached, repeat. Frontier growth keeps neighborhoods together, so
//!   most edges close inside a shard.
//! * [`Partition::from_order`] — contiguous load-balanced slices of an
//!   externally supplied vertex ordering. This is the seam to the
//!   `gnnopt-reorder` locality machinery: a BFS/RCM/cluster order
//!   already places connected vertices consecutively, so slicing it is
//!   an edge-cut heuristic in its own right. [`Partition::contiguous`]
//!   is the identity-order special case.
//!
//! Balancing uses per-vertex edge load (`1 + in_degree + out_degree`,
//! the `1` keeps isolated vertices from collapsing into one shard), and
//! every constructor guarantees all `k` shards are non-empty whenever
//! the graph has at least `k` vertices (`k` is clamped otherwise).

use crate::Graph;
use std::collections::VecDeque;

/// An assignment of every vertex to one of `num_shards` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    num_shards: usize,
    /// `owner[v]` = shard id of vertex `v`.
    owner: Vec<u32>,
}

impl Partition {
    /// Per-vertex balancing weight: the vertex's share of the edge work.
    fn load(g: &Graph, v: usize) -> usize {
        1 + g.in_degree(v) + g.out_degree(v)
    }

    /// Greedy BFS edge-cut grower. Deterministic: shards are seeded at
    /// the smallest unassigned vertex id and grown breadth-first along
    /// undirected adjacency until the shard holds its share of the total
    /// edge load; the last shard takes the remainder.
    pub fn edge_cut_bfs(g: &Graph, k: usize) -> Self {
        let n = g.num_vertices();
        let k = k.clamp(1, n.max(1));
        let mut owner = vec![u32::MAX; n];
        let total: usize = (0..n).map(|v| Self::load(g, v)).sum();
        let mut remaining_load = total;
        let mut assigned = 0usize;
        let mut next_seed = 0usize;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for s in 0..k {
            let target = remaining_load / (k - s);
            let mut shard_load = 0usize;
            queue.clear();
            while assigned < n && (s == k - 1 || shard_load < target || shard_load == 0) {
                // Leave one vertex for each shard still to come, so
                // every shard is non-empty when n ≥ k.
                if s < k - 1 && n - assigned < k - s && shard_load > 0 {
                    break;
                }
                let v = match queue.pop_front() {
                    Some(v) => v,
                    None => {
                        while owner[next_seed] != u32::MAX {
                            next_seed += 1;
                        }
                        next_seed
                    }
                };
                if owner[v] != u32::MAX {
                    continue;
                }
                owner[v] = s as u32;
                assigned += 1;
                shard_load += Self::load(g, v);
                for &u in g
                    .out_adj()
                    .neighbors(v)
                    .iter()
                    .chain(g.in_adj().neighbors(v))
                {
                    if owner[u as usize] == u32::MAX {
                        queue.push_back(u as usize);
                    }
                }
            }
            remaining_load -= shard_load;
        }
        Self {
            num_shards: k,
            owner,
        }
    }

    /// Contiguous load-balanced slices of the vertex ordering `order`
    /// (`order[i]` = the vertex at position `i`; must be a permutation
    /// of `0..num_vertices`). Slicing a locality ordering (BFS, RCM,
    /// cluster — the `gnnopt-reorder` strategies) keeps neighborhoods
    /// in one shard, which is what makes this an edge-cut heuristic.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the vertex ids.
    pub fn from_order(g: &Graph, order: &[u32], k: usize) -> Self {
        let n = g.num_vertices();
        assert_eq!(
            order.len(),
            n,
            "order must enumerate every vertex exactly once"
        );
        let k = k.clamp(1, n.max(1));
        let mut owner = vec![u32::MAX; n];
        let total: usize = (0..n).map(|v| Self::load(g, v)).sum();
        let mut remaining_load = total;
        let mut pos = 0usize;
        for s in 0..k {
            let target = remaining_load / (k - s);
            let mut shard_load = 0usize;
            while pos < n && (s == k - 1 || shard_load < target || shard_load == 0) {
                if s < k - 1 && n - pos < k - s && shard_load > 0 {
                    break;
                }
                let v = order[pos] as usize;
                assert!(
                    v < n && owner[v] == u32::MAX,
                    "order repeats or exceeds the vertex ids at position {pos}"
                );
                owner[v] = s as u32;
                shard_load += Self::load(g, v);
                pos += 1;
            }
            remaining_load -= shard_load;
        }
        Self {
            num_shards: k,
            owner,
        }
    }

    /// Contiguous id-order slices: [`Partition::from_order`] with the
    /// identity ordering.
    pub fn contiguous(g: &Graph, k: usize) -> Self {
        let order: Vec<u32> = (0..g.num_vertices() as u32).collect();
        Self::from_order(g, &order, k)
    }

    /// Wraps an explicit owner vector (mostly for tests).
    ///
    /// # Panics
    ///
    /// Panics if any owner id is `>= num_shards` or `num_shards == 0`.
    pub fn from_owner(owner: Vec<u32>, num_shards: usize) -> Self {
        assert!(num_shards > 0, "a partition needs at least one shard");
        for (v, &s) in owner.iter().enumerate() {
            assert!(
                (s as usize) < num_shards,
                "vertex {v} assigned to shard {s} of {num_shards}"
            );
        }
        Self { num_shards, owner }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of vertices the partition covers.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning vertex `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.owner[v] as usize
    }

    /// The full owner vector (`owner[v]` = shard id).
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Vertices per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for &s in &self.owner {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Number of edges of `g` whose endpoints live in different shards —
    /// the edges sharded execution replicates and patches across shards.
    pub fn cut_edges(&self, g: &Graph) -> u64 {
        g.src_slice()
            .iter()
            .zip(g.dst_slice())
            .filter(|&(&s, &d)| self.owner[s as usize] != self.owner[d as usize])
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, EdgeList};

    fn covers_everything(p: &Partition, n: usize) {
        assert_eq!(p.owner().len(), n);
        for v in 0..n {
            assert!(p.owner_of(v) < p.num_shards(), "vertex {v} unassigned");
        }
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n);
        if n >= p.num_shards() {
            assert!(
                sizes.iter().all(|&s| s > 0),
                "empty shard in {sizes:?} over {n} vertices"
            );
        }
    }

    #[test]
    fn bfs_partition_covers_and_balances() {
        let g = Graph::from_edge_list(&generators::rmat(8, 8, 0.57, 0.19, 0.19, 3));
        for k in [1, 2, 3, 4, 7] {
            let p = Partition::edge_cut_bfs(&g, k);
            assert_eq!(p.num_shards(), k);
            covers_everything(&p, g.num_vertices());
            // Edge-load balance: no shard exceeds twice its fair share.
            let load: Vec<usize> = (0..g.num_vertices())
                .map(|v| (1 + g.in_degree(v) + g.out_degree(v), p.owner_of(v)))
                .fold(vec![0; k], |mut acc, (l, s)| {
                    acc[s] += l;
                    acc
                });
            let total: usize = load.iter().sum();
            for (s, &l) in load.iter().enumerate() {
                assert!(
                    l <= 2 * total / k + 64,
                    "shard {s} load {l} of total {total} over {k} shards"
                );
            }
        }
    }

    #[test]
    fn bfs_beats_random_locality_on_a_ring() {
        // On a ring, frontier growth yields contiguous arcs: exactly one
        // cut per shard boundary (2 per shard for the directed ring's
        // forward edges — each boundary cuts one edge).
        let g = Graph::from_edge_list(&generators::ring(64));
        let p = Partition::edge_cut_bfs(&g, 4);
        covers_everything(&p, 64);
        assert!(
            p.cut_edges(&g) <= 8,
            "BFS on a ring should cut only shard boundaries, got {}",
            p.cut_edges(&g)
        );
    }

    #[test]
    fn from_order_slices_follow_the_order() {
        let g = Graph::from_edge_list(&generators::ring(12));
        let order: Vec<u32> = (0..12).rev().collect();
        let p = Partition::from_order(&g, &order, 3);
        covers_everything(&p, 12);
        // Positions 0..3 of the order (vertices 11,10,9,8) share shard 0.
        assert_eq!(p.owner_of(11), 0);
        assert_eq!(p.owner_of(10), 0);
        // Slices are contiguous in order positions: owners along the
        // order are non-decreasing.
        let owners: Vec<usize> = order.iter().map(|&v| p.owner_of(v as usize)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
    }

    #[test]
    fn clamps_shard_count_to_vertex_count() {
        let g = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (1, 2)]));
        let p = Partition::edge_cut_bfs(&g, 9);
        assert_eq!(p.num_shards(), 3);
        covers_everything(&p, 3);
        let p = Partition::contiguous(&g, 0);
        assert_eq!(p.num_shards(), 1);
    }

    #[test]
    fn star_hub_lands_in_exactly_one_shard() {
        // Extreme hub: all spokes point at vertex 0. Every shard not
        // owning the hub sees only cut edges — the partition must still
        // cover and stay non-empty.
        let g = Graph::from_edge_list(&generators::star(32));
        for k in [2, 4] {
            let p = Partition::edge_cut_bfs(&g, k);
            covers_everything(&p, g.num_vertices());
            let hub_shard = p.owner_of(0);
            let cut = p.cut_edges(&g);
            let expected: u64 = (0..g.num_edges())
                .filter(|&e| p.owner_of(g.src(e)) != hub_shard)
                .count() as u64;
            assert_eq!(cut, expected);
        }
    }

    #[test]
    fn deterministic() {
        let g = Graph::from_edge_list(&generators::rmat(7, 4, 0.5, 0.2, 0.2, 9));
        assert_eq!(
            Partition::edge_cut_bfs(&g, 4),
            Partition::edge_cut_bfs(&g, 4)
        );
        assert_eq!(Partition::contiguous(&g, 3), Partition::contiguous(&g, 3));
    }
}

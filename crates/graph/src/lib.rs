//! Graph substrate for the `gnnopt` GNN computational-graph optimizer.
//!
//! Provides the adjacency structures the executor iterates
//! ([`Graph`], built from an [`EdgeList`]), degree statistics the GPU
//! execution model consumes ([`GraphStats`]), synthetic graph
//! [`generators`], k-nearest-neighbour point-cloud graphs ([`knn`]) and
//! profiles of the paper's evaluation datasets ([`datasets`]).
//!
//! Edge identity convention: edge ids are assigned in **destination-major
//! (CSC) order** — edge `e` is the `e`-th entry when scanning vertices by
//! destination and, within a destination, by source. `Gather`/edge-softmax
//! kernels therefore see contiguous edge-feature rows per destination
//! vertex, exactly like the vertex-balanced GPU kernels in the paper.
//!
//! # Example
//!
//! ```
//! use gnnopt_graph::{EdgeList, Graph};
//!
//! let el = EdgeList::from_pairs(4, &[(0, 1), (2, 1), (1, 3)]);
//! let g = Graph::from_edge_list(&el);
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.in_degree(1), 2);
//! ```

pub mod datasets;
mod edge_list;
pub mod generators;
mod graph;
pub mod knn;
pub mod partition;
mod stats;

pub use edge_list::EdgeList;
pub use graph::{Adjacency, Graph};
pub use partition::Partition;
pub use stats::{DegreeSummary, GraphStats};

//! Property-based tests of the graph substrate: CSR/CSC consistency and
//! generator invariants on arbitrary edge lists.

use gnnopt_graph::{generators, EdgeList, Graph, GraphStats};
use proptest::prelude::*;

fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120)
            .prop_map(move |pairs| EdgeList::from_pairs(n, &pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dual_csr_is_consistent(el in arb_edge_list()) {
        let g = Graph::from_edge_list(&el);
        // Every canonical edge appears exactly once in each direction.
        for e in 0..g.num_edges() {
            let (s, d) = (g.src(e), g.dst(e));
            prop_assert!(g.in_adj().edge_ids(d).contains(&(e as u32)));
            prop_assert!(g.out_adj().edge_ids(s).contains(&(e as u32)));
        }
        // Degree sums equal the edge count in both directions.
        let in_sum: usize = (0..g.num_vertices()).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..g.num_vertices()).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_sum, g.num_edges());
        prop_assert_eq!(out_sum, g.num_edges());
    }

    #[test]
    fn in_adj_edge_ids_are_contiguous(el in arb_edge_list()) {
        // Canonical (dst-major) numbering ⇒ in-adjacency ids are 0..m.
        let g = Graph::from_edge_list(&el);
        let mut seen = Vec::new();
        for v in 0..g.num_vertices() {
            seen.extend_from_slice(g.in_adj().edge_ids(v));
        }
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn no_self_loops_or_duplicates(el in arb_edge_list()) {
        let mut pairs: Vec<(u32, u32)> = el.edges().to_vec();
        for &(s, d) in &pairs {
            prop_assert_ne!(s, d);
        }
        let before = pairs.len();
        pairs.dedup();
        prop_assert_eq!(before, pairs.len());
    }

    #[test]
    fn undirected_is_symmetric(el in arb_edge_list()) {
        let und = el.to_undirected();
        let g = Graph::from_edge_list(&und);
        for e in 0..g.num_edges() {
            let (s, d) = (g.src(e) as u32, g.dst(e) as u32);
            prop_assert!(und.edges().contains(&(d, s)), "missing reverse of ({s},{d})");
        }
    }

    #[test]
    fn stats_match_graph(el in arb_edge_list()) {
        let g = Graph::from_edge_list(&el);
        let s = g.stats();
        prop_assert_eq!(s.num_vertices(), g.num_vertices());
        prop_assert_eq!(s.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() {
            prop_assert_eq!(s.in_degrees()[v] as usize, g.in_degree(v));
        }
    }

    #[test]
    fn synthesized_stats_hit_edge_target(
        n in 1usize..500, avg in 0.5f64..30.0, skew in 0.0f64..2.0,
    ) {
        let s = GraphStats::synthesize_power_law(n, avg, skew);
        let target = (n as f64 * avg).round() as usize;
        prop_assert_eq!(s.num_edges(), target);
        prop_assert!(s.vertex_balanced_imbalance(64) >= 1.0);
    }

    #[test]
    fn erdos_renyi_deterministic_and_exact(
        n in 4usize..64, frac in 0.05f64..0.5, seed in 0u64..50,
    ) {
        let m = ((n * (n - 1)) as f64 * frac) as usize;
        let a = generators::erdos_renyi(n, m, seed);
        let b = generators::erdos_renyi(n, m, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_edges(), m);
    }
}

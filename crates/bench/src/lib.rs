//! Experiment harness reproducing every figure of the paper's evaluation
//! (§7): workload builders, the system-variant runner and the normalized
//! report printer. One binary per figure regenerates the corresponding
//! rows (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! recorded results).

use gnnopt_core::ir::Result as IrResult;
use gnnopt_core::{compile, CompileOptions, ExecPolicy, GemmKernel, IrGraph, ReorderPolicy};
use gnnopt_exec::{Bindings, RunStats, Session};
use gnnopt_graph::datasets::DatasetSpec;
use gnnopt_graph::{generators, EdgeList, Graph, GraphStats};
use gnnopt_models::{
    edgeconv, gat, gcn, monet, EdgeConvConfig, GatConfig, GcnConfig, ModelSpec, MonetConfig,
};
use gnnopt_sim::{Device, ExecStats};
use serde::Serialize;

/// True when `GNNOPT_SMOKE=1`: every figure/ablation binary shrinks its
/// workloads (smaller graphs, shorter sweeps) to a few seconds so CI can
/// execute all of them end-to-end — figure code cannot silently rot.
/// Any other value (or unset) keeps the paper-scale settings.
pub fn smoke() -> bool {
    std::env::var("GNNOPT_SMOKE").map(|v| v.trim() == "1") == Ok(true)
}

/// `full` normally, `small` under `GNNOPT_SMOKE=1` — the one-liner the
/// figure binaries use to shrink scales, sweep lists and seeds.
pub fn smoke_scale<T>(full: T, small: T) -> T {
    if smoke() {
        small
    } else {
        full
    }
}

/// Deterministic Fisher–Yates vertex relabeling (LCG-driven): the
/// "ingestion order" baseline reordering experiments measure against —
/// real graph loaders assign ids in arrival order, which carries no
/// locality, while synthetic generators often leak theirs.
pub fn scramble_ids(el: &EdgeList, seed: u64) -> EdgeList {
    let n = el.num_vertices();
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        ids.swap(i, j);
    }
    gnnopt_reorder::Permutation::from_order(&ids)
        .expect("shuffled ids are a bijection")
        .apply_to_edges(el)
}

/// A named model + graph-statistics pair, ready to compile.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (figure row label).
    pub name: String,
    /// Forward model IR.
    pub ir: IrGraph,
    /// Graph statistics at the *paper's* scale (the simulator needs no
    /// edge arrays, so Reddit runs at its published 114.6 M edges).
    pub stats: GraphStats,
}

/// Result of compiling + simulating one system variant.
#[derive(Debug, Clone, Serialize)]
pub struct VariantResult {
    /// Variant label ("DGL", "fuseGNN", "Ours", …).
    pub system: String,
    /// Analytical statistics on the target device.
    pub stats: ExecStats,
    /// Peak memory if the plan fits the device, else the OOM message.
    pub fits: std::result::Result<u64, String>,
}

/// Compiles `ir` under `opts` and evaluates it analytically on `device`.
///
/// # Errors
///
/// Propagates IR/compile errors.
pub fn run_variant(
    label: &str,
    ir: &IrGraph,
    stats: &GraphStats,
    opts: &CompileOptions,
    training: bool,
    device: &Device,
) -> IrResult<VariantResult> {
    let compiled = compile(ir, training, opts)?;
    let s = compiled.plan.exec_stats(device, stats);
    let fits = compiled
        .plan
        .check_fits(device, stats)
        .map_err(|e| e.to_string());
    Ok(VariantResult {
        system: label.to_owned(),
        stats: s,
        fits,
    })
}

/// Compiles `spec` under `opts` pinned to an explicit executor thread
/// count and runs one real CPU step on `graph` (forward + backward when
/// `training`), returning the measured session statistics. This is the
/// serial-vs-parallel scaling probe behind the headline figures.
///
/// # Errors
///
/// Propagates IR/compile errors.
///
/// # Panics
///
/// Panics if the compiled plan fails to execute (a harness bug, not a
/// measurement outcome).
pub fn run_real(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
) -> IrResult<RunStats> {
    run_real_impl(spec, graph, opts, threads, training, seed, None)
}

/// Like [`run_real`], but with the fused-execution choice pinned
/// explicitly (independent of the plan default and of `GNNOPT_FUSED`):
/// the reference-vs-fused measurement probe behind the fusion figure.
///
/// # Errors
///
/// Propagates IR/compile errors.
///
/// # Panics
///
/// Panics if the compiled plan fails to execute (a harness bug, not a
/// measurement outcome).
pub fn run_real_fused(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: bool,
) -> IrResult<RunStats> {
    run_real_impl(spec, graph, opts, threads, training, seed, Some(fused))
}

/// Like [`run_real_fused`], but additionally pinning the session's
/// vertex-reordering strategy: the reference-vs-reordered measurement
/// probe behind the reorganization figure's measured section. The
/// returned stats carry the resolved strategy and its one-time
/// preprocessing cost (`RunStats::{reorder, reorder_seconds}`).
///
/// # Errors
///
/// Propagates IR/compile errors.
///
/// # Panics
///
/// Panics if the compiled plan fails to execute (a harness bug, not a
/// measurement outcome).
#[allow(clippy::too_many_arguments)]
pub fn run_real_reordered(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: bool,
    reorder: ReorderPolicy,
) -> IrResult<RunStats> {
    let opts = CompileOptions {
        exec: opts.exec.reordered(reorder),
        ..*opts
    };
    run_real_impl(spec, graph, &opts, threads, training, seed, Some(fused))
}

/// Like [`run_real_fused`], but additionally pinning the session's dense
/// GEMM engine: the naive-vs-blocked measurement probe behind the
/// compute-engine figure. Results are bit-identical across engines, so
/// the comparison measures time only.
///
/// # Errors
///
/// Propagates IR/compile errors.
///
/// # Panics
///
/// Panics if the compiled plan fails to execute (a harness bug, not a
/// measurement outcome).
#[allow(clippy::too_many_arguments)]
pub fn run_real_gemm(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: bool,
    gemm: GemmKernel,
) -> IrResult<RunStats> {
    run_real_gemm_arena(
        spec, graph, opts, threads, training, seed, fused, gemm, None,
    )
}

/// Like [`run_real_gemm`], but additionally pinning the session's static
/// arena allocator (`None` keeps the default: on): the arena-on vs
/// arena-off measurement probe behind the memory-planner snapshot.
///
/// # Errors
///
/// Propagates IR/compile errors.
///
/// # Panics
///
/// Panics if the compiled plan fails to execute (a harness bug, not a
/// measurement outcome).
#[allow(clippy::too_many_arguments)]
pub fn run_real_gemm_arena(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: bool,
    gemm: GemmKernel,
    arena: Option<bool>,
) -> IrResult<RunStats> {
    let opts = CompileOptions {
        exec: opts.exec.with_gemm(gemm),
        ..*opts
    };
    run_real_impl2(
        spec,
        graph,
        &opts,
        threads,
        training,
        seed,
        Some(fused),
        arena,
    )
}

/// The `[Naive, Blocked]` measurement order every compute-engine harness
/// and caller shares: the `measure_*` helpers return arrays positionally
/// aligned with this constant, so labeling loops iterate it instead of
/// re-declaring the order locally (a locally swapped order would silently
/// invert every reported speedup).
pub const GEMM_KERNELS: [GemmKernel; 2] = [GemmKernel::Naive, GemmKernel::Blocked];

/// The compute-engine measurement workload shared by `fig7_end2end`'s
/// measured section and `perf_snapshot` — one definition, so the printed
/// figure and the committed `BENCH_PR5.json` artifact can never drift
/// onto different configurations. Returns the RMAT scale (16, or 8 in
/// smoke), the graph, and the GAT/GCN specs at feature widths where the
/// combination phase carries real arithmetic (64 in, 2×32 heads /
/// 64→64→32): the configuration the paper's compute-bound
/// characterization of GEMM-heavy layers speaks to.
///
/// # Panics
///
/// Panics if a model spec fails to build (a harness bug).
pub fn compute_engine_workloads() -> (u32, Graph, Vec<(&'static str, ModelSpec)>) {
    let scale = smoke_scale(16u32, 8);
    let graph = Graph::from_edge_list(&generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7));
    let gat_spec = gat(&GatConfig {
        in_dim: 64,
        layers: vec![(2, 32)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let gcn_spec = gcn(&GcnConfig {
        in_dim: 64,
        layer_dims: vec![64, 32],
    })
    .expect("gcn builds");
    (scale, graph, vec![("GAT", gat_spec), ("GCN", gcn_spec)])
}

/// Measured single-thread dense GFLOP/s for `[Naive, Blocked]` at `d³`,
/// through the low-level engine entry with the worker count pinned to 1
/// (`Tensor::matmul` would auto-parallelize above its work threshold and
/// turn the row into a pool measurement). Operands are zero-free so the
/// dense branch-free path is what is measured. Engines are interleaved
/// and each keeps its fastest repetition: wall-clock noise is one-sided
/// (interference only adds time) and drift hits both engines equally
/// when they alternate.
pub fn measure_gemm_single_thread(d: usize, reps: u32) -> [f64; 2] {
    use gnnopt_tensor::gemm::{gemm, Layout};
    let a: Vec<f32> = (0..d * d).map(|i| ((i % 17) as f32 - 8.25) / 4.0).collect();
    let b: Vec<f32> = (0..d * d).map(|i| ((i % 13) as f32 - 6.25) / 4.0).collect();
    let kernels = GEMM_KERNELS;
    let mut out = vec![0.0f32; d * d];
    let mut best = [f64::MAX; 2];
    for kernel in kernels {
        gemm(kernel, Layout::Nn, &a, &b, &mut out, d, d, d, 1, false);
    }
    for _ in 0..reps {
        for (slot, kernel) in kernels.into_iter().enumerate() {
            out.iter_mut().for_each(|v| *v = 0.0);
            let t0 = std::time::Instant::now();
            gemm(kernel, Layout::Nn, &a, &b, &mut out, d, d, d, 1, false);
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
    }
    best.map(|secs| 2.0 * (d * d * d) as f64 / secs / 1e9)
}

/// Measured real training steps for `[Naive, Blocked]` on the fused
/// executor with auto threads: warm both engines, then interleave
/// repetitions (naive, blocked, naive, …) and keep each engine's fastest
/// run (same one-sided-noise argument as
/// [`measure_gemm_single_thread`]).
///
/// # Panics
///
/// Panics if the model fails to compile or execute (a harness bug, not a
/// measurement outcome).
pub fn measure_steps_interleaved(spec: &ModelSpec, graph: &Graph, reps: usize) -> [RunStats; 2] {
    measure_steps_interleaved_threads(spec, graph, reps, 0)
}

/// [`measure_steps_interleaved`] with the worker-pool size pinned
/// (`threads = 0` auto-detects, like the plain variant).
pub fn measure_steps_interleaved_threads(
    spec: &ModelSpec,
    graph: &Graph,
    reps: usize,
    threads: usize,
) -> [RunStats; 2] {
    measure_steps_interleaved_arena(spec, graph, reps, threads, None)
}

/// [`measure_steps_interleaved_threads`] with the session's static arena
/// additionally pinned (`None` = session default: on) — the probe behind
/// the memory-planner snapshot's arena-on vs arena-off step rows.
///
/// # Panics
///
/// Panics if the model fails to compile or execute (a harness bug, not a
/// measurement outcome).
pub fn measure_steps_interleaved_arena(
    spec: &ModelSpec,
    graph: &Graph,
    reps: usize,
    threads: usize,
    arena: Option<bool>,
) -> [RunStats; 2] {
    let kernels = GEMM_KERNELS;
    for kernel in kernels {
        run_real_gemm_arena(
            spec,
            graph,
            &CompileOptions::ours(),
            threads,
            true,
            11,
            true,
            kernel,
            arena,
        )
        .expect("warmup runs");
    }
    let mut best: [Option<RunStats>; 2] = [None, None];
    for _ in 0..reps {
        for (slot, kernel) in kernels.into_iter().enumerate() {
            let run = run_real_gemm_arena(
                spec,
                graph,
                &CompileOptions::ours(),
                threads,
                true,
                11,
                true,
                kernel,
                arena,
            )
            .expect("measured run");
            let wall = run.forward_seconds + run.backward_seconds;
            if best[slot].is_none_or(|b| wall < b.forward_seconds + b.backward_seconds) {
                best[slot] = Some(run);
            }
        }
    }
    best.map(|run| run.expect("at least one rep per engine"))
}

/// Shared body of [`run_real`] / [`run_real_fused`]. `fused: None` keeps
/// the plan's own fused-execution default (and the `GNNOPT_FUSED`
/// override); `Some(f)` pins it.
fn run_real_impl(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: Option<bool>,
) -> IrResult<RunStats> {
    run_real_impl2(spec, graph, opts, threads, training, seed, fused, None)
}

/// [`run_real_impl`] plus an optional arena pin (`None` = session
/// default: arena on).
#[allow(clippy::too_many_arguments)]
fn run_real_impl2(
    spec: &ModelSpec,
    graph: &Graph,
    opts: &CompileOptions,
    threads: usize,
    training: bool,
    seed: u64,
    fused: Option<bool>,
    arena: Option<bool>,
) -> IrResult<RunStats> {
    // The explicit thread count is compiled into the plan, so the session
    // adopts it as-is (no auto-detection, no GNNOPT_THREADS interference);
    // the policy's other knobs (tiling, grouping, reordering) ride along.
    let opts = CompileOptions {
        exec: ExecPolicy {
            threads,
            ..opts.exec
        },
        ..*opts
    };
    let compiled = compile(&spec.ir, training, &opts)?;
    let mut bindings = Bindings::new();
    for (k, v) in spec.init_values(graph, seed) {
        bindings.insert(&k, v);
    }
    let mut builder = Session::builder(&compiled.plan, graph);
    if let Some(f) = fused {
        builder = builder.fused(f).env(gnnopt_exec::EnvOverrides::Off);
    }
    if let Some(a) = arena {
        builder = builder.arena(a);
    }
    let mut sess = builder.build().expect("session builds");
    let out = sess.forward(&bindings).expect("forward runs");
    if training {
        sess.backward(gnnopt_tensor::Tensor::ones(out[0].shape()))
            .expect("backward runs");
    }
    Ok(sess.stats())
}

/// Folds a real CPU run into the analytic record so scaling reports keep
/// the measurement *and* its input (the thread count) together.
pub fn with_real_run(mut stats: ExecStats, run: &RunStats) -> ExecStats {
    stats.wall_seconds = run.forward_seconds + run.backward_seconds;
    stats.cpu_threads = run.threads as u64;
    stats
}

/// The three systems of Figure 7.
pub fn figure7_systems() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("DGL", CompileOptions::dgl()),
        ("fuseGNN", CompileOptions::fusegnn()),
        ("Ours", CompileOptions::ours()),
    ]
}

/// GAT in the Figure 7 setting (2 layers × 128 hidden, single head, as
/// fuseGNN lacks multi-head support). The baselines use the
/// hand-reorganized attention DGL's library ships; "Ours" starts from the
/// naive formulation and relies on the reorganization pass.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn gat_figure7(ds: &DatasetSpec, reorganized_baseline: bool) -> IrResult<Workload> {
    let mut cfg = GatConfig::figure7(ds.feature_dim, ds.num_classes);
    cfg.reorganized = reorganized_baseline;
    Ok(Workload {
        name: format!("GAT/{}", ds.name),
        ir: gat(&cfg)?.ir,
        stats: ds.full_scale_stats(),
    })
}

/// GAT in the ablation setting (4 heads × 64).
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn gat_ablation(ds: &DatasetSpec, reorganized: bool) -> IrResult<Workload> {
    let mut cfg = GatConfig::ablation(64);
    cfg.reorganized = reorganized;
    Ok(Workload {
        name: format!("GAT/{}", ds.name),
        ir: gat(&cfg)?.ir,
        stats: ds.full_scale_stats(),
    })
}

/// EdgeConv on a synthetic ModelNet40-like batch: `batch` clouds × 1024
/// points, kNN degree `k` (regular in-degree k by construction).
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn edgeconv_workload(k: usize, batch: usize, cfg: &EdgeConvConfig) -> IrResult<Workload> {
    let n = batch * 1024;
    Ok(Workload {
        name: format!("EdgeConv(k={k},b={batch})"),
        ir: edgeconv(cfg)?.ir,
        stats: GraphStats::synthesize_power_law(n, k as f64, 0.0),
    })
}

/// MoNet in the Figure 7 setting with the paper's per-dataset `(K, r)`.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn monet_figure7(ds: &DatasetSpec) -> IrResult<Workload> {
    let (k, r) = match ds.name {
        "Cora" => (3, 2),
        "Pubmed" | "Citeseer" => (3, 3),
        _ => (2, 1), // Reddit
    };
    Ok(Workload {
        name: format!("MoNet/{}", ds.name),
        ir: monet(&MonetConfig::figure7(ds.feature_dim, ds.num_classes, k, r))?.ir,
        stats: ds.full_scale_stats(),
    })
}

/// MoNet in the ablation setting (K=2, r=1, f=16) on a dataset profile.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn monet_ablation(ds: &DatasetSpec) -> IrResult<Workload> {
    Ok(Workload {
        name: format!("MoNet/{}", ds.name),
        ir: monet(&MonetConfig {
            in_dim: 16,
            layer_dims: vec![16],
            kernels: 2,
            pseudo_dim: 1,
        })?
        .ir,
        stats: ds.full_scale_stats(),
    })
}

/// Formats bytes as GiB.
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Prints a normalized comparison table (first row = 1.0 baseline), the
/// paper's Figure 7 presentation: higher is better for speedup, lower is
/// better shown as ×-less for IO and memory.
pub fn print_normalized(title: &str, rows: &[VariantResult]) {
    println!("\n== {title} ==");
    let base = &rows[0].stats;
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "system", "speedup", "io-saving", "mem-saving", "kernels", "latency(ms)", "mem(GiB)"
    );
    for r in rows {
        println!(
            "{:<10} {:>9.2}x {:>11.2}x {:>11.2}x {:>9} {:>12.3} {:>12.3}",
            r.system,
            base.latency / r.stats.latency,
            base.total_io() as f64 / r.stats.total_io() as f64,
            base.peak_memory as f64 / r.stats.peak_memory as f64,
            r.stats.kernels,
            r.stats.latency * 1e3,
            gib(r.stats.peak_memory),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_graph::datasets;

    #[test]
    fn figure7_gat_ours_beats_dgl_on_reddit() {
        let ds = datasets::reddit();
        let dgl_wl = gat_figure7(&ds, true).unwrap();
        let ours_wl = gat_figure7(&ds, false).unwrap();
        let device = Device::rtx3090();
        let dgl = run_variant(
            "DGL",
            &dgl_wl.ir,
            &dgl_wl.stats,
            &CompileOptions::dgl(),
            true,
            &device,
        )
        .unwrap();
        let ours = run_variant(
            "Ours",
            &ours_wl.ir,
            &ours_wl.stats,
            &CompileOptions::ours(),
            true,
            &device,
        )
        .unwrap();
        assert!(
            ours.stats.latency < dgl.stats.latency,
            "ours {} vs dgl {}",
            ours.stats.latency,
            dgl.stats.latency
        );
        assert!(ours.stats.peak_memory < dgl.stats.peak_memory);
        assert!(ours.stats.total_io() < dgl.stats.total_io());
    }

    #[test]
    fn edgeconv_memory_savings_are_large() {
        let wl = edgeconv_workload(40, 64, &EdgeConvConfig::paper()).unwrap();
        let device = Device::rtx3090();
        let dgl = run_variant(
            "DGL",
            &wl.ir,
            &wl.stats,
            &CompileOptions::dgl(),
            true,
            &device,
        )
        .unwrap();
        let ours = run_variant(
            "Ours",
            &wl.ir,
            &wl.stats,
            &CompileOptions::ours(),
            true,
            &device,
        )
        .unwrap();
        let saving = dgl.stats.peak_memory as f64 / ours.stats.peak_memory as f64;
        assert!(saving > 2.0, "EdgeConv memory saving only {saving:.2}x");
    }
}

//! Multi-head sweep: the paper's §7.2 remark — *"The memory saving will
//! be more significant if applying multi-head mechanism as in the
//! original paper"* — measured. GAT training on Reddit with heads ∈
//! {1, 2, 4, 8}, DGL baseline vs. Ours; the eliminated intermediates are
//! `O(|E|·h)`, so the saving factor must grow with the head count.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin multihead_sweep`.

use gnnopt_bench::{gib, run_real, run_variant, smoke_scale, Workload};
use gnnopt_core::CompileOptions;
use gnnopt_graph::{datasets, generators, Graph};
use gnnopt_models::{gat, GatConfig};
use gnnopt_sim::Device;
use gnnopt_tensor::parallel::available_threads;

fn main() {
    let device = Device::rtx3090();
    let ds = datasets::reddit();
    // Measured serial-vs-parallel scaling runs on a scaled synthetic graph
    // (full-size Reddit edge tensors do not fit a CPU harness); the
    // per-head model is identical, only |E| shrinks.
    let exec_graph = Graph::from_edge_list(&generators::rmat(
        smoke_scale(13, 9),
        16,
        0.57,
        0.19,
        0.19,
        5,
    ));
    let par_threads = available_threads().max(2);
    println!(
        "# Multi-head sweep — GAT training on {} ({}), f=64 per head",
        ds.name, device.name
    );
    println!(
        "# measured column: RMAT-13 ({} edges), {} threads vs serial",
        exec_graph.num_edges(),
        par_threads
    );
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>14}",
        "heads", "DGL mem (GiB)", "Ours mem (GiB)", "mem saving", "speedup", "cpu scaling"
    );

    for heads in smoke_scale(vec![1usize, 2, 4, 8], vec![1, 2]) {
        let cfg = GatConfig {
            in_dim: 64,
            layers: vec![(heads, 64)],
            negative_slope: 0.2,
            reorganized: true, // DGL's library form; Ours re-derives it
        };
        let spec = gat(&cfg).expect("gat builds");
        let wl = Workload {
            name: format!("GAT h={heads}"),
            ir: spec.ir.clone(),
            stats: ds.full_scale_stats(),
        };
        let dgl = run_variant(
            "DGL",
            &wl.ir,
            &wl.stats,
            &CompileOptions::dgl(),
            true,
            &device,
        )
        .expect("dgl variant");
        let ours = run_variant(
            "Ours",
            &wl.ir,
            &wl.stats,
            &CompileOptions::ours(),
            true,
            &device,
        )
        .expect("ours variant");
        let serial =
            run_real(&spec, &exec_graph, &CompileOptions::ours(), 1, true, 3).expect("serial run");
        let par = run_real(
            &spec,
            &exec_graph,
            &CompileOptions::ours(),
            par_threads,
            true,
            3,
        )
        .expect("parallel run");
        let scaling = (serial.forward_seconds + serial.backward_seconds)
            / (par.forward_seconds + par.backward_seconds);
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>11.2}x {:>11.2}x {:>13.2}x",
            heads,
            gib(dgl.stats.peak_memory),
            gib(ours.stats.peak_memory),
            dgl.stats.peak_memory as f64 / ours.stats.peak_memory as f64,
            dgl.stats.latency / ours.stats.latency,
            scaling,
        );
    }
}

//! Runtime-optimization ablation: vertex reordering and GNNAdvisor-style
//! neighbor grouping (§8 related work) composed with the paper's fused
//! kernels.
//!
//! Two effects are quantified on the fused GAT graph kernel:
//!
//! * **Reordering** raises the L2 hit rate of gather reads (measured with
//!   the exact LRU model on the executable scaled Reddit graph), which
//!   shrinks the DRAM IO term of the roofline.
//! * **Neighbor grouping** flattens the degree skew seen by the
//!   vertex-balanced mapping, trading a bounded number of cross-group
//!   merges for the imbalance factor.
//!
//! Both are preprocessing passes; the final table reports how many
//! training iterations amortize each preprocessing cost.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin reorder_ablation`.

use gnnopt_bench::{gat_ablation, scramble_ids, smoke, smoke_scale};
use gnnopt_core::{compile, CompileOptions};
use gnnopt_graph::{datasets, EdgeList, GraphStats};
use gnnopt_reorder::{locality, strategies, NeighborGrouping};
use gnnopt_sim::{Device, KernelEffects};

/// The "ingestion order" baseline that reordering papers measure against
/// (shared LCG-driven Fisher–Yates from the bench harness).
fn scramble(el: &EdgeList) -> EdgeList {
    scramble_ids(el, 0x9e37_79b9)
}

fn main() {
    let device = Device::rtx3090();
    let ds = datasets::reddit();
    println!(
        "# Reordering + neighbor-grouping ablation — fused GAT kernel on {} ({})",
        ds.name, device.name
    );

    // ---------- Reordering: LRU hit rate on the executable graph ----------
    // Baseline is a *scrambled* id order: real graph ingestion assigns ids
    // in arrival order, which carries no locality. (The synthetic
    // generator's own order is shown too — RMAT ids are already skew-
    // sorted, which is why reordering papers always scramble first.)
    // GNNOPT_SMOKE=1 swaps the ~7M-edge scaled-Reddit build for a tiny
    // RMAT so CI can execute the whole figure.
    let exec_graph = if smoke() {
        gnnopt_graph::Graph::from_edge_list(&gnnopt_graph::generators::rmat(
            9, 16, 0.57, 0.19, 0.19, 17,
        ))
    } else {
        ds.build_graph(17)
    };
    let generator_order = {
        let pairs: Vec<(u32, u32)> = (0..exec_graph.num_edges())
            .map(|e| (exec_graph.src(e) as u32, exec_graph.dst(e) as u32))
            .collect();
        gnnopt_graph::EdgeList::from_pairs(exec_graph.num_vertices(), &pairs)
    };
    let el = scramble(&generator_order);
    // L2 capacity in feature rows: h=4, f=64 → 1 KiB per row. The
    // executable graph is `exec_scale` of full Reddit, so the cache is
    // scaled by the same factor to keep the cache-to-graph ratio of the
    // real device (a full-size L2 against a 1/16 graph would make every
    // ordering look perfect).
    let row_bytes = 4 * 64 * 4;
    let cache_rows = ((device.l2_bytes / row_bytes) as f64 * ds.exec_scale) as usize;

    println!(
        "\n== gather locality (L2 = {} rows of h·f floats) ==",
        cache_rows
    );
    println!("{:<14} {:>10} {:>12}", "order", "hit rate", "mean |u-v|");
    let strategies: Vec<(&str, Option<gnnopt_reorder::Permutation>)> = vec![
        ("scrambled", None),
        ("generator", None),
        ("degree-sort", Some(strategies::degree_sort(&el))),
        ("bfs", Some(strategies::bfs(&el, 0))),
        ("rcm", Some(strategies::rcm(&el))),
        ("cluster", Some(strategies::cluster(&el, 4))),
    ];
    let mut baseline = 0.0;
    let mut best: (f64, &str) = (0.0, "scrambled");
    for (name, perm) in &strategies {
        let ordered = match (*name, perm) {
            ("generator", _) => generator_order.clone(),
            (_, None) => el.clone(),
            (_, Some(p)) => p.apply_to_edges(&el),
        };
        let hit = locality::lru_hit_rate(&ordered, cache_rows);
        let rep = locality::report(&ordered);
        if *name == "scrambled" {
            baseline = hit;
        }
        if hit > best.0 && *name != "generator" {
            best = (hit, name);
        }
        println!("{:<14} {:>9.1}% {:>12.0}", name, hit * 100.0, rep.mean_gap);
    }

    // Effect on the fused kernel's modeled latency at paper scale: the
    // gather reads (≈70 % of graph-kernel reads) hit L2 at the measured
    // rate of each ordering.
    let wl = gat_ablation(&ds, false).expect("gat");
    let plan = compile(&wl.ir, true, &CompileOptions::ours())
        .expect("compiles")
        .plan;
    let profiles = plan.profiles(&wl.stats);
    let latency_at = |hit: f64| -> f64 {
        profiles
            .iter()
            .map(|p| {
                if p.mapping.is_graph() {
                    device.kernel_latency_with(p, &wl.stats, &KernelEffects::locality(hit, 0.7))
                } else {
                    device.kernel_latency(p, &wl.stats)
                }
            })
            .sum()
    };
    let base = latency_at(baseline);
    let reordered = latency_at(best.0);
    println!(
        "\ntraining-step latency: scrambled {:.3} ms → {} {:.3} ms ({:.2}x)",
        base * 1e3,
        best.1,
        reordered * 1e3,
        base / reordered
    );

    // ---------- Reordering on a structured graph: EdgeConv kNN ----------
    // RMAT-folded Reddit has little community structure to recover; the
    // paper's other workload does: a point-cloud kNN graph is a spatial
    // mesh, the classic reordering win.
    let cloud =
        gnnopt_graph::knn::PointCloud::synthetic(smoke_scale(4, 1), smoke_scale(1024, 256), 23);
    let kg = cloud.knn_graph(20);
    let knn_el = {
        let pairs: Vec<(u32, u32)> = (0..kg.num_edges())
            .map(|e| (kg.src(e) as u32, kg.dst(e) as u32))
            .collect();
        gnnopt_graph::EdgeList::from_pairs(kg.num_vertices(), &pairs)
    };
    let knn_scrambled = scramble(&knn_el);
    // f=64 rows, same scaled-cache reasoning (4×1024 points vs a 256-row
    // slice of L2 keeps the ratio of a full ModelNet batch).
    let knn_cache = 256;
    println!(
        "\n== gather locality, EdgeConv kNN (k=20, {} points, {} cached rows) ==",
        kg.num_vertices(),
        knn_cache
    );
    println!("{:<14} {:>10}", "order", "hit rate");
    for (name, ordered) in [
        ("scrambled", knn_scrambled.clone()),
        (
            "rcm",
            strategies::rcm(&knn_scrambled).apply_to_edges(&knn_scrambled),
        ),
        (
            "cluster",
            strategies::cluster(&knn_scrambled, 4).apply_to_edges(&knn_scrambled),
        ),
    ] {
        println!(
            "{:<14} {:>9.1}%",
            name,
            locality::lru_hit_rate(&ordered, knn_cache) * 100.0
        );
    }

    // ---------- Neighbor grouping: imbalance flattening ----------
    println!("\n== neighbor grouping (vertex-balanced imbalance, full-scale Reddit) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>14}",
        "group size", "groups", "imbalance", "merge ops", "preproc (MiB)"
    );
    let stats = ds.full_scale_stats();
    let workers = device.thread_groups;
    println!(
        "{:<12} {:>10} {:>12.2} {:>12} {:>14}",
        "ungrouped",
        stats.num_vertices(),
        stats.vertex_balanced_imbalance(workers),
        0,
        0
    );
    for gs in [1024usize, 256, 64, 16] {
        let grouping = NeighborGrouping::build(&stats, gs);
        let gstats: GraphStats = grouping.grouped_stats();
        println!(
            "{:<12} {:>10} {:>12.2} {:>12} {:>14.1}",
            gs,
            grouping.num_groups(),
            gstats.vertex_balanced_imbalance(workers),
            grouping.merge_ops(),
            grouping.preprocessing_bytes() as f64 / (1 << 20) as f64,
        );
    }
    // Amortization: one preprocessing pass is ~2 edge-index scans.
    let grouping = NeighborGrouping::build(&stats, 64);
    let preproc_s = grouping.preprocessing_bytes() as f64 * 2.0 / device.bandwidth;
    let per_step_gain =
        base * (1.0 - 1.0 / stats.vertex_balanced_imbalance(workers).min(8.0)) * 0.3;
    println!(
        "\npreprocessing ≈ {:.3} ms, amortized after ~{} training steps",
        preproc_s * 1e3,
        (preproc_s / per_step_gain).ceil() as u64
    );
}

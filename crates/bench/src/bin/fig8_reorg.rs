//! Figure 8: ablation of propagation-postponed operator reorganization
//! (§4) — forward pass only, fusion disabled, so the effect of the
//! rewrite is isolated. Paper result: 1.68× latency, 3.06× IO, 1.30×
//! memory on average (GAT on Pubmed + EdgeConv; MoNet has no Scatter so
//! the pass does not apply).
//!
//! Plus a *measured* runtime-reordering section (§8): the same training
//! step executed on the real CPU with the session's vertex ids in
//! scrambled ingestion order vs relabeled by the auto-selected
//! reordering strategy — LRU hit-rate proxy of the gather reads, plus
//! wall-clock of both sides (user-facing results are identical; see
//! `tests/reorder_exec.rs`).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig8_reorg`
//! (`GNNOPT_SMOKE=1` shrinks the workloads to seconds).

use gnnopt_bench::{
    edgeconv_workload, gat_ablation, print_normalized, run_real_reordered, run_variant,
    scramble_ids, smoke_scale,
};
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope, ReorderPolicy};
use gnnopt_graph::{datasets, generators, Graph};
use gnnopt_models::{gat, gcn, EdgeConvConfig, GatConfig, GcnConfig, ModelSpec};
use gnnopt_reorder::locality;
use gnnopt_sim::Device;

fn variant(reorg: bool) -> CompileOptions {
    CompileOptions {
        reorg,
        fusion: FusionLevel::None,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto().with_fused(true),
    }
}

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 8 — reorganization ablation, forward pass ({})",
        device.name
    );

    // GAT on Pubmed (the paper evaluates this ablation on Pubmed due to
    // device memory limits), naive vs reorganized.
    let wl = gat_ablation(&datasets::pubmed(), false).expect("workload");
    let rows = vec![
        run_variant(
            "baseline",
            &wl.ir,
            &wl.stats,
            &variant(false),
            false,
            &device,
        )
        .expect("baseline"),
        run_variant("reorg", &wl.ir, &wl.stats, &variant(true), false, &device)
            .expect("reorganized"),
    ];
    print_normalized("GAT / Pubmed (forward)", &rows);

    // EdgeConv: 1 layer × 64 features, k = 40, batch 64.
    let wl = edgeconv_workload(40, 64, &EdgeConvConfig::ablation()).expect("workload");
    let rows = vec![
        run_variant(
            "baseline",
            &wl.ir,
            &wl.stats,
            &variant(false),
            false,
            &device,
        )
        .expect("baseline"),
        run_variant("reorg", &wl.ir, &wl.stats, &variant(true), false, &device)
            .expect("reorganized"),
    ];
    print_normalized("EdgeConv k=40 b=64 (forward)", &rows);

    println!("\nMoNet: no Scatter before ApplyEdge — reorganization not applicable (§7.3).");

    measured_reorder_section();
}

/// Real CPU execution of GAT and GCN training steps on a scrambled RMAT
/// graph: the measured side of runtime reordering. The session relabels
/// the graph once at build (`ExecPolicy::reorder`), so the LRU hit-rate
/// proxy of the gather reads rises and the step's wall-clock drops while
/// outputs and gradients keep the caller's vertex order. At the full
/// RMAT-16 size the vertex feature table (~8 MiB) overflows the cache
/// hierarchy, which is exactly when layout starts to matter.
fn measured_reorder_section() {
    let scale = smoke_scale(16u32, 8);
    let el = scramble_ids(
        &generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7),
        0x9e37_79b9,
    );
    let graph = Graph::from_edge_list(&el);
    println!(
        "\n# Measured runtime reordering — RMAT-{scale} ({} vertices, {} edges), scrambled ids",
        graph.num_vertices(),
        graph.num_edges()
    );

    // LRU hit-rate proxy of the gather reads at an L2-ish capacity
    // (scaled with the graph so the cache-to-graph ratio stays fixed);
    // pick the strategy with the best measured proxy, the profiling-based
    // selection §8 argues runtime preprocessing can afford.
    let cache_rows = (graph.num_vertices() / 16).max(16);
    let hit_before = locality::lru_hit_rate(&el, cache_rows);
    let (strategy, hit_after) = [
        (
            ReorderPolicy::DegreeSort,
            gnnopt_reorder::strategies::degree_sort(&el),
        ),
        (ReorderPolicy::Bfs, gnnopt_reorder::strategies::bfs(&el, 0)),
        (ReorderPolicy::Rcm, gnnopt_reorder::strategies::rcm(&el)),
        (
            ReorderPolicy::Cluster,
            gnnopt_reorder::strategies::cluster(&el, ReorderPolicy::CLUSTER_SWEEPS),
        ),
    ]
    .into_iter()
    .map(|(s, p)| {
        (
            s,
            locality::lru_hit_rate(&p.apply_to_edges(&el), cache_rows),
        )
    })
    .max_by(|a, b| a.1.total_cmp(&b.1))
    .expect("four candidates");
    // Identity stays in the comparison: if no strategy beats the
    // scrambled order's proxy, reordering has nothing to sell at this
    // size and the wall-clock table would only measure noise.
    if hit_after <= hit_before {
        println!(
            "gather LRU hit-rate proxy ({cache_rows} cached rows): scrambled {:.1}% already \
             beats every strategy (best {:?} {:.1}%) — skipping the measured comparison",
            hit_before * 100.0,
            strategy,
            hit_after * 100.0
        );
        return;
    }
    println!(
        "gather LRU hit-rate proxy ({cache_rows} cached rows): scrambled {:.1}% → {:?} {:.1}%",
        hit_before * 100.0,
        strategy,
        hit_after * 100.0
    );

    println!(
        "{:<18} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "model", "order", "fwd (s)", "bwd (s)", "preproc (s)", "speedup"
    );
    let workloads: Vec<(&str, ModelSpec)> = vec![
        (
            "GAT h=2 f=16",
            gat(&GatConfig {
                in_dim: 32,
                layers: vec![(2, 16)],
                negative_slope: 0.2,
                reorganized: true,
            })
            .expect("gat builds"),
        ),
        (
            "GCN 32-16-8",
            gcn(&GcnConfig {
                in_dim: 32,
                layer_dims: vec![16, 8],
            })
            .expect("gcn builds"),
        ),
    ];
    for (name, spec) in workloads {
        let opts = CompileOptions::ours();
        // Warmup pays one-time allocation/page-in outside the timings.
        run_real_reordered(&spec, &graph, &opts, 1, true, 11, true, ReorderPolicy::None)
            .expect("warmup");
        // Min-of-5 per side: locality effects are small relative to OS
        // scheduling noise on shared CI hosts.
        let best = |reorder: ReorderPolicy| {
            (0..5)
                .map(|_| {
                    let s = run_real_reordered(&spec, &graph, &opts, 1, true, 11, true, reorder)
                        .expect("step runs");
                    (s.forward_seconds + s.backward_seconds, s)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three runs")
        };
        let (base_wall, base) = best(ReorderPolicy::None);
        let (reord_wall, reord) = best(strategy);
        for (order, wall, s) in [
            ("scrambled", base_wall, &base),
            ("reordered", reord_wall, &reord),
        ] {
            println!(
                "{:<18} {:<10} {:>10.4} {:>10.4} {:>12.4} {:>9.2}x",
                name,
                order,
                s.forward_seconds,
                s.backward_seconds,
                s.reorder_seconds,
                base_wall / wall,
            );
        }
    }
    println!(
        "(speedup is reordered-vs-scrambled wall-clock; preprocessing is one-time and \
         amortizes over training steps; outputs and gradients keep the caller's vertex order)"
    );
}

//! Figure 8: ablation of propagation-postponed operator reorganization
//! (§4) — forward pass only, fusion disabled, so the effect of the
//! rewrite is isolated. Paper result: 1.68× latency, 3.06× IO, 1.30×
//! memory on average (GAT on Pubmed + EdgeConv; MoNet has no Scatter so
//! the pass does not apply).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig8_reorg`.

use gnnopt_bench::{edgeconv_workload, gat_ablation, print_normalized, run_variant};
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn variant(reorg: bool) -> CompileOptions {
    CompileOptions {
        reorg,
        fusion: FusionLevel::None,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto(),
        fused_exec: true,
    }
}

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 8 — reorganization ablation, forward pass ({})",
        device.name
    );

    // GAT on Pubmed (the paper evaluates this ablation on Pubmed due to
    // device memory limits), naive vs reorganized.
    let wl = gat_ablation(&datasets::pubmed(), false).expect("workload");
    let rows = vec![
        run_variant(
            "baseline",
            &wl.ir,
            &wl.stats,
            &variant(false),
            false,
            &device,
        )
        .expect("baseline"),
        run_variant("reorg", &wl.ir, &wl.stats, &variant(true), false, &device)
            .expect("reorganized"),
    ];
    print_normalized("GAT / Pubmed (forward)", &rows);

    // EdgeConv: 1 layer × 64 features, k = 40, batch 64.
    let wl = edgeconv_workload(40, 64, &EdgeConvConfig::ablation()).expect("workload");
    let rows = vec![
        run_variant(
            "baseline",
            &wl.ir,
            &wl.stats,
            &variant(false),
            false,
            &device,
        )
        .expect("baseline"),
        run_variant("reorg", &wl.ir, &wl.stats, &variant(true), false, &device)
            .expect("reorganized"),
    ];
    print_normalized("EdgeConv k=40 b=64 (forward)", &rows);

    println!("\nMoNet: no Scatter before ApplyEdge — reorganization not applicable (§7.3).");
}

//! Figure 10: ablation of intermediate-data recomputation (§6) — full
//! training step, three variants: no fusion / fusion + stashing / fusion +
//! recomputation. Paper result: recomputation saves 2.21× memory on GAT
//! (at +7.1 % latency) and 1.55× on MoNet (−5.9 % latency); EdgeConv needs
//! no recomputation (its max-gather stashes only an O(|V|) argmax table).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig10_recompute`.

use gnnopt_bench::{gat_ablation, gib, monet_ablation, run_variant, VariantResult};
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_sim::Device;

fn variants() -> Vec<(&'static str, CompileOptions)> {
    let base = CompileOptions {
        reorg: true,
        fusion: FusionLevel::Unified,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto().with_fused(true),
    };
    vec![
        // "w/o fusion" retains the standard built-in fused kernels
        // (the paper's system extends DGL; its ablation disables only
        // the unified fusion).
        (
            "w/o fusion",
            CompileOptions {
                fusion: FusionLevel::DglBuiltin,
                ..base
            },
        ),
        ("fusion+stash", base),
        (
            "fusion+recompute",
            CompileOptions {
                recompute: RecomputeScope::All,
                ..base
            },
        ),
    ]
}

fn print_rows(title: &str, rows: &[VariantResult]) {
    println!("\n== {title} (training step) ==");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "variant", "latency(ms)", "mem(GiB)", "stash(GiB)", "kernels"
    );
    for r in rows {
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>12}",
            r.system,
            r.stats.latency * 1e3,
            gib(r.stats.peak_memory),
            gib(r.stats.stashed_bytes),
            r.stats.kernels
        );
    }
    let stash = &rows[1];
    let rec = &rows[2];
    println!(
        "recomputation saves {:.2}x memory at {:+.1}% latency",
        stash.stats.peak_memory as f64 / rec.stats.peak_memory as f64,
        (rec.stats.latency / stash.stats.latency - 1.0) * 100.0
    );
}

fn main() {
    let device = Device::rtx3090();
    println!("# Figure 10 — recomputation ablation ({})", device.name);

    let ds = gnnopt_bench::smoke_scale(datasets::reddit(), datasets::pubmed());
    let gat_wl = gat_ablation(&ds, false).expect("gat");
    let rows: Vec<VariantResult> = variants()
        .into_iter()
        .map(|(label, opts)| {
            run_variant(label, &gat_wl.ir, &gat_wl.stats, &opts, true, &device).expect("variant")
        })
        .collect();
    print_rows("GAT h=4 f=64 / Reddit", &rows);

    let monet_wl = monet_ablation(&ds).expect("monet");
    let rows: Vec<VariantResult> = variants()
        .into_iter()
        .map(|(label, opts)| {
            run_variant(label, &monet_wl.ir, &monet_wl.stats, &opts, true, &device)
                .expect("variant")
        })
        .collect();
    print_rows("MoNet k=2 r=1 f=16 / Reddit", &rows);

    println!(
        "\nEdgeConv: Gather(max) stashes only the O(|V|) argmax table — \
         recomputation not applicable (§7.3)."
    );
}

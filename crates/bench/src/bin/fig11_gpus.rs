//! Figure 11: cross-GPU evaluation. The paper's claim: with all three
//! techniques, workloads that OOM on an RTX 2080 (8 GB) under DGL — and
//! need an RTX 3090 (24 GB) — run on the 2080 with comparable latency
//! (EdgeConv even 1.17× faster than DGL-on-3090).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig11_gpus`.

use gnnopt_bench::{edgeconv_workload, gat_ablation, gib, monet_ablation, run_variant, Workload};
use gnnopt_core::CompileOptions;
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn report_two(dgl_wl: &Workload, ours_wl: &Workload) {
    let d3090 = Device::rtx3090();
    let d2080 = Device::rtx2080();
    let dgl_3090 = run_variant(
        "DGL@3090",
        &dgl_wl.ir,
        &dgl_wl.stats,
        &CompileOptions::dgl(),
        true,
        &d3090,
    )
    .expect("dgl 3090");
    let dgl_2080 = run_variant(
        "DGL@2080",
        &dgl_wl.ir,
        &dgl_wl.stats,
        &CompileOptions::dgl(),
        true,
        &d2080,
    )
    .expect("dgl 2080");
    let ours_3090 = run_variant(
        "Ours@3090",
        &ours_wl.ir,
        &ours_wl.stats,
        &CompileOptions::ours(),
        true,
        &d3090,
    )
    .expect("ours 3090");
    let ours_2080 = run_variant(
        "Ours@2080",
        &ours_wl.ir,
        &ours_wl.stats,
        &CompileOptions::ours(),
        true,
        &d2080,
    )
    .expect("ours 2080");

    println!("\n== {} ==", ours_wl.name);
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "system", "latency(ms)", "mem(GiB)", "fits?"
    );
    for r in [&dgl_3090, &dgl_2080, &ours_3090, &ours_2080] {
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>8}",
            r.system,
            r.stats.latency * 1e3,
            gib(r.stats.peak_memory),
            match &r.fits {
                Ok(_) => "yes",
                Err(_) => "OOM",
            }
        );
    }
    if dgl_2080.fits.is_err() && ours_2080.fits.is_ok() {
        println!(
            "→ DGL needs the 24 GB RTX 3090; ours runs on the 8 GB RTX 2080 at {:.2}x \
             DGL-on-3090 latency",
            dgl_3090.stats.latency / ours_2080.stats.latency
        );
    }
}

fn report(wl: &Workload) {
    report_two(wl, wl);
}

fn main() {
    println!("# Figure 11 — running 24 GB workloads on an 8 GB GPU");
    // DGL runs its hand-reorganized library GAT; ours starts naive.
    report_two(
        &gat_ablation(&datasets::reddit(), true).expect("gat dgl"),
        &gat_ablation(&datasets::reddit(), false).expect("gat ours"),
    );
    report(
        &edgeconv_workload(
            40,
            gnnopt_bench::smoke_scale(64, 8),
            &EdgeConvConfig::paper(),
        )
        .expect("edgeconv"),
    );
    report(&monet_ablation(&datasets::reddit()).expect("monet"));
}

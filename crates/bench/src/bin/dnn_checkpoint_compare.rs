//! §8's recomputation comparison, quantified: *"unlike DNN recomputation,
//! which incurs roughly 30% of additional latency (Chen et al., 2016),
//! overhead by our proposed recomputation technique is <10%"*.
//!
//! The DNN technique checkpoints segment boundaries of the kernel chain
//! and re-runs whole segments during backward (implemented faithfully in
//! `gnnopt_core::checkpoint`, √n heuristic + optimal DP); the paper's §6
//! technique instead recomputes only cheap graph operators inside the
//! fused backward kernels. Both are evaluated on the same GAT training
//! plan; the DNN rows use the checkpoint model over the forward kernels'
//! measured FLOPs/bytes, the "ours" row is the measured difference
//! between the stash-all and recompute compilations.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin dnn_checkpoint_compare`.

use gnnopt_bench::{gat_figure7, gib, run_variant};
use gnnopt_core::checkpoint::{optimal_plan, CheckpointPlan, StageCost};
use gnnopt_core::{compile, CompileOptions, FusionLevel, Phase, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_sim::Device;

fn main() {
    let device = Device::rtx3090();
    let ds = gnnopt_bench::smoke_scale(datasets::reddit(), datasets::pubmed());
    let wl = gat_figure7(&ds, true).expect("gat workload");
    println!(
        "# DNN segment checkpointing vs §6 operator recomputation — GAT 2×128 / Reddit ({})",
        device.name
    );

    // Measured rows: the real compiler with and without §6.
    let stash_opts = CompileOptions {
        recompute: RecomputeScope::None,
        ..CompileOptions::ours()
    };
    let stash =
        run_variant("stash", &wl.ir, &wl.stats, &stash_opts, true, &device).expect("stash variant");
    let ours = run_variant(
        "ours",
        &wl.ir,
        &wl.stats,
        &CompileOptions::ours(),
        true,
        &device,
    )
    .expect("ours variant");

    // DNN rows: segment checkpointing over the *per-operator* forward
    // chain — DNN frameworks checkpoint module boundaries of an unfused
    // op graph, so the stages are the unfused kernels.
    let dnn_opts = CompileOptions {
        fusion: FusionLevel::None,
        recompute: RecomputeScope::None,
        ..CompileOptions::ours()
    };
    let plan = compile(&wl.ir, true, &dnn_opts).expect("compiles").plan;
    let profiles = plan.profiles(&wl.stats);
    let stages: Vec<StageCost> = plan
        .kernels
        .iter()
        .zip(&profiles)
        .filter(|(k, _)| plan.ir.node(k.nodes[0]).phase == Phase::Forward)
        .map(|(_, p)| StageCost {
            flops: p.flops,
            activation_bytes: p.bytes_written,
        })
        .collect();
    let fwd_flops: u64 = stages.iter().map(|s| s.flops).sum();
    println!(
        "\nforward chain: {} kernels, {:.1} GFLOP, {:.2} GiB of activations",
        stages.len(),
        fwd_flops as f64 / 1e9,
        gib(stages.iter().map(|s| s.activation_bytes).sum())
    );

    println!(
        "\n{:<28} {:>12} {:>16}",
        "scheme", "mem (GiB)", "latency overhead"
    );
    let all = CheckpointPlan::stash_all(stages.len());
    println!(
        "{:<28} {:>12.2} {:>15.1}%",
        "stash everything",
        gib(all.peak_memory(&stages)),
        all.overhead_ratio(&stages, 2.0) * 100.0
    );
    let sqrt = CheckpointPlan::sqrt_n(stages.len());
    println!(
        "{:<28} {:>12.2} {:>15.1}%",
        "DNN checkpoint (sqrt-n)",
        gib(sqrt.peak_memory(&stages)),
        sqrt.overhead_ratio(&stages, 2.0) * 100.0
    );
    // The best the DNN scheme can do at *any* budget is bounded below by
    // adjacent O(|E|) activations — segments cannot cut through a tensor,
    // and GAT's forward materializes two 56 GiB edge tensors back to
    // back. Bisect for the scheme's floor.
    let mut lo = 0u64;
    let mut hi = all.peak_memory(&stages);
    while hi - lo > (1 << 20) {
        let mid = lo + (hi - lo) / 2;
        if optimal_plan(&stages, mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if let Some(floor) = optimal_plan(&stages, hi) {
        println!(
            "{:<28} {:>12.2} {:>15.1}%   <- best any segmentation can do",
            "DNN checkpoint (DP floor)",
            gib(floor.peak_memory(&stages)),
            floor.overhead_ratio(&stages, 2.0) * 100.0
        );
    }
    match optimal_plan(&stages, ours.stats.peak_memory) {
        Some(opt) => println!(
            "{:<28} {:>12.2} {:>15.1}%",
            "DNN checkpoint (DP, ours')",
            gib(opt.peak_memory(&stages)),
            opt.overhead_ratio(&stages, 2.0) * 100.0
        ),
        None => println!(
            "{:<28} {:>12} {:>16}   <- no segmentation reaches ours' budget",
            "DNN checkpoint (DP, ours')", "infeasible", "-"
        ),
    }
    let measured_overhead = (ours.stats.latency - stash.stats.latency) / stash.stats.latency;
    println!(
        "{:<28} {:>12.2} {:>15.1}%   <- §6, measured",
        "ours (operator recompute)",
        gib(ours.stats.peak_memory),
        measured_overhead * 100.0
    );
    println!(
        "\npaper's §8 claim reproduced: segment checkpointing pays ≈30% latency and still \
         cannot drop\nbelow the largest O(|E|) tensor; §6's operator recomputation erases \
         those tensors entirely\nat <10% (here ≈0%) overhead."
    );
}

//! Sharded-execution sweep: measures the edge-cut sharded session on
//! RMAT graphs up to scale 20 (the ~16.8M-edge point) across shard
//! counts, reporting per-shard arena bytes (the memory the sharding
//! exists to split), cut edges, halo vertices, and the **per-kernel
//! cross-shard traffic** of one training step — every halo exchange,
//! replica patch and global gather/scatter, with rows and bytes — then
//! writes `BENCH_PR9.json`.
//!
//! The workload is the same GCN configuration as the committed
//! `BENCH_PR8.json` step rows (64 → 64 → 32 on RMAT edge-factor 16), so
//! the `shards = 1` row at scale 16 is directly comparable to the PR 8
//! `GCN`/`Blocked` row: the single-shard path is a plain [`Session`]
//! and must reproduce its step time within noise — the snapshot records
//! the ratio.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin sharding_sweep`;
//! `GNNOPT_SMOKE=1` shrinks the sweep to seconds and skips the file
//! write (a schema check, never a measurement).

use gnnopt_bench::{smoke, smoke_scale};
use gnnopt_core::{compile, CompileOptions};
use gnnopt_exec::{Bindings, EnvOverrides, ShardedSession};
use gnnopt_graph::{generators, Graph};
use gnnopt_models::{gcn, GcnConfig, ModelSpec};
use gnnopt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Traffic of one plan kernel within one step, summed over exchanges.
#[derive(Serialize)]
struct KernelTrafficRow {
    kernel: usize,
    backward: bool,
    /// Exchange kinds seen (`VertexHalo`, `EdgeReplica`, ...).
    kinds: Vec<String>,
    exchanges: u64,
    rows: u64,
    bytes: u64,
}

/// One (graph scale, shard count) measurement.
#[derive(Serialize)]
struct SweepRow {
    scale: u32,
    num_vertices: usize,
    num_edges: usize,
    shards: usize,
    /// Edges whose endpoints land in different shards.
    cut_edges: u64,
    /// Union halo rows summed over shards.
    halo_vertices: u64,
    /// Cross-shard bytes moved by one training step.
    comm_bytes: u64,
    /// Number of exchange events in one step.
    halo_exchanges: u64,
    /// Per-shard planned arena bytes — the per-shard memory footprint.
    arena_bytes_per_shard: Vec<u64>,
    /// Largest single shard arena: the actual peak if shards ran on
    /// separate memory domains.
    max_shard_arena_bytes: u64,
    /// Sum of shard arenas: the replication + halo overhead vs one
    /// unsharded arena shows up here.
    total_arena_bytes: u64,
    forward_ms: f64,
    backward_ms: f64,
    step_ms: f64,
    /// Cross-shard traffic grouped by plan kernel (empty at shards=1).
    kernel_traffic: Vec<KernelTrafficRow>,
}

/// Comparison of the shards=1 control row against the committed PR 8
/// GCN step row on the same workload.
#[derive(Serialize)]
struct ControlRow {
    pr8_step_ms: f64,
    sharded1_step_ms: f64,
    /// `sharded1 / pr8` — must sit near 1.0: one shard is a plain
    /// session.
    ratio: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// Snapshot schema marker.
    schema: String,
    smoke: bool,
    threads: usize,
    model: String,
    sweep: Vec<SweepRow>,
    /// Present when `BENCH_PR8.json` is readable and the scale-16
    /// shards=1 row was measured.
    control_vs_pr8: Option<ControlRow>,
}

#[derive(Deserialize)]
struct Pr8Snapshot {
    steps: Vec<Pr8StepRow>,
}

#[derive(Deserialize)]
struct Pr8StepRow {
    model: String,
    kernel: String,
    step_ms: f64,
    arena: bool,
    threads: usize,
}

/// The PR 8 workload: the `compute_engine_workloads` GCN.
fn model() -> ModelSpec {
    gcn(&GcnConfig {
        in_dim: 64,
        layer_dims: vec![64, 32],
    })
    .expect("gcn builds")
}

fn measure(spec: &ModelSpec, graph: &Graph, scale: u32, k: usize, reps: usize) -> SweepRow {
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let mut b = Bindings::new();
    for (name, v) in spec.init_values(graph, 11) {
        b.insert(&name, v.clone());
    }
    let mut sess = ShardedSession::builder(&compiled.plan, graph)
        .shards(k)
        .env(EnvOverrides::Off)
        .build()
        .expect("sharded session");
    let seed = Tensor::ones(&[graph.num_vertices(), spec.output_dim()]);
    sess.step(&b, &seed).expect("warmup step");
    let mut best = sess.stats();
    for _ in 1..reps {
        sess.step(&b, &seed).expect("step");
        let s = sess.stats();
        if s.forward_seconds + s.backward_seconds < best.forward_seconds + best.backward_seconds {
            best = s;
        }
    }

    // Aggregate the last step's exchanges per kernel.
    let mut traffic: Vec<KernelTrafficRow> = Vec::new();
    for r in sess.exchanges() {
        let kind = format!("{:?}", r.kind);
        match traffic
            .iter_mut()
            .find(|t| t.kernel == r.kernel && t.backward == r.backward)
        {
            Some(t) => {
                t.exchanges += 1;
                t.rows += r.rows;
                t.bytes += r.bytes;
                if !t.kinds.contains(&kind) {
                    t.kinds.push(kind);
                }
            }
            None => traffic.push(KernelTrafficRow {
                kernel: r.kernel,
                backward: r.backward,
                kinds: vec![kind],
                exchanges: 1,
                rows: r.rows,
                bytes: r.bytes,
            }),
        }
    }

    let arenas: Vec<u64> = sess
        .shard_summaries()
        .iter()
        .map(|s| s.arena_bytes)
        .collect();
    SweepRow {
        scale,
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        shards: sess.num_shards(),
        cut_edges: best.cut_edges,
        halo_vertices: best.halo_vertices,
        comm_bytes: best.comm_bytes,
        halo_exchanges: best.halo_exchanges,
        max_shard_arena_bytes: arenas.iter().copied().max().unwrap_or(0),
        total_arena_bytes: arenas.iter().sum(),
        arena_bytes_per_shard: arenas,
        forward_ms: best.forward_seconds * 1e3,
        backward_ms: best.backward_seconds * 1e3,
        step_ms: (best.forward_seconds + best.backward_seconds) * 1e3,
        kernel_traffic: traffic,
    }
}

/// The committed PR 8 GCN step time on the matching configuration: the
/// `Blocked`-kernel arena-on row at the auto thread count.
fn pr8_gcn_step_ms(path: &std::path::Path, threads: usize) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let snap: Pr8Snapshot = serde_json::from_str(&text).ok()?;
    snap.steps
        .iter()
        .find(|r| r.model == "GCN" && r.kernel == "Blocked" && r.arena && r.threads == threads)
        .map(|r| r.step_ms)
}

fn main() {
    let spec = model();
    let control_scale = smoke_scale(16u32, 6);
    let scales: Vec<u32> = smoke_scale(vec![16, 18, 20], vec![6]);
    let shard_counts = smoke_scale(vec![1usize, 2, 4, 8], vec![1usize, 2]);
    let reps = smoke_scale(3usize, 1);

    let mut sweep = Vec::new();
    for &scale in &scales {
        let graph = Graph::from_edge_list(&generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7));
        // The full shard axis at the largest scale (the point of the
        // sweep) and at the PR 8 control scale; endpoints elsewhere.
        let ks: Vec<usize> = if scale == *scales.last().unwrap() || scale == control_scale {
            shard_counts.clone()
        } else {
            vec![shard_counts[0], *shard_counts.last().unwrap()]
        };
        for &k in &ks {
            eprintln!("measuring scale={scale} shards={k} ...");
            sweep.push(measure(&spec, &graph, scale, k, reps));
        }
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let threads = gnnopt_tensor::parallel::available_threads();
    // The smoke workload is not the PR 8 workload: no comparison there.
    let control_vs_pr8 = sweep
        .iter()
        .filter(|_| !smoke())
        .find(|r| r.scale == control_scale && r.shards == 1)
        .and_then(|row| {
            let pr8 = pr8_gcn_step_ms(&root.join("BENCH_PR8.json"), threads)?;
            Some(ControlRow {
                pr8_step_ms: pr8,
                sharded1_step_ms: row.step_ms,
                ratio: row.step_ms / pr8,
            })
        });

    let snapshot = Snapshot {
        schema: "pr9-sharded-execution".to_owned(),
        smoke: smoke(),
        threads,
        model: "GCN 64-64-32 rmat ef16".to_owned(),
        sweep,
        control_vs_pr8,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    println!("{json}");
    if smoke() {
        eprintln!("smoke mode: not overwriting BENCH_PR9.json");
    } else {
        let path = root.join("BENCH_PR9.json");
        std::fs::write(&path, &json).expect("BENCH_PR9.json writes");
        eprintln!("wrote {}", path.display());
    }
}

//! Ablation of the §6 recomputation criterion
//! `ComputationCost / MemoryCost ≤ O(1)`.
//!
//! The paper fixes the criterion at "no more than one FLOP-ish per
//! rebuilt element"; this sweep varies the threshold from
//! never-recompute (0) to recompute-everything-cheap (10⁶) and reports
//! the latency/memory trade-off curve on GAT and MoNet training. The
//! paper's operating point (≈16 FLOPs/element, admitting the edge-softmax
//! rebuild) should sit at the memory floor with single-digit-percent
//! latency overhead.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin recompute_threshold`.

use gnnopt_bench::{gat_ablation, gib, monet_ablation, run_variant, Workload};
use gnnopt_core::{CompileOptions, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_sim::Device;

fn sweep(title: &str, wl: &Workload, device: &Device) {
    println!("\n== {title} ==");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>10}",
        "threshold", "latency(ms)", "mem(GiB)", "stash(GiB)", "kernels"
    );
    for threshold in [0.0, 1.0, 4.0, 16.0, 64.0, 1e6] {
        let opts = CompileOptions {
            recompute: if threshold == 0.0 {
                RecomputeScope::None
            } else {
                RecomputeScope::All
            },
            recompute_threshold: threshold,
            ..CompileOptions::ours()
        };
        let r = run_variant("ours", &wl.ir, &wl.stats, &opts, true, device).expect("variant");
        println!(
            "{:>12} {:>12.3} {:>12.3} {:>14.3} {:>10}",
            if threshold == 0.0 {
                "stash-all".to_owned()
            } else {
                format!("{threshold}")
            },
            r.stats.latency * 1e3,
            gib(r.stats.peak_memory),
            gib(r.stats.stashed_bytes),
            r.stats.kernels,
        );
    }
}

fn main() {
    let device = Device::rtx3090();
    println!("# Recomputation-threshold sweep ({})", device.name);
    let ds = gnnopt_bench::smoke_scale(datasets::reddit(), datasets::pubmed());
    sweep(
        &format!("GAT h=4 f=64 / {} (training)", ds.name),
        &gat_ablation(&ds, false).expect("gat"),
        &device,
    );
    sweep(
        &format!("MoNet k=2 r=1 f=16 / {} (training)", ds.name),
        &monet_ablation(&ds).expect("monet"),
        &device,
    );
}

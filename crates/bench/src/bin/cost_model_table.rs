//! The analytical cost examples of §4 and §5, symbolic vs measured:
//!
//! * §4 (GAT attention computation): naive `6|E|f + |E|` FLOPs vs
//!   reorganized `4|V|f + 2|E|`;
//! * §5 (GAT graph-kernel IO): unfused `|V|hf + 7|E|h + 3|E|hf` vs fused
//!   `|V|hf + 5|E|h + 2|E|hf` (element counts).
//!
//! Exact constants differ slightly from the paper (it counts feature
//! elements, this harness counts bytes and includes index arrays); the
//! table shows both so the correspondence is auditable.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin cost_model_table`.

use gnnopt_core::{compile, CompileOptions, ExecPolicy, FusionLevel, Phase, RecomputeScope};
use gnnopt_graph::GraphStats;
use gnnopt_models::{gat, GatConfig};
use gnnopt_sim::ThreadMapping;

fn main() {
    let v = gnnopt_bench::smoke_scale(10_000u64, 1_000);
    let avg_deg = 20.0;
    let stats = GraphStats::synthesize_power_law(v as usize, avg_deg, 0.8);
    let e = stats.num_edges() as u64;
    let (h, f) = (1u64, 64u64);

    println!("# Cost-model cross-check on |V|={v}, |E|={e}, heads={h}, f={f}\n");

    // §4: attention-score computation.
    let naive_paper = 6 * e * f + e;
    let reorg_paper = 4 * v * f + 2 * e;
    let cfg = GatConfig {
        in_dim: f as usize,
        layers: vec![(h as usize, f as usize)],
        negative_slope: 0.2,
        reorganized: false,
    };
    let spec = gat(&cfg).unwrap();
    let base = CompileOptions {
        reorg: false,
        fusion: FusionLevel::None,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto(),
    };
    let device = gnnopt_sim::Device::rtx3090();
    // Count only the attention-score portion: everything except the
    // input projection (first Linear) and the aggregation.
    let attention_flops = |opts: &CompileOptions| -> u64 {
        let compiled = compile(&spec.ir, false, opts).expect("compiles");
        let profiles = compiled.plan.profiles(&stats);
        let _ = &device;
        // Sum kernels that contain edge-space score math or vertex dots:
        compiled
            .plan
            .kernels
            .iter()
            .zip(&profiles)
            .filter(|(k, _)| {
                k.nodes.iter().any(|&n| {
                    let node = compiled.plan.ir.node(n);
                    node.phase == Phase::Forward
                        && matches!(
                            node.kind,
                            gnnopt_core::OpKind::HeadDot
                                | gnnopt_core::OpKind::Scatter(_)
                                | gnnopt_core::OpKind::Unary(_)
                        )
                        && node.dim.feat <= 2 * f as usize
                })
            })
            .map(|(_, p)| p.flops)
            .sum()
    };
    let naive_measured = attention_flops(&base);
    let reorg_measured = attention_flops(&CompileOptions {
        reorg: true,
        ..base
    });
    println!("§4 attention computation (FLOPs):");
    println!("  paper naive   6|E|f+|E|  = {naive_paper}");
    println!("  measured naive           = {naive_measured}");
    println!("  paper reorg   4|V|f+2|E| = {reorg_paper}");
    println!("  measured reorg           = {reorg_measured}");
    println!(
        "  reduction: paper {:.2}x, measured {:.2}x\n",
        naive_paper as f64 / reorg_paper as f64,
        naive_measured as f64 / reorg_measured as f64
    );

    // §5: graph-kernel IO in elements (divide bytes by 4).
    let unfused_paper = v * h * f + 7 * e * h + 3 * e * h * f;
    let fused_paper = v * h * f + 5 * e * h + 2 * e * h * f;
    let graph_io = |fusion: FusionLevel| -> u64 {
        let opts = CompileOptions {
            reorg: true,
            fusion,
            ..base
        };
        let compiled = compile(&spec.ir, false, &opts).expect("compiles");
        let profiles = compiled.plan.profiles(&stats);
        compiled
            .plan
            .kernels
            .iter()
            .zip(&profiles)
            .filter(|(k, _)| k.mapping != ThreadMapping::Dense)
            .map(|(_, p)| p.bytes_total() / 4)
            .sum::<u64>()
    };
    let unfused_measured = graph_io(FusionLevel::None);
    let fused_measured = graph_io(FusionLevel::Unified);
    println!("§5 graph-kernel IO (elements):");
    println!("  paper unfused |V|hf+7|E|h+3|E|hf = {unfused_paper}");
    println!("  measured unfused                 = {unfused_measured}");
    println!("  paper fused   |V|hf+5|E|h+2|E|hf = {fused_paper}");
    println!("  measured fused                   = {fused_measured}");
    println!(
        "  saving: paper {:.2}x, measured {:.2}x",
        unfused_paper as f64 / fused_paper as f64,
        unfused_measured as f64 / fused_measured as f64
    );
}

//! The paper's §1 headline measurements:
//!
//! * redundant neural-operator computation = **92.4 %** of EdgeConv's
//!   operator FLOPs (eliminated by reorganization);
//! * intermediate data = **91.9 %** of GAT's training memory (eliminated
//!   by fusion + recomputation).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin headline_stats`.

use gnnopt_bench::{edgeconv_workload, gat_ablation};
use gnnopt_core::{compile, CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn main() {
    let device = Device::rtx3090();

    // (1) EdgeConv redundancy: FLOPs with and without reorganization.
    let wl = edgeconv_workload(
        40,
        gnnopt_bench::smoke_scale(64, 8),
        &EdgeConvConfig::paper(),
    )
    .expect("edgeconv");
    let base = CompileOptions {
        reorg: false,
        fusion: FusionLevel::None,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto().with_fused(true),
    };
    let naive = compile(&wl.ir, false, &base).expect("naive");
    let reorg = compile(
        &wl.ir,
        false,
        &CompileOptions {
            reorg: true,
            ..base
        },
    )
    .expect("reorganized");
    let naive_flops = naive.plan.exec_stats(&device, &wl.stats).flops;
    let reorg_flops = reorg.plan.exec_stats(&device, &wl.stats).flops;
    let redundant = 1.0 - reorg_flops as f64 / naive_flops as f64;
    println!("EdgeConv (k=40, batch=64, 4 layers):");
    println!("  naive operator FLOPs:        {naive_flops}");
    println!("  reorganized operator FLOPs:  {reorg_flops}");
    println!(
        "  redundant computation:       {:.1}%   (paper: 92.4%)",
        redundant * 100.0
    );

    // (2) GAT intermediate-data share of training memory under DGL.
    let ds = datasets::reddit();
    let wl = gat_ablation(&ds, true).expect("gat");
    let dgl = compile(&wl.ir, true, &CompileOptions::dgl()).expect("dgl");
    let stats = dgl.plan.exec_stats(&device, &wl.stats);
    // Inputs + parameters are the non-intermediate residents.
    let mut persistent = 0u64;
    for n in dgl.plan.ir.nodes() {
        use gnnopt_core::OpKind;
        if matches!(
            n.kind,
            OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed
        ) {
            let rows = match n.space {
                gnnopt_core::Space::Vertex => wl.stats.num_vertices(),
                gnnopt_core::Space::Edge => wl.stats.num_edges(),
                gnnopt_core::Space::Param => n.dim.heads,
            } as u64;
            let cols = match n.space {
                gnnopt_core::Space::Param => n.dim.feat,
                _ => n.dim.total(),
            } as u64;
            persistent += rows * cols * 4;
        }
    }
    let intermediate = stats.peak_memory.saturating_sub(persistent);
    println!("\nGAT (h=4, f=64, Reddit) under DGL training:");
    println!(
        "  peak memory:        {:.3} GiB",
        gnnopt_bench::gib(stats.peak_memory)
    );
    println!(
        "  inputs+parameters:  {:.3} GiB",
        gnnopt_bench::gib(persistent)
    );
    println!(
        "  intermediate share: {:.1}%   (paper: 91.9%)",
        intermediate as f64 / stats.peak_memory as f64 * 100.0
    );
}

//! Thread-mapping policy ablation (§5, Figure 5 discussion): the same
//! fused GAT kernel under vertex-balanced vs edge-balanced mappings, on a
//! balanced graph (kNN-regular) and a skewed one (Reddit-profile).
//!
//! Expected shape: vertex-balanced wins on balanced graphs (no atomics);
//! on skewed graphs its imbalance penalty grows while edge-balanced pays
//! the atomic penalty instead — the trade-off §5 proposes selecting by
//! profiling.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin mapping_ablation`.

use gnnopt_bench::run_variant;
use gnnopt_core::fusion::MappingPolicy;
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::GraphStats;
use gnnopt_models::{edgeconv, EdgeConvConfig};
use gnnopt_sim::Device;

fn options(policy: MappingPolicy) -> CompileOptions {
    CompileOptions {
        reorg: true,
        fusion: FusionLevel::Unified,
        mapping: policy,
        recompute: RecomputeScope::All,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto().with_fused(true),
    }
}

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Thread-mapping ablation (fused EdgeConv forward, {})",
        device.name
    );

    // EdgeConv has no softmax, so the kernel can genuinely run under
    // either mapping.
    let spec = edgeconv(&EdgeConvConfig::ablation()).expect("model builds");
    let n = gnnopt_bench::smoke_scale(65536, 4096);
    let graphs = vec![
        (
            "regular (kNN, deg=40)",
            GraphStats::synthesize_power_law(n, 40.0, 0.0),
        ),
        (
            "skewed (power-law, deg=40)",
            GraphStats::synthesize_power_law(n, 40.0, 1.2),
        ),
    ];

    println!(
        "\n{:<28} {:>16} {:>16} {:>12}",
        "graph", "vertex-bal (ms)", "edge-bal (ms)", "imbalance"
    );
    for (name, stats) in graphs {
        let vb = run_variant(
            "vertex",
            &spec.ir,
            &stats,
            &options(MappingPolicy::ForceVertex),
            false,
            &device,
        )
        .expect("vertex-balanced");
        let eb = run_variant(
            "edge",
            &spec.ir,
            &stats,
            &options(MappingPolicy::ForceEdge),
            false,
            &device,
        )
        .expect("edge-balanced");
        println!(
            "{:<28} {:>16.3} {:>16.3} {:>11.2}x",
            name,
            vb.stats.latency * 1e3,
            eb.stats.latency * 1e3,
            stats.vertex_balanced_imbalance(device.thread_groups)
        );
    }
    println!(
        "\nBoth mappings are IO-bound here, so latencies stay close — the paper's\n\
         §5 observation that the vertex-balanced imbalance \"is minor as long as we\n\
         have enough parallelism\" and \"worth taking if it enables kernel fusion\".\n\
         Auto policy picks vertex-balanced when a reduction/softmax is present and\n\
         edge-balanced otherwise."
    );
}

//! Machine-readable performance snapshot: measures the compute engine
//! (GEMM GFLOP/s per kernel), a real GAT/GCN training step per engine —
//! at the auto-detected pool size and pinned to 4 workers, with the
//! static memory arena on, plus an arena-off control set — and the
//! session's measured and planned peak bytes, then writes
//! `BENCH_PR8.json` so the perf trajectory is tracked as a diffable
//! artifact (PR 5 wrote `BENCH_PR5.json`, PR 6 `BENCH_PR6.json`, PR 7
//! `BENCH_PR7.json`; later PRs append `BENCH_PR<N>.json` files of the
//! same shape).
//!
//! The snapshot also reads the committed `BENCH_PR7.json` (when present)
//! and reports, per model, the measured-peak reduction of the
//! memory-planned executor over the PR 7 baseline on the blocked-GEMM
//! auto-thread rows — the regression guard for the static memory
//! planner's node-granular eviction and fused mid-launch release.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin perf_snapshot`;
//! `GNNOPT_SMOKE=1` shrinks every workload to CI scale and skips the
//! file write (the numbers are then only a schema check, not a
//! measurement — they must not clobber the committed artifact).

use gnnopt_bench::{
    compute_engine_workloads, measure_gemm_single_thread, measure_steps_interleaved_arena, smoke,
    smoke_scale, GEMM_KERNELS,
};
use gnnopt_graph::Graph;
use gnnopt_models::ModelSpec;
use gnnopt_tensor::parallel::available_threads;
use serde::Serialize;

/// One GEMM measurement row.
#[derive(Serialize)]
struct GemmRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    gflops: f64,
}

/// One end-to-end training-step measurement row.
#[derive(Serialize)]
struct StepRow {
    model: String,
    kernel: String,
    forward_ms: f64,
    backward_ms: f64,
    step_ms: f64,
    peak_value_bytes: u64,
    /// The static planner's arena promise at session build (`0` with the
    /// arena off); `peak_value_bytes` must never exceed it.
    planned_peak_bytes: u64,
    /// Whether tensor storage was served from the planned arena.
    arena: bool,
    threads: usize,
}

/// Measured-peak comparison against the committed PR 7 baseline.
#[derive(Serialize)]
struct PeakReductionRow {
    model: String,
    pr7_peak_bytes: u64,
    peak_value_bytes: u64,
    /// `pr7 / now` — above 1.0 means the planned executor peaks lower
    /// than the PR 7 heap executor on the same workload.
    reduction: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// Snapshot schema marker (`pr8-memory-planner`; same shape as the
    /// PR 7 `pr7-total-lowering` snapshot, with per-row arena/planned
    /// fields and the comparison section re-baselined on measured peaks
    /// from `BENCH_PR7.json`).
    schema: String,
    /// True when sizes were shrunk by `GNNOPT_SMOKE=1`.
    smoke: bool,
    /// Worker pool the auto-thread step rows ran under.
    auto_threads: usize,
    gemm: Vec<GemmRow>,
    /// Single-thread blocked-vs-naive GFLOP/s ratio on the square case.
    gemm_speedup: f64,
    /// Arena-on rows at auto threads (comparable to the PR 7 artifact,
    /// which predates the arena), then arena-on pinned to 4 workers,
    /// then an arena-off control set at auto threads; the `arena` and
    /// `threads` fields tell them apart.
    steps: Vec<StepRow>,
    /// Measured-peak reduction vs the committed `BENCH_PR7.json` blocked
    /// rows (auto threads — the *first* blocked row per model); empty
    /// when the baseline file is absent or unreadable.
    peak_reduction_vs_pr7: Vec<PeakReductionRow>,
}

/// Measures one model under both engines via the shared
/// interleaved-minimum harness and renders the two rows.
fn measure_steps(
    name: &str,
    spec: &ModelSpec,
    graph: &Graph,
    threads: usize,
    arena: bool,
) -> Vec<StepRow> {
    let best =
        measure_steps_interleaved_arena(spec, graph, smoke_scale(4, 1), threads, Some(arena));
    GEMM_KERNELS
        .into_iter()
        .zip(best)
        .map(|(kernel, run)| StepRow {
            model: name.to_owned(),
            kernel: format!("{kernel:?}"),
            forward_ms: run.forward_seconds * 1e3,
            backward_ms: run.backward_seconds * 1e3,
            step_ms: (run.forward_seconds + run.backward_seconds) * 1e3,
            peak_value_bytes: run.peak_value_bytes,
            planned_peak_bytes: run.planned_peak_bytes,
            arena: run.arena,
            threads: run.threads,
        })
        .collect()
}

/// Field lookup on the vendored `serde::Value` object tree.
fn field<'v>(v: &'v serde::Value, key: &str) -> Option<&'v serde::Value> {
    v.as_object()?
        .iter()
        .find_map(|(k, val)| (k == key).then_some(val))
}

fn as_u64(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::Int(i) => u64::try_from(*i).ok(),
        serde::Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// PR 7 blocked-engine measured peak bytes per model, from the committed
/// baseline artifact — the first blocked row per model, i.e. the
/// auto-thread measurement (the pinned 4-thread rows repeat the model
/// names later in the array). `None` when the file is missing or its
/// shape is unexpected — the snapshot still writes, just without the
/// comparison section.
fn pr7_peak_bytes(path: &std::path::Path) -> Option<std::collections::HashMap<String, u64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde::Value = serde_json::from_str(&text).ok()?;
    let serde::Value::Array(rows) = field(&v, "steps")? else {
        return None;
    };
    let mut by_model = std::collections::HashMap::new();
    for row in rows {
        if field(row, "kernel")?.as_str()? != "Blocked" {
            continue;
        }
        let model = field(row, "model")?.as_str()?.to_owned();
        let bytes = as_u64(field(row, "peak_value_bytes")?)?;
        by_model.entry(model).or_insert(bytes);
    }
    Some(by_model)
}

fn main() {
    let d = smoke_scale(256usize, 64);
    let reps = smoke_scale(10u32, 2);
    let by_kernel = measure_gemm_single_thread(d, reps);
    let gemm_rows: Vec<GemmRow> = GEMM_KERNELS
        .into_iter()
        .zip(by_kernel)
        .map(|(kernel, gflops)| GemmRow {
            kernel: format!("{kernel:?}"),
            m: d,
            k: d,
            n: d,
            gflops,
        })
        .collect();

    let (_, graph, models) = compute_engine_workloads();
    let mut steps = Vec::new();
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph, 0, true));
    }
    let auto_rows = steps.len();
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph, 4, true));
    }
    // Arena-off control: same workloads, plain heap, auto threads.
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph, 0, false));
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = pr7_peak_bytes(&root.join("BENCH_PR7.json")).unwrap_or_default();
    let peak_reduction_vs_pr7: Vec<PeakReductionRow> = steps[..auto_rows]
        .iter()
        .filter(|r| r.kernel == "Blocked")
        .filter_map(|r| {
            let pr7 = *baseline.get(&r.model)?;
            Some(PeakReductionRow {
                model: r.model.clone(),
                pr7_peak_bytes: pr7,
                peak_value_bytes: r.peak_value_bytes,
                reduction: pr7 as f64 / r.peak_value_bytes as f64,
            })
        })
        .collect();

    let snapshot = Snapshot {
        schema: "pr8-memory-planner".to_owned(),
        smoke: smoke(),
        auto_threads: available_threads(),
        gemm: gemm_rows,
        gemm_speedup: by_kernel[1] / by_kernel[0],
        steps,
        peak_reduction_vs_pr7,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    println!("{json}");
    // Smoke numbers are a schema check, not a measurement: never let a
    // CI/dev smoke run clobber the committed reference-container
    // artifact.
    if smoke() {
        eprintln!("smoke mode: not overwriting BENCH_PR8.json");
    } else {
        // Anchor at the workspace root (two levels above this crate's
        // manifest), not the invoking cwd, so a refreshed measurement
        // always replaces the tracked artifact.
        let path = root.join("BENCH_PR8.json");
        std::fs::write(&path, &json).expect("BENCH_PR8.json writes");
        eprintln!("wrote {}", path.display());
    }
}

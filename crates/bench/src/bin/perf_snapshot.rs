//! Machine-readable performance snapshot: measures the compute engine
//! (GEMM GFLOP/s per kernel), a real GAT training step per engine — at
//! the auto-detected pool size and pinned to 4 workers — and the
//! session's peak value bytes, then writes `BENCH_PR7.json` so the perf
//! trajectory is tracked as a diffable artifact (PR 5 wrote
//! `BENCH_PR5.json`, PR 6 `BENCH_PR6.json`; later PRs append
//! `BENCH_PR<N>.json` files of the same shape).
//!
//! The snapshot also reads the committed `BENCH_PR6.json` (when present)
//! and reports the backward-phase speedup of the total-lowering engine
//! over the PR 6 baseline, per model, on the blocked-GEMM auto-thread
//! rows — the regression guard for retiring the fusion fallbacks.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin perf_snapshot`;
//! `GNNOPT_SMOKE=1` shrinks every workload to CI scale and skips the
//! file write (the numbers are then only a schema check, not a
//! measurement — they must not clobber the committed artifact).

use gnnopt_bench::{
    compute_engine_workloads, measure_gemm_single_thread, measure_steps_interleaved_threads, smoke,
    smoke_scale, GEMM_KERNELS,
};
use gnnopt_graph::Graph;
use gnnopt_models::ModelSpec;
use gnnopt_tensor::parallel::available_threads;
use serde::Serialize;

/// One GEMM measurement row.
#[derive(Serialize)]
struct GemmRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    gflops: f64,
}

/// One end-to-end training-step measurement row.
#[derive(Serialize)]
struct StepRow {
    model: String,
    kernel: String,
    forward_ms: f64,
    backward_ms: f64,
    step_ms: f64,
    peak_value_bytes: u64,
    threads: usize,
}

/// Backward-phase comparison against the committed PR 6 baseline.
#[derive(Serialize)]
struct BackwardSpeedupRow {
    model: String,
    pr6_backward_ms: f64,
    backward_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// Snapshot schema marker (`pr7-total-lowering`; same shape as the
    /// PR 6 `pr6-sparse-kernel-engine` snapshot, with the speedup
    /// section re-baselined on `BENCH_PR6.json`).
    schema: String,
    /// True when sizes were shrunk by `GNNOPT_SMOKE=1`.
    smoke: bool,
    /// Worker pool the auto-thread step rows ran under.
    auto_threads: usize,
    gemm: Vec<GemmRow>,
    /// Single-thread blocked-vs-naive GFLOP/s ratio on the square case.
    gemm_speedup: f64,
    /// Auto-thread rows (comparable to the PR 5 artifact) followed by
    /// rows pinned to 4 workers; the `threads` field tells them apart.
    steps: Vec<StepRow>,
    /// Backward-phase speedup vs the committed `BENCH_PR6.json` blocked
    /// rows (auto threads — the *first* blocked row per model); empty
    /// when the baseline file is absent or unreadable.
    backward_speedup_vs_pr6: Vec<BackwardSpeedupRow>,
}

/// Measures one model under both engines via the shared
/// interleaved-minimum harness and renders the two rows.
fn measure_steps(name: &str, spec: &ModelSpec, graph: &Graph, threads: usize) -> Vec<StepRow> {
    let best = measure_steps_interleaved_threads(spec, graph, smoke_scale(4, 1), threads);
    GEMM_KERNELS
        .into_iter()
        .zip(best)
        .map(|(kernel, run)| StepRow {
            model: name.to_owned(),
            kernel: format!("{kernel:?}"),
            forward_ms: run.forward_seconds * 1e3,
            backward_ms: run.backward_seconds * 1e3,
            step_ms: (run.forward_seconds + run.backward_seconds) * 1e3,
            peak_value_bytes: run.peak_value_bytes,
            threads: run.threads,
        })
        .collect()
}

/// Field lookup on the vendored `serde::Value` object tree.
fn field<'v>(v: &'v serde::Value, key: &str) -> Option<&'v serde::Value> {
    v.as_object()?
        .iter()
        .find_map(|(k, val)| (k == key).then_some(val))
}

fn as_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Int(i) => Some(*i as f64),
        serde::Value::UInt(u) => Some(*u as f64),
        serde::Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// PR 6 blocked-engine backward milliseconds per model, from the
/// committed baseline artifact — the first blocked row per model, i.e.
/// the auto-thread measurement (the pinned 4-thread rows repeat the
/// model names later in the array). `None` when the file is missing or
/// its shape is unexpected — the snapshot still writes, just without
/// the comparison section.
fn pr6_backward_ms(path: &std::path::Path) -> Option<std::collections::HashMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde::Value = serde_json::from_str(&text).ok()?;
    let serde::Value::Array(rows) = field(&v, "steps")? else {
        return None;
    };
    let mut by_model = std::collections::HashMap::new();
    for row in rows {
        if field(row, "kernel")?.as_str()? != "Blocked" {
            continue;
        }
        let model = field(row, "model")?.as_str()?.to_owned();
        let ms = as_f64(field(row, "backward_ms")?)?;
        by_model.entry(model).or_insert(ms);
    }
    Some(by_model)
}

fn main() {
    let d = smoke_scale(256usize, 64);
    let reps = smoke_scale(10u32, 2);
    let by_kernel = measure_gemm_single_thread(d, reps);
    let gemm_rows: Vec<GemmRow> = GEMM_KERNELS
        .into_iter()
        .zip(by_kernel)
        .map(|(kernel, gflops)| GemmRow {
            kernel: format!("{kernel:?}"),
            m: d,
            k: d,
            n: d,
            gflops,
        })
        .collect();

    let (_, graph, models) = compute_engine_workloads();
    let mut steps = Vec::new();
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph, 0));
    }
    let auto_rows = steps.len();
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph, 4));
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = pr6_backward_ms(&root.join("BENCH_PR6.json")).unwrap_or_default();
    let backward_speedup_vs_pr6: Vec<BackwardSpeedupRow> = steps[..auto_rows]
        .iter()
        .filter(|r| r.kernel == "Blocked")
        .filter_map(|r| {
            let pr6 = *baseline.get(&r.model)?;
            Some(BackwardSpeedupRow {
                model: r.model.clone(),
                pr6_backward_ms: pr6,
                backward_ms: r.backward_ms,
                speedup: pr6 / r.backward_ms,
            })
        })
        .collect();

    let snapshot = Snapshot {
        schema: "pr7-total-lowering".to_owned(),
        smoke: smoke(),
        auto_threads: available_threads(),
        gemm: gemm_rows,
        gemm_speedup: by_kernel[1] / by_kernel[0],
        steps,
        backward_speedup_vs_pr6,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    println!("{json}");
    // Smoke numbers are a schema check, not a measurement: never let a
    // CI/dev smoke run clobber the committed reference-container
    // artifact.
    if smoke() {
        eprintln!("smoke mode: not overwriting BENCH_PR7.json");
    } else {
        // Anchor at the workspace root (two levels above this crate's
        // manifest), not the invoking cwd, so a refreshed measurement
        // always replaces the tracked artifact.
        let path = root.join("BENCH_PR7.json");
        std::fs::write(&path, &json).expect("BENCH_PR7.json writes");
        eprintln!("wrote {}", path.display());
    }
}

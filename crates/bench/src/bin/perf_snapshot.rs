//! Machine-readable performance snapshot: measures the compute engine
//! (GEMM GFLOP/s per kernel), a real GAT training step per engine, and
//! the session's peak value bytes, then writes `BENCH_PR5.json` so the
//! perf trajectory is tracked as a diffable artifact from PR 5 onward
//! (later PRs append `BENCH_PR<N>.json` files of the same shape).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin perf_snapshot`;
//! `GNNOPT_SMOKE=1` shrinks every workload to CI scale and skips the
//! file write (the numbers are then only a schema check, not a
//! measurement — they must not clobber the committed artifact).

use gnnopt_bench::{
    compute_engine_workloads, measure_gemm_single_thread, measure_steps_interleaved, smoke,
    smoke_scale, GEMM_KERNELS,
};
use gnnopt_graph::Graph;
use gnnopt_models::ModelSpec;
use gnnopt_tensor::parallel::available_threads;
use serde::Serialize;

/// One GEMM measurement row.
#[derive(Serialize)]
struct GemmRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    gflops: f64,
}

/// One end-to-end training-step measurement row.
#[derive(Serialize)]
struct StepRow {
    model: String,
    kernel: String,
    forward_ms: f64,
    backward_ms: f64,
    step_ms: f64,
    peak_value_bytes: u64,
    threads: usize,
}

#[derive(Serialize)]
struct Snapshot {
    /// Snapshot schema marker (`pr5-compute-engine`).
    schema: String,
    /// True when sizes were shrunk by `GNNOPT_SMOKE=1`.
    smoke: bool,
    /// Worker pool the step rows ran under.
    auto_threads: usize,
    gemm: Vec<GemmRow>,
    /// Single-thread blocked-vs-naive GFLOP/s ratio on the square case.
    gemm_speedup: f64,
    steps: Vec<StepRow>,
}

/// Measures one model under both engines via the shared
/// interleaved-minimum harness (`gnnopt_bench::measure_steps_interleaved`)
/// and renders the two rows.
fn measure_steps(name: &str, spec: &ModelSpec, graph: &Graph) -> Vec<StepRow> {
    let best = measure_steps_interleaved(spec, graph, smoke_scale(4, 1));
    GEMM_KERNELS
        .into_iter()
        .zip(best)
        .map(|(kernel, run)| StepRow {
            model: name.to_owned(),
            kernel: format!("{kernel:?}"),
            forward_ms: run.forward_seconds * 1e3,
            backward_ms: run.backward_seconds * 1e3,
            step_ms: (run.forward_seconds + run.backward_seconds) * 1e3,
            peak_value_bytes: run.peak_value_bytes,
            threads: run.threads,
        })
        .collect()
}

fn main() {
    let d = smoke_scale(256usize, 64);
    let reps = smoke_scale(10u32, 2);
    let by_kernel = measure_gemm_single_thread(d, reps);
    let gemm_rows: Vec<GemmRow> = GEMM_KERNELS
        .into_iter()
        .zip(by_kernel)
        .map(|(kernel, gflops)| GemmRow {
            kernel: format!("{kernel:?}"),
            m: d,
            k: d,
            n: d,
            gflops,
        })
        .collect();

    let (_, graph, models) = compute_engine_workloads();
    let mut steps = Vec::new();
    for (name, spec) in &models {
        steps.extend(measure_steps(name, spec, &graph));
    }

    let snapshot = Snapshot {
        schema: "pr5-compute-engine".to_owned(),
        smoke: smoke(),
        auto_threads: available_threads(),
        gemm: gemm_rows,
        gemm_speedup: by_kernel[1] / by_kernel[0],
        steps,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    println!("{json}");
    // Smoke numbers are a schema check, not a measurement: never let a
    // CI/dev smoke run clobber the committed reference-container
    // artifact.
    if smoke() {
        eprintln!("smoke mode: not overwriting BENCH_PR5.json");
    } else {
        // Anchor at the workspace root (two levels above this crate's
        // manifest), not the invoking cwd, so a refreshed measurement
        // always replaces the tracked artifact.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
        std::fs::write(&path, &json).expect("BENCH_PR5.json writes");
        eprintln!("wrote {}", path.display());
    }
}

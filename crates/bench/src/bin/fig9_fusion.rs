//! Figure 9: ablation of unified-thread-mapping fusion (§5) — forward
//! pass, reorganization enabled on both sides, fusion off vs unified.
//! Paper result: 1.68× latency, 1.16× IO (up to 5.45×), 4.92× memory on
//! average across GAT / EdgeConv / MoNet.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig9_fusion`.

use gnnopt_bench::{
    edgeconv_workload, gat_ablation, monet_ablation, print_normalized, run_variant,
};
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn variant(fusion: FusionLevel) -> CompileOptions {
    CompileOptions {
        reorg: true,
        fusion,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto(),
    }
}

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 9 — unified-thread-mapping fusion ablation, forward pass ({})",
        device.name
    );

    let workloads = vec![
        (
            "GAT h=4 f=64 / Reddit",
            gat_ablation(&datasets::reddit(), false).expect("gat"),
        ),
        (
            "EdgeConv f=64 k=40 b=64",
            edgeconv_workload(40, 64, &EdgeConvConfig::ablation()).expect("edgeconv"),
        ),
        (
            "MoNet k=2 r=1 f=16 / Reddit",
            monet_ablation(&datasets::reddit()).expect("monet"),
        ),
    ];

    for (title, wl) in workloads {
        // "Unfused" keeps the standard built-in fused kernels (DGL's
        // gSpMM / edge-softmax) — the paper's system extends DGL, so its
        // fusion ablation disables only the *unified* fusion.
        let rows = vec![
            run_variant(
                "unfused",
                &wl.ir,
                &wl.stats,
                &variant(FusionLevel::DglBuiltin),
                false,
                &device,
            )
            .expect("unfused"),
            run_variant(
                "fused",
                &wl.ir,
                &wl.stats,
                &variant(FusionLevel::Unified),
                false,
                &device,
            )
            .expect("fused"),
        ];
        print_normalized(title, &rows);
    }
}

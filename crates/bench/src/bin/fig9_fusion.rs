//! Figure 9: ablation of unified-thread-mapping fusion (§5) — forward
//! pass, reorganization enabled on both sides, fusion off vs unified.
//! Paper result: 1.68× latency, 1.16× IO (up to 5.45×), 4.92× memory on
//! average across GAT / EdgeConv / MoNet.
//!
//! Plus a *measured* section: the same fused plan executed on the real
//! CPU through the reference node-by-node path vs the tiled fused
//! interpreter (`ExecPolicy::fused`) — wall-clock and true `peak_value_bytes`,
//! demonstrating fusion realized on hardware rather than only in the
//! analytical model. Both sides produce bit-identical numbers.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig9_fusion`.

use gnnopt_bench::{
    edgeconv_workload, gat_ablation, gib, monet_ablation, print_normalized, run_real_fused,
    run_variant, smoke_scale,
};
use gnnopt_core::{CompileOptions, ExecPolicy, FusionLevel, RecomputeScope};
use gnnopt_graph::{datasets, generators, Graph};
use gnnopt_models::{gat, EdgeConvConfig, GatConfig};
use gnnopt_sim::Device;

fn variant(fusion: FusionLevel) -> CompileOptions {
    CompileOptions {
        reorg: true,
        fusion,
        mapping: Default::default(),
        recompute: RecomputeScope::None,
        recompute_threshold: 16.0,
        exec: ExecPolicy::auto().with_fused(true),
    }
}

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 9 — unified-thread-mapping fusion ablation, forward pass ({})",
        device.name
    );

    let workloads = vec![
        (
            "GAT h=4 f=64 / Reddit",
            gat_ablation(&datasets::reddit(), false).expect("gat"),
        ),
        (
            "EdgeConv f=64 k=40 b=64",
            edgeconv_workload(40, 64, &EdgeConvConfig::ablation()).expect("edgeconv"),
        ),
        (
            "MoNet k=2 r=1 f=16 / Reddit",
            monet_ablation(&datasets::reddit()).expect("monet"),
        ),
    ];

    for (title, wl) in workloads {
        // "Unfused" keeps the standard built-in fused kernels (DGL's
        // gSpMM / edge-softmax) — the paper's system extends DGL, so its
        // fusion ablation disables only the *unified* fusion.
        let rows = vec![
            run_variant(
                "unfused",
                &wl.ir,
                &wl.stats,
                &variant(FusionLevel::DglBuiltin),
                false,
                &device,
            )
            .expect("unfused"),
            run_variant(
                "fused",
                &wl.ir,
                &wl.stats,
                &variant(FusionLevel::Unified),
                false,
                &device,
            )
            .expect("fused"),
        ];
        print_normalized(title, &rows);
    }

    measured_fused_exec_section();
}

/// Real CPU execution of one GAT training step on an RMAT-14 graph
/// (~262k edges): the same unified-fusion plan, run through the
/// materializing reference executor vs the tiled fused interpreter.
fn measured_fused_exec_section() {
    let scale = smoke_scale(14u32, 8);
    let graph = Graph::from_edge_list(&generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(4, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let opts = CompileOptions::ours();
    println!(
        "\n# Measured fused execution — GAT training step, RMAT-{scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>13} {:>12} {:>9}",
        "executor", "fwd (s)", "bwd (s)", "peak (GiB)", "planned(GiB)", "scratch(MiB)", "kernels"
    );
    // Warmup pays one-time allocation/page-in costs outside the timings.
    run_real_fused(&spec, &graph, &opts, 0, true, 11, false).expect("warmup");
    let mut peaks = (0u64, 0u64);
    for (label, fused) in [("reference", false), ("fused", true)] {
        let s = run_real_fused(&spec, &graph, &opts, 0, true, 11, fused).expect("step runs");
        // The static memory planner's promise next to reality: measured
        // peak must sit at or below the planned arena on every row.
        assert!(
            s.planned_peak_bytes == 0 || s.peak_value_bytes <= s.planned_peak_bytes,
            "{label}: measured peak {} exceeds planned {}",
            s.peak_value_bytes,
            s.planned_peak_bytes
        );
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>12.4} {:>13.4} {:>12.2} {:>9}",
            label,
            s.forward_seconds,
            s.backward_seconds,
            gib(s.peak_value_bytes),
            gib(s.planned_peak_bytes),
            s.scratch_bytes as f64 / (1u64 << 20) as f64,
            s.fused_kernels,
        );
        if fused {
            peaks.1 = s.peak_value_bytes;
        } else {
            peaks.0 = s.peak_value_bytes;
        }
    }
    println!(
        "peak reduction: {:.2}x (outputs and gradients are bit-identical)",
        peaks.0 as f64 / peaks.1 as f64
    );
}

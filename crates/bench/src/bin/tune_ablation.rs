//! Mapping-policy ablation with the §5 profiling alternative: static
//! Auto / ForceVertex / ForceEdge policies, each followed by the
//! profile-driven autotuner (`gnnopt_core::tune`), on a skewed graph
//! (Reddit) and a regular one (EdgeConv kNN).
//!
//! The paper: *"In general, we can select between vertex-balanced or
//! edge-balanced mapping based on performance profiling."* The tuner must
//! never lose to its starting policy, and it should repair a bad static
//! choice (ForceEdge on softmax-free kernels, ForceVertex on skew) up to
//! the best static row. Kernels containing an edge-softmax stay pinned
//! vertex-balanced, so GAT's fused kernels report 0 considered.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin tune_ablation`.

use gnnopt_bench::{edgeconv_workload, gat_ablation};
use gnnopt_core::fusion::MappingPolicy;
use gnnopt_core::{autotune_mappings, compile, CompileOptions};
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn main() {
    let device = Device::rtx3090();
    println!("# Mapping-policy ablation, training step ({})", device.name);
    let ds = gnnopt_bench::smoke_scale(
        gnnopt_graph::datasets::reddit(),
        gnnopt_graph::datasets::pubmed(),
    );
    let workloads = vec![
        (
            "GAT h=4 f=64 (skewed)",
            gat_ablation(&ds, false).expect("gat"),
        ),
        (
            "EdgeConv f=64 k=40 (regular)",
            edgeconv_workload(
                40,
                gnnopt_bench::smoke_scale(64, 8),
                &EdgeConvConfig::ablation(),
            )
            .expect("edgeconv"),
        ),
    ];
    for (title, wl) in workloads {
        println!("\n== {title} ==");
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            "start policy", "static(ms)", "tuned(ms)", "re-mapped"
        );
        let mut best_static = f64::INFINITY;
        let mut best_tuned = f64::INFINITY;
        for (name, policy) in [
            ("auto", MappingPolicy::Auto),
            ("force-vertex", MappingPolicy::ForceVertex),
            ("force-edge", MappingPolicy::ForceEdge),
        ] {
            let opts = CompileOptions {
                mapping: policy,
                ..CompileOptions::ours()
            };
            let mut plan = compile(&wl.ir, true, &opts).expect("compiles").plan;
            let static_lat = plan.exec_stats(&device, &wl.stats).latency;
            let report = autotune_mappings(&mut plan, &device, &wl.stats);
            let tuned_lat = plan.exec_stats(&device, &wl.stats).latency;
            assert!(
                tuned_lat <= static_lat * 1.0001,
                "the tuner must never lose to its starting policy"
            );
            best_static = best_static.min(static_lat);
            best_tuned = best_tuned.min(tuned_lat);
            println!(
                "{:<14} {:>12.3} {:>12.3} {:>9}/{}",
                name,
                static_lat * 1e3,
                tuned_lat * 1e3,
                report.switched,
                report.considered,
            );
        }
        assert!(
            best_tuned <= best_static * 1.0001,
            "tuning must reach the best static configuration"
        );
    }
}

//! Figure 7: end-to-end training performance of GAT / EdgeConv / MoNet on
//! the four node-classification datasets (and the ModelNet40 sweep for
//! EdgeConv), normalized to DGL, on the RTX 3090 model — plus a real CPU
//! serial-vs-parallel scaling section on a million-edge graph
//! (`ExecPolicy` thread sweep; override the auto pool with
//! `GNNOPT_THREADS`).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig7_end2end`.

use gnnopt_bench::{
    compute_engine_workloads, edgeconv_workload, figure7_systems, gat_figure7,
    measure_gemm_single_thread, measure_steps_interleaved, monet_figure7, print_normalized,
    run_real, run_variant, smoke, smoke_scale, with_real_run, GEMM_KERNELS,
};
use gnnopt_core::{CompileOptions, GemmKernel};
use gnnopt_graph::{datasets, generators, Graph};
use gnnopt_models::{gat, EdgeConvConfig, GatConfig};
use gnnopt_sim::Device;
use gnnopt_tensor::parallel::available_threads;

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 7 — end-to-end training, normalized to DGL ({})",
        device.name
    );

    // GAT: 2 × 128 hidden. DGL/fuseGNN run the hand-reorganized attention
    // from DGL's model zoo; "Ours" starts naive and relies on the pass.
    // GNNOPT_SMOKE=1 keeps one dataset and one sweep point per section.
    let mut figure7 = datasets::figure7_datasets();
    if smoke() {
        figure7.truncate(1);
    }
    for ds in figure7.clone() {
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            let wl = gat_figure7(&ds, label != "Ours").expect("gat workload");
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&format!("GAT / {}", ds.name), &rows);
    }

    // EdgeConv sweep: k ∈ {20, 40} × batch ∈ {32, 64}; fuseGNN does not
    // implement EdgeConv (§7.1.2), so only DGL vs Ours.
    for k in smoke_scale(vec![20, 40], vec![20]) {
        for batch in smoke_scale(vec![32, 64], vec![32]) {
            let wl = edgeconv_workload(k, batch, &EdgeConvConfig::paper()).expect("workload");
            let mut rows = Vec::new();
            for (label, opts) in figure7_systems() {
                if label == "fuseGNN" {
                    continue;
                }
                rows.push(
                    run_variant(label, &wl.ir, &wl.stats, &opts, true, &device)
                        .expect("variant runs"),
                );
            }
            print_normalized(&wl.name, &rows);
        }
    }

    // MoNet: 2 × 16 hidden with per-dataset (K, r); DGL vs Ours.
    for ds in figure7 {
        let wl = monet_figure7(&ds).expect("workload");
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            if label == "fuseGNN" {
                continue;
            }
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&wl.name, &rows);
    }

    real_scaling_section();
    compute_engine_section();
}

/// Real CPU execution of a GAT training step on a ≥1M-edge RMAT graph,
/// swept over executor thread counts: the "fast as the hardware allows"
/// axis the analytic model cannot show. The parallel backend is
/// bit-identical to serial, so the sweep only measures time.
fn real_scaling_section() {
    // RMAT scale 16 × edge factor 16 ≈ 1.05 M edges (scale 8 in smoke).
    let scale = smoke_scale(16u32, 8);
    let graph = Graph::from_edge_list(&generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    println!(
        "\n# Real CPU execution — GAT training step, RMAT-{scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "threads", "fwd (s)", "bwd (s)", "wall (s)", "speedup"
    );
    // The analytic record for the same workload; each measured run is
    // folded in so the report row carries its input (cpu_threads)
    // alongside the measurement (wall_seconds).
    let analytic = run_variant(
        "Ours",
        &spec.ir,
        &graph.stats(),
        &CompileOptions::ours(),
        true,
        &Device::rtx3090(),
    )
    .expect("analytic record");
    let auto = available_threads();
    let mut sweep = smoke_scale(vec![1, 2, 4], vec![1, 2]);
    if !smoke() && !sweep.contains(&auto) {
        sweep.push(auto);
    }
    // Warmup: pay one-time allocation/page-in costs outside the sweep so
    // the serial baseline is not inflated.
    run_real(&spec, &graph, &CompileOptions::ours(), 1, true, 11).expect("warmup run");
    let mut serial_total = 0.0f64;
    for threads in sweep {
        let run = run_real(&spec, &graph, &CompileOptions::ours(), threads, true, 11)
            .expect("real run compiles");
        let stats = with_real_run(analytic.stats, &run);
        if threads == 1 {
            serial_total = stats.wall_seconds;
        }
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>9.2}x",
            stats.cpu_threads,
            run.forward_seconds,
            run.backward_seconds,
            stats.wall_seconds,
            serial_total / stats.wall_seconds,
        );
    }
}

/// Measured single-thread GEMM throughput (naive ikj vs the register-tiled
/// blocked engine) plus real GAT/GCN training steps on a million-edge RMAT
/// graph under each engine. Both engines are bit-identical; the section
/// reports the time the blocked microkernel buys on the paper's
/// compute-bound combination phase.
fn compute_engine_section() {
    println!(
        "\n# Compute engine — naive vs blocked GEMM (single-thread microkernel, then end-to-end)"
    );
    let d = smoke_scale(256usize, 64);
    let reps = smoke_scale(10u32, 2);
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "kernel", "size", "GFLOP/s", "speedup"
    );
    // Shared harness: worker count pinned to 1, zero-free operands,
    // interleaved minima (see `gnnopt_bench::measure_gemm_single_thread`).
    let gemm_kernels = GEMM_KERNELS;
    let by_kernel = measure_gemm_single_thread(d, reps);
    let mut naive_gflops = 0.0f64;
    for (kernel, gflops) in gemm_kernels.into_iter().zip(by_kernel) {
        if kernel == GemmKernel::Naive {
            naive_gflops = gflops;
        }
        println!(
            "{:>10} {:>10} {:>12.2} {:>9.2}x",
            format!("{kernel:?}"),
            format!("{d}^3"),
            gflops,
            gflops / naive_gflops,
        );
    }

    // End-to-end: one real training step per engine — the shared PR 5
    // compute-engine workload (same definition as perf_snapshot), auto
    // threads, fused executor.
    let (scale, graph, models) = compute_engine_workloads();
    println!(
        "\n# Training step on RMAT-{scale} ({} vertices, {} edges), auto threads",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "model", "kernel", "fwd (ms)", "bwd (ms)", "step (ms)", "speedup"
    );
    let kernels = GEMM_KERNELS;
    for (name, spec) in &models {
        // Shared interleaved-minimum harness (one warmup per engine, then
        // alternating reps, fastest run kept per engine).
        let best = measure_steps_interleaved(spec, &graph, smoke_scale(4, 1));
        let mut naive_ms = 0.0f64;
        for (kernel, run) in kernels.into_iter().zip(best) {
            let step_ms = (run.forward_seconds + run.backward_seconds) * 1e3;
            if kernel == GemmKernel::Naive {
                naive_ms = step_ms;
            }
            println!(
                "{:>8} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x",
                name,
                format!("{kernel:?}"),
                run.forward_seconds * 1e3,
                run.backward_seconds * 1e3,
                step_ms,
                naive_ms / step_ms,
            );
        }
    }
}

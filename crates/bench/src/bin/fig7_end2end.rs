//! Figure 7: end-to-end training performance of GAT / EdgeConv / MoNet on
//! the four node-classification datasets (and the ModelNet40 sweep for
//! EdgeConv), normalized to DGL, on the RTX 3090 model — plus a real CPU
//! serial-vs-parallel scaling section on a million-edge graph
//! (`ExecPolicy` thread sweep; override the auto pool with
//! `GNNOPT_THREADS`).
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig7_end2end`.

use gnnopt_bench::{
    edgeconv_workload, figure7_systems, gat_figure7, monet_figure7, print_normalized, run_real,
    run_variant, smoke, smoke_scale, with_real_run,
};
use gnnopt_core::CompileOptions;
use gnnopt_graph::{datasets, generators, Graph};
use gnnopt_models::{gat, EdgeConvConfig, GatConfig};
use gnnopt_sim::Device;
use gnnopt_tensor::parallel::available_threads;

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 7 — end-to-end training, normalized to DGL ({})",
        device.name
    );

    // GAT: 2 × 128 hidden. DGL/fuseGNN run the hand-reorganized attention
    // from DGL's model zoo; "Ours" starts naive and relies on the pass.
    // GNNOPT_SMOKE=1 keeps one dataset and one sweep point per section.
    let mut figure7 = datasets::figure7_datasets();
    if smoke() {
        figure7.truncate(1);
    }
    for ds in figure7.clone() {
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            let wl = gat_figure7(&ds, label != "Ours").expect("gat workload");
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&format!("GAT / {}", ds.name), &rows);
    }

    // EdgeConv sweep: k ∈ {20, 40} × batch ∈ {32, 64}; fuseGNN does not
    // implement EdgeConv (§7.1.2), so only DGL vs Ours.
    for k in smoke_scale(vec![20, 40], vec![20]) {
        for batch in smoke_scale(vec![32, 64], vec![32]) {
            let wl = edgeconv_workload(k, batch, &EdgeConvConfig::paper()).expect("workload");
            let mut rows = Vec::new();
            for (label, opts) in figure7_systems() {
                if label == "fuseGNN" {
                    continue;
                }
                rows.push(
                    run_variant(label, &wl.ir, &wl.stats, &opts, true, &device)
                        .expect("variant runs"),
                );
            }
            print_normalized(&wl.name, &rows);
        }
    }

    // MoNet: 2 × 16 hidden with per-dataset (K, r); DGL vs Ours.
    for ds in figure7 {
        let wl = monet_figure7(&ds).expect("workload");
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            if label == "fuseGNN" {
                continue;
            }
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&wl.name, &rows);
    }

    real_scaling_section();
}

/// Real CPU execution of a GAT training step on a ≥1M-edge RMAT graph,
/// swept over executor thread counts: the "fast as the hardware allows"
/// axis the analytic model cannot show. The parallel backend is
/// bit-identical to serial, so the sweep only measures time.
fn real_scaling_section() {
    // RMAT scale 16 × edge factor 16 ≈ 1.05 M edges (scale 8 in smoke).
    let scale = smoke_scale(16u32, 8);
    let graph = Graph::from_edge_list(&generators::rmat(scale, 16, 0.57, 0.19, 0.19, 7));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    println!(
        "\n# Real CPU execution — GAT training step, RMAT-{scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "threads", "fwd (s)", "bwd (s)", "wall (s)", "speedup"
    );
    // The analytic record for the same workload; each measured run is
    // folded in so the report row carries its input (cpu_threads)
    // alongside the measurement (wall_seconds).
    let analytic = run_variant(
        "Ours",
        &spec.ir,
        &graph.stats(),
        &CompileOptions::ours(),
        true,
        &Device::rtx3090(),
    )
    .expect("analytic record");
    let auto = available_threads();
    let mut sweep = smoke_scale(vec![1, 2, 4], vec![1, 2]);
    if !smoke() && !sweep.contains(&auto) {
        sweep.push(auto);
    }
    // Warmup: pay one-time allocation/page-in costs outside the sweep so
    // the serial baseline is not inflated.
    run_real(&spec, &graph, &CompileOptions::ours(), 1, true, 11).expect("warmup run");
    let mut serial_total = 0.0f64;
    for threads in sweep {
        let run = run_real(&spec, &graph, &CompileOptions::ours(), threads, true, 11)
            .expect("real run compiles");
        let stats = with_real_run(analytic.stats, &run);
        if threads == 1 {
            serial_total = stats.wall_seconds;
        }
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>9.2}x",
            stats.cpu_threads,
            run.forward_seconds,
            run.backward_seconds,
            stats.wall_seconds,
            serial_total / stats.wall_seconds,
        );
    }
}

//! Figure 7: end-to-end training performance of GAT / EdgeConv / MoNet on
//! the four node-classification datasets (and the ModelNet40 sweep for
//! EdgeConv), normalized to DGL, on the RTX 3090 model.
//!
//! Run with `cargo run --release -p gnnopt-bench --bin fig7_end2end`.

use gnnopt_bench::{
    edgeconv_workload, figure7_systems, gat_figure7, monet_figure7, print_normalized, run_variant,
};
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

fn main() {
    let device = Device::rtx3090();
    println!(
        "# Figure 7 — end-to-end training, normalized to DGL ({})",
        device.name
    );

    // GAT: 2 × 128 hidden. DGL/fuseGNN run the hand-reorganized attention
    // from DGL's model zoo; "Ours" starts naive and relies on the pass.
    for ds in datasets::figure7_datasets() {
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            let wl = gat_figure7(&ds, label != "Ours").expect("gat workload");
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&format!("GAT / {}", ds.name), &rows);
    }

    // EdgeConv sweep: k ∈ {20, 40} × batch ∈ {32, 64}; fuseGNN does not
    // implement EdgeConv (§7.1.2), so only DGL vs Ours.
    for k in [20, 40] {
        for batch in [32, 64] {
            let wl = edgeconv_workload(k, batch, &EdgeConvConfig::paper()).expect("workload");
            let mut rows = Vec::new();
            for (label, opts) in figure7_systems() {
                if label == "fuseGNN" {
                    continue;
                }
                rows.push(
                    run_variant(label, &wl.ir, &wl.stats, &opts, true, &device)
                        .expect("variant runs"),
                );
            }
            print_normalized(&wl.name, &rows);
        }
    }

    // MoNet: 2 × 16 hidden with per-dataset (K, r); DGL vs Ours.
    for ds in datasets::figure7_datasets() {
        let wl = monet_figure7(&ds).expect("workload");
        let mut rows = Vec::new();
        for (label, opts) in figure7_systems() {
            if label == "fuseGNN" {
                continue;
            }
            rows.push(
                run_variant(label, &wl.ir, &wl.stats, &opts, true, &device).expect("variant runs"),
            );
        }
        print_normalized(&wl.name, &rows);
    }
}

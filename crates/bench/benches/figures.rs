//! Criterion benches, one group per paper table/figure: each measures the
//! *compile + analytical evaluation* pipeline that regenerates the
//! corresponding figure, so `cargo bench` exercises every experiment's
//! code path and catches pipeline-level performance regressions.
//!
//! (The numbers the figures report come from the `fig7`–`fig11` binaries;
//! these benches time the machinery itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnopt_bench::{edgeconv_workload, gat_ablation, gat_figure7, monet_ablation, run_variant};
use gnnopt_core::{autotune_mappings, compile, CompileOptions, FusionLevel, RecomputeScope};
use gnnopt_graph::datasets;
use gnnopt_models::EdgeConvConfig;
use gnnopt_sim::Device;

/// Figure 7: end-to-end training, all three systems on GAT/Reddit.
fn bench_fig7_pipeline(c: &mut Criterion) {
    let device = Device::rtx3090();
    let wl = gat_figure7(&datasets::reddit(), false).expect("workload");
    let mut group = c.benchmark_group("fig7_end2end");
    for (name, opts) in [
        ("dgl", CompileOptions::dgl()),
        ("fusegnn", CompileOptions::fusegnn()),
        ("ours", CompileOptions::ours()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| run_variant(name, &wl.ir, &wl.stats, opts, true, &device).expect("variant"));
        });
    }
    group.finish();
}

/// Figure 8: reorganization pass on the naive GAT and EdgeConv IRs.
fn bench_fig8_reorg(c: &mut Criterion) {
    let gat_wl = gat_ablation(&datasets::pubmed(), false).expect("gat");
    let ec_wl = edgeconv_workload(40, 64, &EdgeConvConfig::ablation()).expect("edgeconv");
    let mut group = c.benchmark_group("fig8_reorg_pass");
    for (name, ir) in [("gat", &gat_wl.ir), ("edgeconv", &ec_wl.ir)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), ir, |b, ir| {
            b.iter(|| gnnopt_core::reorg::reorganize(ir).expect("reorganizes"));
        });
    }
    group.finish();
}

/// Figure 9: the fusion partitioner at each capability level.
fn bench_fig9_fusion(c: &mut Criterion) {
    let wl = gat_ablation(&datasets::reddit(), false).expect("gat");
    let compiled = compile(&wl.ir, true, &CompileOptions::ours()).expect("compiles");
    let mut group = c.benchmark_group("fig9_fusion_partition");
    for level in [
        FusionLevel::None,
        FusionLevel::DglBuiltin,
        FusionLevel::EdgeOnly,
        FusionLevel::Unified,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{level:?}")),
            &level,
            |b, &level| {
                b.iter(|| {
                    gnnopt_core::fusion::partition(&compiled.plan.ir, level, Default::default())
                });
            },
        );
    }
    group.finish();
}

/// Figure 10: the recomputation planner (stash-all vs recompute).
fn bench_fig10_recompute(c: &mut Criterion) {
    let wl = gat_ablation(&datasets::reddit(), false).expect("gat");
    let device = Device::rtx3090();
    let mut group = c.benchmark_group("fig10_recompute_plan");
    for (name, scope) in [
        ("stash_all", RecomputeScope::None),
        ("recompute", RecomputeScope::All),
    ] {
        let opts = CompileOptions {
            recompute: scope,
            ..CompileOptions::ours()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| run_variant(name, &wl.ir, &wl.stats, opts, true, &device).expect("variant"));
        });
    }
    group.finish();
}

/// Figure 11: the memory replay that decides fits-on-device.
fn bench_fig11_memory_replay(c: &mut Criterion) {
    let wl = monet_ablation(&datasets::reddit()).expect("monet");
    let mut group = c.benchmark_group("fig11_memory_replay");
    for (name, opts) in [
        ("dgl", CompileOptions::dgl()),
        ("ours", CompileOptions::ours()),
    ] {
        let plan = compile(&wl.ir, true, &opts).expect("compiles").plan;
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| plan.memory_replay(&wl.stats, u64::MAX).expect("replays"));
        });
    }
    group.finish();
}

/// Mapping autotuner (§5 profiling alternative).
fn bench_autotune(c: &mut Criterion) {
    let wl = gat_ablation(&datasets::reddit(), false).expect("gat");
    let device = Device::rtx3090();
    let plan = compile(&wl.ir, true, &CompileOptions::ours())
        .expect("compiles")
        .plan;
    c.bench_function("autotune_mappings", |b| {
        b.iter(|| {
            let mut p = plan.clone();
            autotune_mappings(&mut p, &device, &wl.stats)
        });
    });
}

criterion_group!(
    figures,
    bench_fig7_pipeline,
    bench_fig8_reorg,
    bench_fig9_fusion,
    bench_fig10_recompute,
    bench_fig11_memory_replay,
    bench_autotune,
);
criterion_main!(figures);

//! Criterion microbenchmarks: real CPU wall-clock of the reference
//! executor under each compilation strategy. Absolute times are
//! CPU-specific; the *relative* ordering (ours ≤ fuseGNN ≤ DGL in work
//! performed) mirrors the operator-count reductions of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnopt_core::{compile, CompileOptions, ExecPolicy, GemmKernel, Preset};
use gnnopt_exec::{Bindings, EnvOverrides, Session};
use gnnopt_graph::{generators, Graph};
use gnnopt_models::{edgeconv, gat, monet, EdgeConvConfig, GatConfig, MonetConfig};
use gnnopt_tensor::Tensor;

fn bindings_for(spec: &gnnopt_models::ModelSpec, graph: &Graph, seed: u64) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in spec.init_values(graph, seed) {
        b.insert(&k, v);
    }
    b
}

fn bench_presets(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::rmat(10, 16, 0.57, 0.19, 0.19, 3));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: false,
    })
    .expect("gat builds");
    let bindings = bindings_for(&spec, &graph, 5);

    let mut group = c.benchmark_group("gat_training_step");
    for preset in [Preset::Dgl, Preset::FuseGnn, Preset::Ours] {
        let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset)).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{preset:?}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let mut sess = Session::builder(&compiled.plan, &graph)
                        .build()
                        .expect("session");
                    let out = sess.forward(&bindings).expect("forward");
                    sess.backward(Tensor::ones(out[0].shape()))
                        .expect("backward")
                });
            },
        );
    }
    group.finish();
}

fn bench_reorg(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::erdos_renyi(2048, 2048 * 20, 9));
    let spec = edgeconv(&EdgeConvConfig {
        in_dim: 32,
        layer_dims: vec![32],
    })
    .expect("edgeconv builds");
    let bindings = bindings_for(&spec, &graph, 6);

    let mut group = c.benchmark_group("edgeconv_forward");
    for (label, reorg) in [("naive", false), ("reorganized", true)] {
        let opts = CompileOptions {
            reorg,
            ..CompileOptions::ours()
        };
        let compiled = compile(&spec.ir, false, &opts).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let mut sess = Session::builder(&compiled.plan, &graph)
                        .build()
                        .expect("session");
                    sess.forward(&bindings).expect("forward")
                });
            },
        );
    }
    group.finish();
}

fn bench_monet(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::rmat(10, 8, 0.57, 0.19, 0.19, 4));
    let spec = monet(&MonetConfig {
        in_dim: 16,
        layer_dims: vec![16],
        kernels: 2,
        pseudo_dim: 2,
    })
    .expect("monet builds");
    let bindings = bindings_for(&spec, &graph, 8);

    let mut group = c.benchmark_group("monet_training_step");
    for preset in [Preset::Dgl, Preset::Ours] {
        let compiled = compile(&spec.ir, true, &CompileOptions::preset(preset)).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{preset:?}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let mut sess = Session::builder(&compiled.plan, &graph)
                        .build()
                        .expect("session");
                    let out = sess.forward(&bindings).expect("forward");
                    sess.backward(Tensor::ones(out[0].shape()))
                        .expect("backward")
                });
            },
        );
    }
    group.finish();
}

/// Serial-vs-parallel scaling of the graph kernels themselves: the same
/// compiled GAT plan executed under `ExecPolicy` thread counts 1/2/4 on a
/// ~130 k-edge RMAT graph. On multi-core hosts the parallel rows must
/// drop below serial; results are bit-identical either way.
fn bench_thread_scaling(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::rmat(13, 16, 0.57, 0.19, 0.19, 5));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let bindings = bindings_for(&spec, &graph, 7);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let mut group = c.benchmark_group("gat_thread_scaling");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut sess = Session::builder(&compiled.plan, &graph)
                        .policy(ExecPolicy::with_threads(threads))
                        .env(EnvOverrides::Ignore)
                        .build()
                        .expect("session");
                    let out = sess.forward(&bindings).expect("forward");
                    sess.backward(Tensor::ones(out[0].shape()))
                        .expect("backward")
                });
            },
        );
    }
    group.finish();
}

/// Reference node-by-node execution vs the tiled fused interpreter on
/// the same compiled GAT plan: the wall-clock side of the realized fusion
/// (the memory side is `RunStats::peak_value_bytes`, asserted in
/// `tests/fused_exec.rs`). Results are bit-identical on both sides.
fn bench_fused_exec(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::rmat(13, 16, 0.57, 0.19, 0.19, 5));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let bindings = bindings_for(&spec, &graph, 7);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let mut group = c.benchmark_group("gat_fused_exec");
    for (label, fused) in [("reference", false), ("fused", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &fused, |b, &fused| {
            b.iter(|| {
                let mut sess = Session::builder(&compiled.plan, &graph)
                    .policy(ExecPolicy::auto())
                    .fused(fused)
                    .env(EnvOverrides::Off)
                    .build()
                    .expect("session");
                let out = sess.forward(&bindings).expect("forward");
                sess.backward(Tensor::ones(out[0].shape()))
                    .expect("backward")
            });
        });
    }
    group.finish();
}

/// Identity vs reordered session execution of the same compiled GAT plan
/// on a scrambled RMAT graph: the wall-clock side of runtime vertex
/// reordering (the locality side is the LRU proxy in `fig8_reorg`).
/// Sessions are prebuilt so the one-time permutation cost stays out of
/// the loop — that is precisely the amortization claim.
fn bench_reordered_exec(c: &mut Criterion) {
    let el = gnnopt_bench::scramble_ids(&generators::rmat(13, 16, 0.57, 0.19, 0.19, 5), 0x5eed);
    let graph = Graph::from_edge_list(&el);
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let bindings = bindings_for(&spec, &graph, 7);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let mut group = c.benchmark_group("gat_reordered_exec");
    for (label, reorder) in [
        ("identity", gnnopt_core::ReorderPolicy::None),
        ("rcm", gnnopt_core::ReorderPolicy::Rcm),
        ("cluster", gnnopt_core::ReorderPolicy::Cluster),
    ] {
        let mut sess = Session::builder(&compiled.plan, &graph)
            .policy(ExecPolicy::auto().reordered(reorder))
            .fused(true)
            .env(EnvOverrides::Off)
            .build()
            .expect("session");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                let out = sess.forward(&bindings).expect("forward");
                sess.backward(Tensor::ones(out[0].shape()))
                    .expect("backward")
            });
        });
    }
    group.finish();
}

/// Naive ikj loop vs the register-tiled blocked engine on the dense
/// products a GNN step actually issues: the forward projection (`Nn`),
/// the weight gradient (`Tn`, tall-k) and the input gradient (`Nt`).
/// The worker count is pinned to 1 through the low-level engine entry
/// (`Tensor::matmul` would auto-parallelize above its work threshold),
/// so the ratio is the microkernel's, not the pool's; results are
/// bit-identical, only time differs.
fn bench_gemm_blocked(c: &mut Criterion) {
    use gnnopt_tensor::gemm::{gemm, Layout};
    let mut group = c.benchmark_group("gemm_blocked");
    for (label, layout, m, k, n) in [
        ("nn_256x256x256", Layout::Nn, 256usize, 256usize, 256usize),
        ("tn_16384x64x64", Layout::Tn, 64, 16384, 64),
        ("nt_16384x64x64", Layout::Nt, 16384, 64, 64),
    ] {
        // Zero-free operands: the dense path, not the zero-skip one.
        let fill_a = |i: usize| ((i % 17) as f32 - 8.25) / 4.0;
        let fill_b = |i: usize| ((i % 13) as f32 - 6.25) / 4.0;
        let a: Vec<f32> = (0..m * k).map(fill_a).collect();
        let b: Vec<f32> = (0..k * n).map(fill_b).collect();
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{kernel:?}")),
                &kernel,
                |bench, &kernel| {
                    let mut out = vec![0.0f32; m * n];
                    bench.iter(|| {
                        out.iter_mut().for_each(|v| *v = 0.0);
                        gemm(kernel, layout, &a, &b, &mut out, m, k, n, 1, false);
                    });
                },
            );
        }
    }
    group.finish();
}

/// A full GAT training step under each GEMM engine (same compiled plan,
/// same threads): the end-to-end wall-clock side of the compute-engine
/// swap. Outputs and gradients are bit-identical across the two rows.
fn bench_gat_step_blocked(c: &mut Criterion) {
    let graph = Graph::from_edge_list(&generators::rmat(13, 16, 0.57, 0.19, 0.19, 5));
    let spec = gat(&GatConfig {
        in_dim: 32,
        layers: vec![(2, 16)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let bindings = bindings_for(&spec, &graph, 7);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let mut group = c.benchmark_group("gat_step_blocked");
    for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
        // Session prebuilt outside the timed loop (the build cost is
        // engine-independent and would only compress the ratio).
        let policy = ExecPolicy::auto().with_gemm(kernel);
        let mut sess = Session::builder(&compiled.plan, &graph)
            .policy(policy)
            .fused(true)
            .env(EnvOverrides::Off)
            .build()
            .expect("session");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let out = sess.forward(&bindings).expect("forward");
                    sess.backward(Tensor::ones(out[0].shape()))
                        .expect("backward")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_presets, bench_reorg, bench_monet, bench_thread_scaling, bench_fused_exec,
        bench_reordered_exec, bench_gemm_blocked, bench_gat_step_blocked
}
criterion_main!(benches);

//! EdgeConv / DGCNN (Wang et al., 2019) on point-cloud kNN graphs.
//!
//! `h'_v = max_{u∈N(v)} ( Θ·(h_u − h_v) + Φ·h_v )` — built here in the
//! DGL formulation (Figure 12(e) of the paper): `u_sub_v` on edges, then a
//! per-edge linear Θ — which is exactly the `Scatter → expensive
//! ApplyEdge` redundancy that reorganization eliminates (92.4 % of
//! operator FLOPs, §1).

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space};

/// EdgeConv configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeConvConfig {
    /// Input feature width (3 for raw point coordinates).
    pub in_dim: usize,
    /// Output width of each EdgeConv layer.
    pub layer_dims: Vec<usize>,
}

impl EdgeConvConfig {
    /// The paper's training setting: 4 layers {64, 64, 128, 256}.
    pub fn paper() -> Self {
        Self {
            in_dim: 3,
            layer_dims: vec![64, 64, 128, 256],
        }
    }

    /// The paper's forward-ablation setting: 1 layer, 64-dim features.
    pub fn ablation() -> Self {
        Self {
            in_dim: 64,
            layer_dims: vec![64],
        }
    }
}

/// Builds an EdgeConv model (DGL formulation; run the reorganization pass
/// to obtain Figure 12(f)).
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn edgeconv(cfg: &EdgeConvConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let theta = ir.param(&format!("theta{l}"), in_dim, out_dim);
        let phi = ir.param(&format!("phi{l}"), in_dim, out_dim);
        params.push((format!("theta{l}"), in_dim, out_dim));
        params.push((format!("phi{l}"), in_dim, out_dim));

        // u_sub_v on edges, then the per-edge linear Θ (naive/DGL form).
        let diff = ir.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h)?;
        let e_theta = ir.linear(diff, theta)?;
        // Φ·h_v broadcast to edges and added.
        let n_phi = ir.linear(h, phi)?;
        let v_side = ir.scatter(ScatterFn::CopyV, n_phi, n_phi)?;
        let combined = ir.binary(BinaryFn::Add, e_theta, v_side)?;
        h = ir.gather(ReduceFn::Max, EdgeGroup::ByDst, combined)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::OpKind;

    #[test]
    fn paper_config_dims() {
        let spec = edgeconv(&EdgeConvConfig::paper()).unwrap();
        assert_eq!(spec.output_dim(), 256);
        assert_eq!(spec.params.len(), 8);
    }

    #[test]
    fn naive_form_has_edge_linear() {
        let spec = edgeconv(&EdgeConvConfig::ablation()).unwrap();
        assert!(spec
            .ir
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Linear && n.space == Space::Edge));
    }

    #[test]
    fn reorg_moves_all_linears_to_vertices() {
        let spec = edgeconv(&EdgeConvConfig::paper()).unwrap();
        let (opt, report) = gnnopt_core::reorg::reorganize(&spec.ir).unwrap();
        assert!(report.rewrites >= 4, "one rewrite per layer");
        assert!(opt
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Linear)
            .all(|n| n.space == Space::Vertex));
    }

    #[test]
    fn gather_is_max() {
        let spec = edgeconv(&EdgeConvConfig::ablation()).unwrap();
        assert!(spec.ir.nodes().iter().any(|n| matches!(
            n.kind,
            OpKind::Gather {
                reduce: ReduceFn::Max,
                ..
            }
        )));
    }
}

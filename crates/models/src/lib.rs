//! GNN model zoo expressed in the `gnnopt` operator IR.
//!
//! Implements every model from the paper's evaluation (§7.1.1) — GAT,
//! EdgeConv and MoNet — plus GCN and GraphSAGE from the operator-algebra
//! appendix, each as an IR builder returning a [`ModelSpec`] (graph +
//! leaf inventory + deterministic parameter initialization).
//!
//! The GAT builder exposes the *naive* formulation (`Scatter(∥)` followed
//! by a per-edge projection, Figure 3(a) of the paper) and the
//! `reorganized` variant that DGL's model library hand-codes; the
//! reorganization pass must turn the former into the latter.
//!
//! Two models extend the zoo beyond the paper's benchmarks: GATv2 (the
//! attention whose reorganization is only *partially* legal — the
//! nonlinearity pins the attention dot to edges) and APPNP (a deep chain
//! of graph-only propagation hops that exercises the fusion pass's
//! cross-group kernel-boundary rule).

mod appnp;
mod edgeconv;
mod gat;
mod gatv2;
mod gcn;
mod gin;
mod monet;
mod sage;
mod spec;

pub use appnp::{appnp, AppnpConfig};
pub use edgeconv::{edgeconv, EdgeConvConfig};
pub use gat::{gat, GatConfig};
pub use gatv2::{gatv2, Gatv2Config};
pub use gcn::{gcn, GcnConfig};
pub use gin::{gin, GinConfig};
pub use monet::{monet, MonetConfig};
pub use sage::{sage, SageConfig};
pub use spec::ModelSpec;

//! Graph Attention Network (Veličković et al., 2017) — the paper's primary
//! walk-through model (§3, Figure 3).

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// GAT configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GatConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// `(heads, feat_per_head)` of each attention layer.
    pub layers: Vec<(usize, usize)>,
    /// Negative slope of the attention LeakyReLU.
    pub negative_slope: f32,
    /// Emit the hand-reorganized attention (two vertex-side projections,
    /// as DGL's GATConv does) instead of the naive
    /// `Scatter(∥) → ApplyEdge` form from the original paper.
    pub reorganized: bool,
}

impl GatConfig {
    /// The paper's Figure 7 setting: 2 layers, 128 hidden, single head.
    pub fn figure7(in_dim: usize, classes: usize) -> Self {
        Self {
            in_dim,
            layers: vec![(1, 128), (1, classes)],
            negative_slope: 0.2,
            reorganized: false,
        }
    }

    /// The paper's ablation setting: 4 heads × 64 features.
    pub fn ablation(in_dim: usize) -> Self {
        Self {
            in_dim,
            layers: vec![(4, 64)],
            negative_slope: 0.2,
            reorganized: false,
        }
    }
}

/// Builds a GAT model.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn gat(cfg: &GatConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &(heads, feat)) in cfg.layers.iter().enumerate() {
        let w = ir.param(&format!("w{l}"), in_dim, heads * feat);
        params.push((format!("w{l}"), in_dim, heads * feat));
        let proj_flat = ir.linear(h, w)?;
        let proj = ir.set_heads(proj_flat, heads)?;

        let lr = if cfg.reorganized {
            // aᵀ[hu ∥ hv] = aₗᵀhu + aᵣᵀhv, projections on vertices.
            let al = ir.param(&format!("a{l}_l"), heads, feat);
            let ar = ir.param(&format!("a{l}_r"), heads, feat);
            params.push((format!("a{l}_l"), heads, feat));
            params.push((format!("a{l}_r"), heads, feat));
            let dl = ir.head_dot(proj, al)?;
            let dr = ir.head_dot(proj, ar)?;
            let e = ir.scatter(ScatterFn::Bin(BinaryFn::Add), dl, dr)?;
            ir.unary(UnaryFn::LeakyRelu(cfg.negative_slope), e)?
        } else {
            // Naive: concatenate endpoint features on every edge, then a
            // per-edge projection — the §4 redundancy.
            let a = ir.param(&format!("a{l}"), heads, 2 * feat);
            params.push((format!("a{l}"), heads, 2 * feat));
            let cat = ir.scatter(ScatterFn::ConcatUV, proj, proj)?;
            let att = ir.head_dot(cat, a)?;
            ir.unary(UnaryFn::LeakyRelu(cfg.negative_slope), att)?
        };

        let alpha = ir.edge_softmax(lr)?;
        let hu = ir.scatter(ScatterFn::CopyU, proj, proj)?;
        let weighted = ir.binary(BinaryFn::Mul, hu, alpha)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)?;
        // Flatten heads for the next layer (head concatenation).
        h = ir.set_heads(agg, 1)?;
        in_dim = heads * feat;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::OpKind;

    #[test]
    fn naive_build_has_concat_and_edge_projection() {
        let spec = gat(&GatConfig::ablation(16)).unwrap();
        let kinds: Vec<_> = spec.ir.nodes().iter().map(|n| &n.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, OpKind::Scatter(ScatterFn::ConcatUV))));
        // the per-edge projection is the HeadDot on an edge tensor
        assert!(spec
            .ir
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::HeadDot && n.space == Space::Edge));
    }

    #[test]
    fn reorganized_build_has_vertex_projections_only() {
        let mut cfg = GatConfig::ablation(16);
        cfg.reorganized = true;
        let spec = gat(&cfg).unwrap();
        assert!(!spec
            .ir
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::Scatter(ScatterFn::ConcatUV))));
        assert!(spec
            .ir
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::HeadDot)
            .all(|n| n.space == Space::Vertex));
    }

    #[test]
    fn two_layer_output_dim() {
        let spec = gat(&GatConfig::figure7(32, 7)).unwrap();
        assert_eq!(spec.output_dim(), 7);
        assert_eq!(spec.params.len(), 2 + 2); // w0, a0, w1, a1
    }

    #[test]
    fn multihead_dims_flow() {
        let spec = gat(&GatConfig {
            in_dim: 10,
            layers: vec![(4, 8), (2, 3)],
            negative_slope: 0.2,
            reorganized: false,
        })
        .unwrap();
        assert_eq!(spec.output_dim(), 6); // 2 heads × 3
    }
}

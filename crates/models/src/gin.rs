//! Graph Isomorphism Network (Xu et al., 2019):
//! `h'_v = MLP( (1 + ε)·h_v + Σ_{u∈N(v)} h_u )`.
//!
//! Exercises the `Aggregate`-only pattern (copy-scatter + sum-gather with
//! no edge weights), the simplest fusion target.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// GIN configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GinConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width of each layer (single-linear MLP + ReLU).
    pub layer_dims: Vec<usize>,
    /// The ε self-weighting (fixed, not learned).
    pub epsilon: f32,
}

/// Builds a GIN model.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn gin(cfg: &GinConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let w = ir.param(&format!("w{l}"), in_dim, out_dim);
        params.push((format!("w{l}"), in_dim, out_dim));

        let hu = ir.scatter(ScatterFn::CopyU, h, h)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, hu)?;
        let scaled_self = ir.unary(UnaryFn::Scale(1.0 + cfg.epsilon), h)?;
        let mixed = ir.binary(BinaryFn::Add, scaled_self, agg)?;
        let proj = ir.linear(mixed, w)?;
        h = ir.unary(UnaryFn::Relu, proj)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::fusion::{partition, FusionLevel, MappingPolicy};

    fn cfg() -> GinConfig {
        GinConfig {
            in_dim: 8,
            layer_dims: vec![16, 4],
            epsilon: 0.1,
        }
    }

    #[test]
    fn dims_flow() {
        let spec = gin(&cfg()).unwrap();
        assert_eq!(spec.output_dim(), 4);
        assert_eq!(spec.params.len(), 2);
    }

    #[test]
    fn aggregate_fuses_under_unified_mapping() {
        let spec = gin(&cfg()).unwrap();
        let kernels = partition(&spec.ir, FusionLevel::Unified, MappingPolicy::Auto);
        // per layer: fused graph kernel (scatter+gather+scale+add) + linear
        // + relu-fused-into-next or standalone — at most 3 per layer.
        assert!(kernels.len() <= 6, "got {} kernels", kernels.len());
    }

    #[test]
    fn dgl_uses_spmm_builtin() {
        let spec = gin(&cfg()).unwrap();
        let kernels = partition(&spec.ir, FusionLevel::DglBuiltin, MappingPolicy::Auto);
        // The copy-scatter must be fused into its gather (gSpMM), so no
        // kernel consists of a scatter alone.
        for k in &kernels {
            if k.nodes.len() == 1 {
                let node = spec.ir.node(k.nodes[0]);
                assert!(
                    !matches!(node.kind, gnnopt_core::OpKind::Scatter(ScatterFn::CopyU)),
                    "lone copy-scatter kernel"
                );
            }
        }
    }
}

//! Vanilla GCN (Kipf & Welling, 2016), Appendix A of the paper:
//! `h'_v = relu( Σ_{u∈N(v)} e_uv · (h_u W) )` with static edge weights.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// GCN configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcnConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width of each layer.
    pub layer_dims: Vec<usize>,
}

impl GcnConfig {
    /// Two-layer GCN.
    pub fn two_layer(in_dim: usize, hidden: usize, classes: usize) -> Self {
        Self {
            in_dim,
            layer_dims: vec![hidden, classes],
        }
    }
}

/// Builds a GCN with a per-edge normalization-weight input `"edge_weight"`.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn gcn(cfg: &GcnConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));
    let ew = ir.input_edge("edge_weight", Dim::flat(1));
    inputs.push(("edge_weight".to_owned(), Space::Edge, Dim::flat(1)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let w = ir.param(&format!("w{l}"), in_dim, out_dim);
        params.push((format!("w{l}"), in_dim, out_dim));
        let proj = ir.linear(h, w)?;
        let hu = ir.scatter(ScatterFn::CopyU, proj, proj)?;
        let weighted = ir.binary(BinaryFn::Mul, hu, ew)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)?;
        h = ir.unary(UnaryFn::Relu, agg)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_params() {
        let spec = gcn(&GcnConfig::two_layer(16, 32, 7)).unwrap();
        assert_eq!(spec.output_dim(), 7);
        assert_eq!(
            spec.params,
            vec![("w0".into(), 16, 32), ("w1".into(), 32, 7)]
        );
    }

    #[test]
    fn aggregate_pattern_matches_dgl_spmm() {
        // DGL fuses copy_u → mul → sum into one gSpMM kernel.
        let spec = gcn(&GcnConfig::two_layer(4, 8, 2)).unwrap();
        let kernels = gnnopt_core::fusion::partition(
            &spec.ir,
            gnnopt_core::FusionLevel::DglBuiltin,
            Default::default(),
        );
        // per layer: linear + fused spmm(3 ops) + relu = 3 kernels
        assert_eq!(kernels.len(), 6);
    }
}

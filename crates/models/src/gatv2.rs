//! GATv2 (Brody et al., 2021): attention with the nonlinearity *between*
//! the projection and the attention vector,
//! `e_uv = aᵀ LeakyReLU(W [h_u ∥ h_v])`.
//!
//! The model is the instructive contrast case for the reorganization pass
//! (§4): the projection `W [h_u ∥ h_v]` still distributes over the
//! concatenation (so reorganization moves the `O(|E|)` linear to two
//! `O(|V|)` vertex projections), but the `LeakyReLU` in between blocks
//! postponing the `aᵀ·` dot product — it must remain per-edge. Where GAT's
//! attention reorganizes *completely*, GATv2's reorganizes *partially*;
//! the pass must find exactly the legal half.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// GATv2 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Gatv2Config {
    /// Input feature width.
    pub in_dim: usize,
    /// `(heads, feat_per_head)` of each attention layer.
    pub layers: Vec<(usize, usize)>,
    /// Negative slope of the attention LeakyReLU.
    pub negative_slope: f32,
}

impl Gatv2Config {
    /// A single-layer setting mirroring the GAT ablation (4 heads × 64).
    pub fn ablation(in_dim: usize) -> Self {
        Self {
            in_dim,
            layers: vec![(4, 64)],
            negative_slope: 0.2,
        }
    }

    /// Two layers: hidden then classification.
    pub fn two_layer(in_dim: usize, heads: usize, hidden: usize, classes: usize) -> Self {
        Self {
            in_dim,
            layers: vec![(heads, hidden), (1, classes)],
            negative_slope: 0.2,
        }
    }
}

/// Builds a GATv2 model in the naive (pre-reorganization) form: the
/// attention projection is applied per edge after `Scatter(∥)`, exactly
/// the §4 redundancy pattern.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn gatv2(cfg: &Gatv2Config) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &(heads, feat)) in cfg.layers.iter().enumerate() {
        // Attention path: z_e = W[hu ∥ hv] on edges (reorganizable),
        // then LeakyReLU and the per-edge dot (not reorganizable).
        let w = ir.param(&format!("w{l}"), 2 * in_dim, heads * feat);
        params.push((format!("w{l}"), 2 * in_dim, heads * feat));
        let a = ir.param(&format!("a{l}"), heads, feat);
        params.push((format!("a{l}"), heads, feat));
        let cat = ir.scatter(ScatterFn::ConcatUV, h, h)?;
        let z_flat = ir.linear(cat, w)?;
        let z = ir.set_heads(z_flat, heads)?;
        let lr = ir.unary(UnaryFn::LeakyRelu(cfg.negative_slope), z)?;
        let att = ir.head_dot(lr, a)?;
        let alpha = ir.edge_softmax(att)?;

        // Value path: per-vertex projection of the source features.
        let wv = ir.param(&format!("wv{l}"), in_dim, heads * feat);
        params.push((format!("wv{l}"), in_dim, heads * feat));
        let val_flat = ir.linear(h, wv)?;
        let val = ir.set_heads(val_flat, heads)?;
        let hu = ir.scatter(ScatterFn::CopyU, val, val)?;
        let weighted = ir.binary(BinaryFn::Mul, hu, alpha)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)?;
        h = ir.set_heads(agg, 1)?;
        in_dim = heads * feat;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::reorg::reorganize;
    use gnnopt_core::OpKind;

    #[test]
    fn dims_and_params() {
        let spec = gatv2(&Gatv2Config::two_layer(32, 4, 16, 7)).unwrap();
        assert_eq!(spec.output_dim(), 7);
        // Per layer: w, a, wv.
        assert_eq!(spec.params.len(), 6);
    }

    #[test]
    fn naive_build_projects_on_edges() {
        let spec = gatv2(&Gatv2Config::ablation(16)).unwrap();
        assert!(spec
            .ir
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Linear && n.space == Space::Edge));
    }

    /// Reorganization must split the concat projection into two vertex
    /// projections but leave the attention dot on edges: GATv2's
    /// nonlinearity blocks the full GAT rewrite.
    #[test]
    fn reorg_is_exactly_partial() {
        let spec = gatv2(&Gatv2Config::ablation(16)).unwrap();
        let (r, rep) = reorganize(&spec.ir).unwrap();
        assert!(rep.rewrites >= 1);
        // All linears now on vertices…
        assert!(r
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Linear)
            .all(|n| n.space == Space::Vertex));
        assert!(!r
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::Scatter(ScatterFn::ConcatUV))));
        // …but the attention dot stays per-edge.
        assert!(r
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::HeadDot && n.space == Space::Edge));
    }
}

//! APPNP — Approximate Personalized Propagation of Neural Predictions
//! (Klicpera et al., 2019).
//!
//! `z⁰ = MLP(x)`, then `K` power-iteration hops
//! `zᵏ⁺¹ = (1−α)·Â zᵏ + α·z⁰`, where `Â` enters as a per-edge
//! normalization weight (like GCN's). The model stresses a dimension the
//! paper's three benchmarks do not: a *deep chain of graph-only hops* with
//! no expensive Apply- between them. Every hop is individually fusible,
//! but hops cannot fuse with each other — each gather→scatter boundary is
//! a device-wide synchronization — which exercises the fusion pass's
//! cross-group legality rule.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// APPNP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppnpConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Hidden width of the two-layer MLP.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// Number of propagation hops `K`.
    pub hops: usize,
    /// Teleport probability `α`.
    pub alpha: f32,
}

impl AppnpConfig {
    /// The original paper's setting: K=10, α=0.1.
    pub fn standard(in_dim: usize, hidden: usize, classes: usize) -> Self {
        Self {
            in_dim,
            hidden,
            classes,
            hops: 10,
            alpha: 0.1,
        }
    }
}

/// Builds an APPNP model with a per-edge normalization input
/// `"edge_weight"`.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn appnp(cfg: &AppnpConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let x = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));
    let ew = ir.input_edge("edge_weight", Dim::flat(1));
    inputs.push(("edge_weight".to_owned(), Space::Edge, Dim::flat(1)));

    // Prediction MLP: linear → relu → linear.
    let w0 = ir.param("w0", cfg.in_dim, cfg.hidden);
    params.push(("w0".to_owned(), cfg.in_dim, cfg.hidden));
    let w1 = ir.param("w1", cfg.hidden, cfg.classes);
    params.push(("w1".to_owned(), cfg.hidden, cfg.classes));
    let l0 = ir.linear(x, w0)?;
    let r0 = ir.unary(UnaryFn::Relu, l0)?;
    let z0 = ir.linear(r0, w1)?;

    // Personalized PageRank power iteration.
    let teleport = ir.unary(UnaryFn::Scale(cfg.alpha), z0)?;
    let mut z = z0;
    for _ in 0..cfg.hops {
        let hu = ir.scatter(ScatterFn::CopyU, z, z)?;
        let weighted = ir.binary(BinaryFn::Mul, hu, ew)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)?;
        let damped = ir.unary(UnaryFn::Scale(1.0 - cfg.alpha), agg)?;
        z = ir.binary(BinaryFn::Add, damped, teleport)?;
    }
    ir.mark_output(z);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::fusion::{partition, MappingPolicy};
    use gnnopt_core::FusionLevel;

    #[test]
    fn dims_and_params() {
        let spec = appnp(&AppnpConfig::standard(64, 32, 7)).unwrap();
        assert_eq!(spec.output_dim(), 7);
        assert_eq!(spec.params.len(), 2);
    }

    #[test]
    fn hops_become_separate_fused_kernels() {
        let cfg = AppnpConfig {
            hops: 4,
            ..AppnpConfig::standard(16, 8, 3)
        };
        let spec = appnp(&cfg).unwrap();
        let kernels = partition(&spec.ir, FusionLevel::Unified, MappingPolicy::Auto);
        // 2 dense linears + relu-ish fusibles + one graph kernel per hop;
        // crucially, at least `hops` *graph* kernels (no cross-hop fusion).
        let graph_kernels = kernels
            .iter()
            .filter(|k| k.nodes.iter().any(|&n| spec.ir.node(n).kind.is_graph_op()))
            .count();
        assert_eq!(graph_kernels, cfg.hops);
    }

    #[test]
    fn unfused_kernel_count_grows_linearly_in_hops() {
        let count = |hops: usize| {
            let cfg = AppnpConfig {
                hops,
                ..AppnpConfig::standard(16, 8, 3)
            };
            let spec = appnp(&cfg).unwrap();
            partition(&spec.ir, FusionLevel::None, MappingPolicy::Auto).len()
        };
        // Each extra hop adds the same number of per-op kernels (5).
        assert_eq!(count(3) - count(2), count(2) - count(1));
        assert_eq!(count(2) - count(1), 5);
    }

    #[test]
    fn zero_hops_is_plain_mlp() {
        let cfg = AppnpConfig {
            hops: 0,
            ..AppnpConfig::standard(16, 8, 3)
        };
        let spec = appnp(&cfg).unwrap();
        assert!(!spec.ir.nodes().iter().any(|n| n.kind.is_graph_op()));
        assert_eq!(spec.output_dim(), 3);
    }
}

//! GraphSAGE (Hamilton et al., 2017) with a mean aggregator:
//! `h'_v = relu( W_self·h_v + W_neigh·mean_{u∈N(v)} h_u )`.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// GraphSAGE configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SageConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width of each layer.
    pub layer_dims: Vec<usize>,
}

/// Builds a mean-aggregator GraphSAGE model.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn sage(cfg: &SageConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let ws = ir.param(&format!("w{l}_self"), in_dim, out_dim);
        let wn = ir.param(&format!("w{l}_neigh"), in_dim, out_dim);
        params.push((format!("w{l}_self"), in_dim, out_dim));
        params.push((format!("w{l}_neigh"), in_dim, out_dim));

        let hu = ir.scatter(ScatterFn::CopyU, h, h)?;
        let mean = ir.gather(ReduceFn::Mean, EdgeGroup::ByDst, hu)?;
        let self_proj = ir.linear(h, ws)?;
        let neigh_proj = ir.linear(mean, wn)?;
        let sum = ir.binary(BinaryFn::Add, self_proj, neigh_proj)?;
        h = ir.unary(UnaryFn::Relu, sum)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::OpKind;

    #[test]
    fn builds_and_dims() {
        let spec = sage(&SageConfig {
            in_dim: 8,
            layer_dims: vec![16, 4],
        })
        .unwrap();
        assert_eq!(spec.output_dim(), 4);
        assert_eq!(spec.params.len(), 4);
    }

    #[test]
    fn mean_gather_present() {
        let spec = sage(&SageConfig {
            in_dim: 8,
            layer_dims: vec![4],
        })
        .unwrap();
        assert!(spec.ir.nodes().iter().any(|n| matches!(
            n.kind,
            OpKind::Gather {
                reduce: ReduceFn::Mean,
                ..
            }
        )));
    }
}

//! GraphSAGE (Hamilton et al., 2017), composed purely from the operator
//! IR — no bespoke kernels, both aggregators lower through the same
//! scatter/gather/GEMM vocabulary as every other zoo model:
//!
//! * **Mean**: `h'_v = relu( W_self·h_v + W_neigh·mean_{u∈N(v)} h_u )`.
//! * **Max-pool** (Eq. 3 of the paper, bias-free): each neighbour is
//!   pushed through a pooling MLP before an elementwise max,
//!   `h'_v = relu( W_self·h_v + W_neigh·max_{u∈N(v)} relu(W_pool·h_u) )`.
//!   The `Max` gather records per-destination argmax auxiliaries, so the
//!   backward pass routes gradients through `GatherMaxBwd` — the op the
//!   generalized lowering schedules first-class (edge-inverted, tiled)
//!   rather than via a fallback.
//!
//! Vertices without in-edges aggregate to zero under both reductions.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space, UnaryFn};

/// Neighbour aggregation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SageAggregator {
    /// Unweighted mean over in-neighbours.
    Mean,
    /// Elementwise max over per-neighbour pooling projections
    /// (`relu(W_pool·h_u)`, with `W_pool : in_dim × in_dim`).
    MaxPool,
}

/// GraphSAGE configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SageConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width of each layer.
    pub layer_dims: Vec<usize>,
    /// Neighbour aggregation variant.
    pub aggregator: SageAggregator,
}

impl SageConfig {
    /// Mean-aggregator configuration.
    #[must_use]
    pub fn mean(in_dim: usize, layer_dims: Vec<usize>) -> Self {
        Self {
            in_dim,
            layer_dims,
            aggregator: SageAggregator::Mean,
        }
    }

    /// Max-pool-aggregator configuration.
    #[must_use]
    pub fn max_pool(in_dim: usize, layer_dims: Vec<usize>) -> Self {
        Self {
            in_dim,
            layer_dims,
            aggregator: SageAggregator::MaxPool,
        }
    }
}

/// Builds a GraphSAGE model with the configured aggregator.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn sage(cfg: &SageConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));

    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let ws = ir.param(&format!("w{l}_self"), in_dim, out_dim);
        let wn = ir.param(&format!("w{l}_neigh"), in_dim, out_dim);
        params.push((format!("w{l}_self"), in_dim, out_dim));
        params.push((format!("w{l}_neigh"), in_dim, out_dim));

        let pooled = match cfg.aggregator {
            SageAggregator::Mean => {
                let hu = ir.scatter(ScatterFn::CopyU, h, h)?;
                ir.gather(ReduceFn::Mean, EdgeGroup::ByDst, hu)?
            }
            SageAggregator::MaxPool => {
                let wp = ir.param(&format!("w{l}_pool"), in_dim, in_dim);
                params.push((format!("w{l}_pool"), in_dim, in_dim));
                let proj = ir.linear(h, wp)?;
                let act = ir.unary(UnaryFn::Relu, proj)?;
                let hu = ir.scatter(ScatterFn::CopyU, act, act)?;
                ir.gather(ReduceFn::Max, EdgeGroup::ByDst, hu)?
            }
        };
        let self_proj = ir.linear(h, ws)?;
        let neigh_proj = ir.linear(pooled, wn)?;
        let sum = ir.binary(BinaryFn::Add, self_proj, neigh_proj)?;
        h = ir.unary(UnaryFn::Relu, sum)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::OpKind;

    #[test]
    fn builds_and_dims() {
        let spec = sage(&SageConfig::mean(8, vec![16, 4])).unwrap();
        assert_eq!(spec.output_dim(), 4);
        assert_eq!(spec.params.len(), 4);
    }

    #[test]
    fn mean_gather_present() {
        let spec = sage(&SageConfig::mean(8, vec![4])).unwrap();
        assert!(spec.ir.nodes().iter().any(|n| matches!(
            n.kind,
            OpKind::Gather {
                reduce: ReduceFn::Mean,
                ..
            }
        )));
    }

    #[test]
    fn max_pool_builds_with_pooling_params() {
        let spec = sage(&SageConfig::max_pool(8, vec![16, 4])).unwrap();
        assert_eq!(spec.output_dim(), 4);
        // self + neigh + pool per layer.
        assert_eq!(spec.params.len(), 6);
        assert!(spec
            .params
            .iter()
            .any(|(n, r, c)| n == "w0_pool" && *r == 8 && *c == 8));
        assert!(spec.ir.nodes().iter().any(|n| matches!(
            n.kind,
            OpKind::Gather {
                reduce: ReduceFn::Max,
                ..
            }
        )));
    }
}

//! MoNet / GMMConv (Monti et al., 2016): gaussian mixture weights over
//! edge pseudo-coordinates.
//!
//! `h'_v = (1/K) Σ_k Σ_{u∈N(v)} w_k(pseudo_uv) · (W_k h_u)` where
//! `w_k(m) = exp(−½ (m−μ_k)ᵀ Σ_k⁻¹ (m−μ_k))`. MoNet has no leading
//! `Scatter`, so reorganization does not apply (§7.2) — its wins come from
//! fusion and recomputation of the `O(|E|·K)` gaussian weights.

use crate::ModelSpec;
use gnnopt_core::ir::Result;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, IrGraph, ReduceFn, ScatterFn, Space};

/// MoNet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonetConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width of each GMM layer.
    pub layer_dims: Vec<usize>,
    /// Number of gaussian kernels `K`.
    pub kernels: usize,
    /// Pseudo-coordinate dimension `r`.
    pub pseudo_dim: usize,
}

impl MonetConfig {
    /// The paper's Figure 7 setting: 2 layers × 16 hidden.
    pub fn figure7(in_dim: usize, classes: usize, kernels: usize, pseudo_dim: usize) -> Self {
        Self {
            in_dim,
            layer_dims: vec![16, classes],
            kernels,
            pseudo_dim,
        }
    }
}

/// Builds a MoNet model.
///
/// # Errors
///
/// Propagates IR construction errors (an internal bug, not bad input).
pub fn monet(cfg: &MonetConfig) -> Result<ModelSpec> {
    let mut ir = IrGraph::new();
    let mut inputs = Vec::new();
    let mut params = Vec::new();

    let h0 = ir.input_vertex("h", Dim::flat(cfg.in_dim));
    inputs.push(("h".to_owned(), Space::Vertex, Dim::flat(cfg.in_dim)));
    let pseudo = ir.input_edge("pseudo", Dim::flat(cfg.pseudo_dim));
    inputs.push(("pseudo".to_owned(), Space::Edge, Dim::flat(cfg.pseudo_dim)));

    let (k, r) = (cfg.kernels, cfg.pseudo_dim);
    let mut h = h0;
    let mut in_dim = cfg.in_dim;
    for (l, &out_dim) in cfg.layer_dims.iter().enumerate() {
        let mu = ir.param(&format!("mu{l}"), k, r);
        let sigma = ir.param(&format!("inv_sigma{l}"), k, r);
        let w = ir.param(&format!("w{l}"), in_dim, k * out_dim);
        params.push((format!("mu{l}"), k, r));
        params.push((format!("inv_sigma{l}"), k, r));
        params.push((format!("w{l}"), in_dim, k * out_dim));

        // Per-edge gaussian mixture weights [E, K] (lightweight ApplyEdge).
        let gw = ir.gaussian_weight(pseudo, mu, sigma)?;
        // Per-kernel projections [V, K·f] viewed as K heads.
        let proj_flat = ir.linear(h, w)?;
        let proj = ir.set_heads(proj_flat, k)?;
        // Aggregate: scatter source features, weight per kernel, reduce.
        let hu = ir.scatter(ScatterFn::CopyU, proj, proj)?;
        let weighted = ir.binary(BinaryFn::Mul, hu, gw)?;
        let agg = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, weighted)?;
        // Mean over the K kernels.
        let reduced = ir.head_reduce(ReduceFn::Mean, agg)?;
        h = ir.set_heads(reduced, 1)?;
        in_dim = out_dim;
    }
    ir.mark_output(h);
    Ok(ModelSpec { ir, inputs, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::OpKind;

    #[test]
    fn figure7_dims() {
        let spec = monet(&MonetConfig::figure7(32, 7, 3, 2)).unwrap();
        assert_eq!(spec.output_dim(), 7);
        assert_eq!(spec.params.len(), 6);
    }

    #[test]
    fn no_reorg_opportunity() {
        let spec = monet(&MonetConfig::figure7(8, 3, 2, 2)).unwrap();
        let (_, report) = gnnopt_core::reorg::reorganize(&spec.ir).unwrap();
        assert_eq!(report.rewrites, 0, "MoNet has no Scatter→Apply pattern");
    }

    #[test]
    fn has_gaussian_weights() {
        let spec = monet(&MonetConfig::figure7(8, 3, 2, 2)).unwrap();
        assert_eq!(
            spec.ir
                .nodes()
                .iter()
                .filter(|n| n.kind == OpKind::GaussianWeight)
                .count(),
            2
        );
    }
}

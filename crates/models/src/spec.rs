use gnnopt_core::{Dim, IrGraph, Space};
use gnnopt_graph::Graph;
use gnnopt_tensor::{Tensor, XavierInit};
use std::collections::HashMap;

/// A buildable model: the forward IR plus its leaf inventory.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// The forward computational graph (one marked output).
    pub ir: IrGraph,
    /// `(name, space, dim)` of every data input.
    pub inputs: Vec<(String, Space, Dim)>,
    /// `(name, rows, cols)` of every parameter.
    pub params: Vec<(String, usize, usize)>,
}

impl ModelSpec {
    /// Deterministically initializes all leaves for `graph`: Xavier
    /// parameters and uniform random input features.
    pub fn init_values(&self, graph: &Graph, seed: u64) -> HashMap<String, Tensor> {
        let mut init = XavierInit::new(seed);
        let mut out = HashMap::new();
        for (name, space, dim) in &self.inputs {
            let rows = match space {
                Space::Vertex => graph.num_vertices(),
                Space::Edge => graph.num_edges(),
                Space::Param => dim.heads,
            };
            out.insert(name.clone(), init.uniform(&[rows, dim.total()], -1.0, 1.0));
        }
        for (name, rows, cols) in &self.params {
            out.insert(name.clone(), init.matrix(*rows, *cols));
        }
        out
    }

    /// Dimension (total feature width) of the model output.
    pub fn output_dim(&self) -> usize {
        let out = self.ir.outputs()[0];
        self.ir.node(out).dim.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_graph::{EdgeList, Graph};

    #[test]
    fn init_values_covers_all_leaves() {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(4));
        let w = ir.param("w", 4, 2);
        let y = ir.linear(h, w).unwrap();
        ir.mark_output(y);
        let spec = ModelSpec {
            ir,
            inputs: vec![("h".into(), Space::Vertex, Dim::flat(4))],
            params: vec![("w".into(), 4, 2)],
        };
        let g = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1)]));
        let vals = spec.init_values(&g, 7);
        assert_eq!(vals["h"].shape(), &[3, 4]);
        assert_eq!(vals["w"].shape(), &[4, 2]);
        assert_eq!(spec.output_dim(), 2);
        // Deterministic per seed.
        let vals2 = spec.init_values(&g, 7);
        assert_eq!(vals["w"].as_slice(), vals2["w"].as_slice());
    }
}

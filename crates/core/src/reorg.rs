//! Propagation-postponed operator reorganization (paper §4).
//!
//! The redundancy: `Scatter` duplicates each vertex feature onto all its
//! incident edges, so an expensive `ApplyEdge` that follows performs the
//! same per-vertex computation `|E|` times. Whenever the scatter function
//! `g` and the apply function `φ` satisfy `φ(g(u, v)) = g(φ(u), φ(v))`
//! (commutative + distributive, §4 "identify redundancy"), the pass swaps
//! them — `Scatter → ApplyEdge` becomes `ApplyVertex → Scatter` — cutting
//! the expensive operator from `O(|E|)` to `O(|V|)` invocations.
//!
//! Rewrites implemented (each with the soundness argument from the paper):
//!
//! 1. `Linear ∘ Scatter(±)` → `Scatter(±) ∘ Linear` — linear maps
//!    distribute over `+`/`−`.
//! 2. `Linear/HeadDot ∘ Scatter(Copy*)` → `Scatter(Copy*) ∘ Linear/HeadDot`
//!    — trivially sound (per-edge function of a single vertex value).
//! 3. `HeadDot ∘ Scatter(∥)` → `Scatter(+) ∘ (HeadDot_l, HeadDot_r)` — the
//!    GAT attention trick: `aᵀ[hu ∥ hv] = aₗᵀhu + aᵣᵀhv` (§4 Example).
//! 4. `Linear ∘ Scatter(∥)` → split weight rows, as (3).
//! 5. `Gather(Σ) ∘ Linear(edge)` → `Linear ∘ Gather(Σ)` — the dual
//!    postponement (sum commutes with linear maps); an extension beyond
//!    the paper's examples, documented in DESIGN.md.
//!
//! A rewrite fires only when the propagated tensor has no other consumers,
//! keeping the transformation locally IO-neutral-or-better.

use crate::ir::{IrGraph, Phase, Result};
use crate::op::{BinaryFn, NodeId, OpKind, ReduceFn, ScatterFn, Space};
use std::collections::{HashMap, HashSet};

/// Statistics of one reorganization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorgReport {
    /// Number of rewrites applied.
    pub rewrites: usize,
}

/// Runs the pass to fixpoint (bounded), returning the rewritten graph.
///
/// # Errors
///
/// Propagates IR construction errors (a failed rewrite indicates an
/// internal inconsistency, not bad user input).
///
/// # Panics
///
/// Panics if the graph already contains backward-phase nodes; run
/// reorganization before autodiff.
pub fn reorganize(ir: &IrGraph) -> Result<(IrGraph, ReorgReport)> {
    assert!(
        ir.nodes().iter().all(|n| n.phase == Phase::Forward),
        "reorganization must run before autodiff"
    );
    let mut graph = ir.clone();
    let mut report = ReorgReport::default();
    for _ in 0..8 {
        let (next, applied) = rewrite_once(&graph)?;
        graph = next;
        if applied == 0 {
            break;
        }
        report.rewrites += applied;
    }
    Ok((dce(&graph), report))
}

/// One rebuild pass applying every non-overlapping rewrite opportunity.
fn rewrite_once(ir: &IrGraph) -> Result<(IrGraph, usize)> {
    let consumers = ir.consumers();
    let mut out = IrGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut applied = 0usize;

    for node in ir.nodes() {
        let m = |id: NodeId, map: &HashMap<NodeId, NodeId>| map[&id];

        // Pattern heads are expensive ops whose input is a single-consumer
        // scatter (1–4) or gathers over single-consumer edge linears (5).
        let new_id: NodeId = match &node.kind {
            OpKind::Linear | OpKind::HeadDot => {
                let src = node.inputs[0];
                let w = node.inputs[1];
                let src_node = ir.node(src);
                let private = consumers[src].len() == 1;
                match (&src_node.kind, private) {
                    (OpKind::Scatter(ScatterFn::CopyU), true) => {
                        applied += 1;
                        let x = m(src_node.inputs[0], &map);
                        let proj = apply_projection(&mut out, &node.kind, x, m(w, &map))?;
                        out.scatter(ScatterFn::CopyU, proj, proj)?
                    }
                    (OpKind::Scatter(ScatterFn::CopyV), true) => {
                        applied += 1;
                        let y = m(src_node.inputs[0], &map);
                        let proj = apply_projection(&mut out, &node.kind, y, m(w, &map))?;
                        out.scatter(ScatterFn::CopyV, proj, proj)?
                    }
                    (
                        OpKind::Scatter(ScatterFn::Bin(bf @ (BinaryFn::Add | BinaryFn::Sub))),
                        true,
                    ) if node.kind == OpKind::Linear => {
                        applied += 1;
                        let x = m(src_node.inputs[0], &map);
                        let y = m(src_node.inputs[1], &map);
                        let px = out.linear(x, m(w, &map))?;
                        let py = if x == y {
                            px
                        } else {
                            out.linear(y, m(w, &map))?
                        };
                        out.scatter(ScatterFn::Bin(*bf), px, py)?
                    }
                    (OpKind::Scatter(ScatterFn::ConcatUV), true) => {
                        applied += 1;
                        let x = m(src_node.inputs[0], &map);
                        let y = m(src_node.inputs[1], &map);
                        let fx = ir.node(src_node.inputs[0]).dim.feat;
                        let fy = ir.node(src_node.inputs[1]).dim.feat;
                        let wid = m(w, &map);
                        let (px, py) = if node.kind == OpKind::HeadDot {
                            let al = out.slice_cols(wid, 0, fx)?;
                            let ar = out.slice_cols(wid, fx, fx + fy)?;
                            (out.head_dot(x, al)?, out.head_dot(y, ar)?)
                        } else {
                            let wl = out.slice_rows(wid, 0, fx)?;
                            let wr = out.slice_rows(wid, fx, fx + fy)?;
                            (out.linear(x, wl)?, out.linear(y, wr)?)
                        };
                        out.scatter(ScatterFn::Bin(BinaryFn::Add), px, py)?
                    }
                    _ => copy_node(&mut out, ir, node, &map),
                }
            }
            // Pattern 5: hoist an edge-space linear above a sum/mean gather.
            OpKind::Gather {
                reduce: reduce @ (ReduceFn::Sum | ReduceFn::Mean),
                group,
            } => {
                let src = node.inputs[0];
                let src_node = ir.node(src);
                if src_node.kind == OpKind::Linear
                    && src_node.space == Space::Edge
                    && consumers[src].len() == 1
                {
                    applied += 1;
                    let e = m(src_node.inputs[0], &map);
                    let w = m(src_node.inputs[1], &map);
                    let gathered = out.gather(*reduce, *group, e)?;
                    out.linear(gathered, w)?
                } else {
                    copy_node(&mut out, ir, node, &map)
                }
            }
            _ => copy_node(&mut out, ir, node, &map),
        };
        map.insert(node.id, new_id);
    }
    for &o in ir.outputs() {
        out.mark_output(map[&o]);
    }
    Ok((out, applied))
}

/// Re-emits `node` unchanged (with remapped inputs) into `out`.
fn copy_node(
    out: &mut IrGraph,
    ir: &IrGraph,
    node: &crate::ir::Node,
    map: &HashMap<NodeId, NodeId>,
) -> NodeId {
    let _ = ir;
    let inputs = node.inputs.iter().map(|i| map[i]).collect();
    out.push_raw(
        node.kind.clone(),
        inputs,
        node.space,
        node.dim,
        node.name.clone(),
    )
}

/// Emits the expensive projection `kind` on a vertex tensor.
fn apply_projection(out: &mut IrGraph, kind: &OpKind, x: NodeId, w: NodeId) -> Result<NodeId> {
    match kind {
        OpKind::Linear => out.linear(x, w),
        OpKind::HeadDot => out.head_dot(x, w),
        other => unreachable!("not a projection: {other:?}"),
    }
}

/// Dead-code elimination: keeps only nodes reachable from the outputs.
fn dce(ir: &IrGraph) -> IrGraph {
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = ir.outputs().to_vec();
    while let Some(n) = stack.pop() {
        if live.insert(n) {
            stack.extend(ir.node(n).inputs.iter().copied());
        }
    }
    let mut out = IrGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for node in ir.nodes() {
        if live.contains(&node.id) {
            let id = copy_node(&mut out, ir, node, &map);
            map.insert(node.id, id);
        }
    }
    for &o in ir.outputs() {
        out.mark_output(map[&o]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Dim;

    /// EdgeConv head: Linear(u_sub_v(h, h)) must become
    /// u_sub_v(Linear(h), Linear(h)) with a single Linear.
    #[test]
    fn edgeconv_linear_postpones_scatter() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("theta", 8, 16);
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let le = g.linear(e, w).unwrap();
        g.mark_output(le);

        let (r, rep) = reorganize(&g).unwrap();
        assert_eq!(rep.rewrites, 1);
        // Exactly one Linear, and it must be on vertices.
        let linears: Vec<_> = r
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Linear)
            .collect();
        assert_eq!(linears.len(), 1);
        assert_eq!(linears[0].space, Space::Vertex);
        // Output is now a scatter.
        let out = r.node(r.outputs()[0]);
        assert_eq!(out.kind, OpKind::Scatter(ScatterFn::Bin(BinaryFn::Sub)));
        assert_eq!(out.dim, Dim::flat(16));
    }

    /// GAT attention: HeadDot(concat(hu, hv), a) must become
    /// scatter_add(HeadDot(h, a_l), HeadDot(h, a_r)).
    #[test]
    fn gat_concat_projection_splits() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::multi(4, 16));
        let a = g.param("a", 4, 32);
        let cat = g.scatter(ScatterFn::ConcatUV, h, h).unwrap();
        let att = g.head_dot(cat, a).unwrap();
        g.mark_output(att);

        let (r, rep) = reorganize(&g).unwrap();
        assert_eq!(rep.rewrites, 1);
        let dots: Vec<_> = r
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::HeadDot)
            .collect();
        assert_eq!(dots.len(), 2, "two vertex-side projections");
        assert!(dots.iter().all(|n| n.space == Space::Vertex));
        let out = r.node(r.outputs()[0]);
        assert_eq!(out.kind, OpKind::Scatter(ScatterFn::Bin(BinaryFn::Add)));
        assert_eq!(out.dim, Dim::multi(4, 1));
        // No concat survives.
        assert!(!r
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::Scatter(ScatterFn::ConcatUV)));
    }

    #[test]
    fn shared_scatter_is_not_rewritten() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 8);
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let le = g.linear(e, w).unwrap();
        // Second consumer of the scatter blocks the rewrite.
        let other = g.unary(crate::op::UnaryFn::Relu, e).unwrap();
        g.mark_output(le);
        g.mark_output(other);
        let (_, rep) = reorganize(&g).unwrap();
        assert_eq!(rep.rewrites, 0);
    }

    #[test]
    fn gather_sum_hoists_edge_linear() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 4);
        let e = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let le = g.linear(e, w).unwrap();
        let v = g
            .gather(ReduceFn::Sum, crate::op::EdgeGroup::ByDst, le)
            .unwrap();
        g.mark_output(v);
        let (r, rep) = reorganize(&g).unwrap();
        // Two rewrites compose across iterations: first the Linear hoists
        // above the gather... but the copy-scatter pattern (2) fires first
        // in topo order, postponing the Linear below the scatter; the
        // result must end with at most one |V|-sized Linear.
        assert!(rep.rewrites >= 1);
        let linears: Vec<_> = r
            .nodes()
            .iter()
            .filter(|n| n.kind == OpKind::Linear)
            .collect();
        assert_eq!(linears.len(), 1);
        assert_eq!(linears[0].space, Space::Vertex);
    }

    #[test]
    fn dce_removes_orphans() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let _dead = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let live = g.scatter(ScatterFn::CopyV, h, h).unwrap();
        g.mark_output(live);
        let (r, _) = reorganize(&g).unwrap();
        assert_eq!(r.len(), 2, "input + live scatter only");
    }

    #[test]
    fn copy_scatter_projection_postponed() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 4);
        let e = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let le = g.linear(e, w).unwrap();
        g.mark_output(le);
        let (r, rep) = reorganize(&g).unwrap();
        assert_eq!(rep.rewrites, 1);
        let lin = r.nodes().iter().find(|n| n.kind == OpKind::Linear).unwrap();
        assert_eq!(lin.space, Space::Vertex);
    }
}

//! The GNN operator algebra (paper §2.1 / Appendix A).
//!
//! Four basic operators — `Scatter`, `Gather`, `ApplyEdge`, `ApplyVertex` —
//! express every model; `ApplyEdge`/`ApplyVertex` are represented here by
//! graph-irrelevant ops ([`OpKind::Unary`], [`OpKind::Binary`],
//! [`OpKind::Linear`], …) whose space (vertex or edge) is carried by the
//! node. The high-level `ReduceScatter` appears as the composite
//! [`OpKind::EdgeSoftmax`] (its only instantiation in the paper's models),
//! and `Aggregate` emerges from fusion rather than being a primitive.
//!
//! Backward-only operators (suffix `Bwd`) implement the Appendix B rules;
//! the autodiff module emits them.

/// Which index space a node's output lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// One row per vertex (`[|V|, dim]`).
    Vertex,
    /// One row per edge (`[|E|, dim]`).
    Edge,
    /// Learnable parameter (explicit 2-D shape).
    Param,
}

/// Logical feature dimensions: `heads` independent channels of `feat`
/// features each. Stored flat as `heads * feat` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Number of heads (1 for single-head models).
    pub heads: usize,
    /// Features per head.
    pub feat: usize,
}

impl Dim {
    /// Single-head dimension.
    pub fn flat(feat: usize) -> Self {
        Self { heads: 1, feat }
    }

    /// Multi-head dimension.
    pub fn multi(heads: usize, feat: usize) -> Self {
        Self { heads, feat }
    }

    /// Total flattened column count.
    pub fn total(&self) -> usize {
        self.heads * self.feat
    }
}

/// Binary elementwise functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryFn {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

impl BinaryFn {
    /// Applies the function to scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryFn::Add => a + b,
            BinaryFn::Sub => a - b,
            BinaryFn::Mul => a * b,
            BinaryFn::Div => a / b,
        }
    }
}

/// Unary elementwise functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryFn {
    /// `exp(x)`
    Exp,
    /// `ln(x)`
    Ln,
    /// `-x`
    Neg,
    /// `max(x, 0)`
    Relu,
    /// `x > 0 ? x : slope * x`
    LeakyRelu(f32),
    /// `1 / (1 + exp(-x))`
    Sigmoid,
    /// `tanh(x)`
    Tanh,
    /// `c * x`
    Scale(f32),
}

impl UnaryFn {
    /// Applies the function to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryFn::Exp => x.exp(),
            UnaryFn::Ln => x.ln(),
            UnaryFn::Neg => -x,
            UnaryFn::Relu => x.max(0.0),
            UnaryFn::LeakyRelu(s) => {
                if x >= 0.0 {
                    x
                } else {
                    s * x
                }
            }
            UnaryFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryFn::Tanh => x.tanh(),
            UnaryFn::Scale(c) => c * x,
        }
    }

    /// Derivative `f'(x)` evaluated at the forward *input*.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            UnaryFn::Exp => x.exp(),
            UnaryFn::Ln => 1.0 / x,
            UnaryFn::Neg => -1.0,
            UnaryFn::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryFn::LeakyRelu(s) => {
                if x >= 0.0 {
                    1.0
                } else {
                    s
                }
            }
            UnaryFn::Sigmoid => {
                let y = 1.0 / (1.0 + (-x).exp());
                y * (1.0 - y)
            }
            UnaryFn::Tanh => 1.0 - x.tanh() * x.tanh(),
            UnaryFn::Scale(c) => c,
        }
    }
}

/// Per-edge combination functions used by `Scatter` (paper's
/// `u_op_v` / `copy_u` DGL built-ins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScatterFn {
    /// `m_e = x[src(e)]`
    CopyU,
    /// `m_e = y[dst(e)]`
    CopyV,
    /// `m_e = f(x[src(e)], y[dst(e)])`
    Bin(BinaryFn),
    /// `m_e = x[src(e)] ∥ y[dst(e)]` (per-head concatenation).
    ConcatUV,
}

/// Reduction functions used by `Gather`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceFn {
    /// Sum of the group.
    Sum,
    /// Elementwise maximum of the group (stores argmax auxiliaries).
    Max,
    /// Mean of the group.
    Mean,
}

/// Which endpoint groups edges for a reduction.
///
/// The paper's `Gather` reduces incoming edges per destination; the
/// backward pass of `Scatter` needs the source-grouped dual (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeGroup {
    /// Group by destination vertex (in-edges).
    ByDst,
    /// Group by source vertex (out-edges).
    BySrc,
}

/// Node identifier inside an [`crate::IrGraph`].
pub type NodeId = usize;

/// Every operator the IR can express.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    // ---- leaves ----
    /// Per-vertex input features.
    InputVertex,
    /// Per-edge input features (e.g. MoNet pseudo-coordinates).
    InputEdge,
    /// Learnable parameter.
    Param,
    /// Seed of the backward pass (`∂L/∂output`), supplied at run time.
    GradSeed,

    // ---- graph-related operators ----
    /// `Scatter`: vertex features → edge features.
    Scatter(ScatterFn),
    /// `Gather`: edge features → vertex features.
    Gather {
        /// Reduction function.
        reduce: ReduceFn,
        /// Grouping endpoint.
        group: EdgeGroup,
    },
    /// `ReduceScatter` instance: per-destination-group softmax over edge
    /// scores (GAT's edge-softmax).
    EdgeSoftmax,

    // ---- Apply- operators (graph-irrelevant) ----
    /// Expensive apply: `X · W` (inputs `[x, w]`).
    Linear,
    /// Lightweight elementwise unary apply.
    Unary(UnaryFn),
    /// Lightweight elementwise binary apply (same space; feat-broadcast
    /// allowed when one side has `feat == 1`).
    Binary(BinaryFn),
    /// Per-head dot product with a parameter: `[.., h, f] × [h, f] → [.., h, 1]`
    /// (GAT's `aᵀ h`). Classified expensive (it is a projection).
    HeadDot,
    /// Gaussian mixture weights (MoNet):
    /// `w[e,k] = exp(-½ Σ_j σ⁻²[k,j] (pseudo[e,j] − μ[k,j])²)`,
    /// inputs `[pseudo, mu, inv_sigma]`, output heads = K, feat = 1.
    GaussianWeight,

    // ---- structural (zero-cost or near-zero-cost) ----
    /// Per-head column slice `[start, end)` in feat units.
    SliceCols {
        /// First feature column (per head).
        start: usize,
        /// One past the last feature column (per head).
        end: usize,
    },
    /// Row slice of a parameter.
    SliceRows {
        /// First row.
        start: usize,
        /// One past the last row.
        end: usize,
    },
    /// Reinterpret `[1, h·f]` as `[h, f]` (no data movement).
    SetHeads {
        /// New head count.
        heads: usize,
    },
    /// Reduce heads: `[h, f] → [1, f]`.
    HeadReduce(ReduceFn),
    /// Broadcast heads: `[1, f] → [h, f]`.
    HeadBroadcast {
        /// Target head count.
        heads: usize,
    },
    /// Reduce features: `[h, f] → [h, 1]`.
    FeatSum,
    /// Broadcast features: `[h, 1] → [h, f]`.
    FeatBroadcast {
        /// Target per-head feature count.
        feat: usize,
    },

    // ---- backward-only operators (Appendix B) ----
    /// `∂L/∂X = G · Wᵀ` (inputs `[g, w]`).
    LinearBwdInput,
    /// `∂L/∂W = Xᵀ · G` (inputs `[x, g]`).
    LinearBwdWeight,
    /// `∂L/∂X[.,h,j] = G[.,h] · a[h,j]` (inputs `[g, a]`).
    HeadDotBwdInput,
    /// `∂L/∂a[h,j] = Σ_rows G[.,h] X[.,h,j]` (inputs `[x, g]`).
    HeadDotBwdParam,
    /// Backward of `Gather(Max)`: routes the vertex gradient to the argmax
    /// edge recorded by forward node `fwd` (input `[g]`).
    GatherMaxBwd {
        /// The forward `Gather(Max)` node whose argmax auxiliary to use.
        fwd: NodeId,
    },
    /// Backward of `Gather(Mean)`: scatters `g[v] / degree(v)` to edges.
    GatherMeanBwd {
        /// Grouping endpoint of the forward gather.
        group: EdgeGroup,
    },
    /// Backward of `EdgeSoftmax` (inputs `[g, y]` where `y` is the forward
    /// output): `∂x_e = y_e (g_e − Σ_{e'∈grp(e)} g_{e'} y_{e'})`.
    EdgeSoftmaxBwd,
    /// `g · f'(x)` (inputs `[g, x]`).
    UnaryBwd(UnaryFn),
    /// `∂L/∂μ` of [`OpKind::GaussianWeight`]
    /// (inputs `[pseudo, w, g, mu, inv_sigma]`).
    GaussianBwdMu,
    /// `∂L/∂σ⁻¹` of [`OpKind::GaussianWeight`] (same inputs).
    GaussianBwdSigma,
    /// Backward of [`OpKind::SliceCols`]: embed into zero-padded columns.
    EmbedCols {
        /// First feature column (per head).
        start: usize,
        /// One past the last feature column (per head).
        end: usize,
        /// Total per-head feature count of the embedding target.
        total: usize,
    },
    /// Backward of [`OpKind::SliceRows`]: embed into zero-padded rows.
    EmbedRows {
        /// First row.
        start: usize,
        /// One past the last row.
        end: usize,
        /// Total row count of the embedding target.
        total: usize,
    },
}

/// How the optimizer classifies an operator for fusion (§5): expensive
/// Apply- ops stay in dedicated dense kernels, everything graph-related or
/// lightweight is fusible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionClass {
    /// Not executed (inputs, parameters, gradient seeds).
    Leaf,
    /// Expensive Apply- (linear projections and parameter-gradient
    /// reductions): dedicated dense kernels, never fused with graph ops.
    Expensive,
    /// Graph-related or lightweight Apply-: fusible.
    Fusible,
}

impl OpKind {
    /// Fusion classification (see [`FusionClass`]).
    pub fn fusion_class(&self) -> FusionClass {
        use OpKind::*;
        match self {
            InputVertex | InputEdge | Param | GradSeed => FusionClass::Leaf,
            Linear
            | LinearBwdInput
            | LinearBwdWeight
            | HeadDot
            | HeadDotBwdInput
            | HeadDotBwdParam
            | SliceRows { .. }
            | EmbedRows { .. } => FusionClass::Expensive,
            // Gaussian parameter gradients are per-edge computations with a
            // tiny `[K, r]` atomic reduction — they fuse into the backward
            // graph kernel exactly like the paper's MoNet backward pass.
            _ => FusionClass::Fusible,
        }
    }

    /// The reduction grouping this op performs, if any (drives thread
    /// mapping selection, §5).
    pub fn reduction_group(&self) -> Option<EdgeGroup> {
        match self {
            OpKind::Gather { group, .. } | OpKind::GatherMeanBwd { group } => Some(*group),
            OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd => Some(EdgeGroup::ByDst),
            _ => None,
        }
    }

    /// True for backward ops whose output is a parameter-space reduction
    /// implemented with atomics when fused into a graph kernel.
    pub fn is_param_reduction(&self) -> bool {
        matches!(self, OpKind::GaussianBwdMu | OpKind::GaussianBwdSigma)
    }

    /// True for ops that iterate graph structure (scatter/gather-style
    /// access patterns).
    pub fn is_graph_op(&self) -> bool {
        matches!(
            self,
            OpKind::Scatter(_)
                | OpKind::Gather { .. }
                | OpKind::EdgeSoftmax
                | OpKind::EdgeSoftmaxBwd
                | OpKind::GatherMaxBwd { .. }
                | OpKind::GatherMeanBwd { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_total() {
        assert_eq!(Dim::multi(4, 64).total(), 256);
        assert_eq!(Dim::flat(128).total(), 128);
    }

    #[test]
    fn unary_derivatives_match_finite_difference() {
        let fns = [
            UnaryFn::Exp,
            UnaryFn::Ln,
            UnaryFn::Neg,
            UnaryFn::LeakyRelu(0.2),
            UnaryFn::Sigmoid,
            UnaryFn::Tanh,
            UnaryFn::Scale(3.0),
        ];
        for f in fns {
            for &x in &[0.3f32, 1.7, 2.5] {
                let h = 1e-3;
                let num = (f.apply(x + h) - f.apply(x - h)) / (2.0 * h);
                let ana = f.derivative(x);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{f:?} at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn binary_apply() {
        assert_eq!(BinaryFn::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryFn::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryFn::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryFn::Div.apply(3.0, 2.0), 1.5);
    }

    #[test]
    fn fusion_classes() {
        assert_eq!(OpKind::Linear.fusion_class(), FusionClass::Expensive);
        assert_eq!(
            OpKind::Scatter(ScatterFn::CopyU).fusion_class(),
            FusionClass::Fusible
        );
        assert_eq!(OpKind::Param.fusion_class(), FusionClass::Leaf);
        assert_eq!(OpKind::EdgeSoftmax.fusion_class(), FusionClass::Fusible);
    }

    #[test]
    fn reduction_groups() {
        assert_eq!(
            OpKind::Gather {
                reduce: ReduceFn::Sum,
                group: EdgeGroup::BySrc
            }
            .reduction_group(),
            Some(EdgeGroup::BySrc)
        );
        assert_eq!(
            OpKind::EdgeSoftmax.reduction_group(),
            Some(EdgeGroup::ByDst)
        );
        assert_eq!(OpKind::Unary(UnaryFn::Relu).reduction_group(), None);
    }
}

//! Kernel fusion with unified thread mapping (paper §5), plus faithful
//! models of the baselines' restricted fusion capabilities.
//!
//! The paper's observation: vertex-centric operators are conventionally
//! vertex-balanced and edge-centric ones edge-balanced, and the divergence
//! blocks fusing a `Scatter` with the `Gather` that consumes it. Decoupling
//! mapping from operator type lets *all* graph-related operators share one
//! mapping and fuse into a single kernel ([`FusionLevel::Unified`]).
//!
//! The unified clustering is *view-driven*, not template-driven: every
//! dataflow edge is classified by [`crate::view::edge_view`] (aligned /
//! endpoint / reduction / broadcast), and regions grow greedily along
//! fusible edges with each merge admitted only if the induced kernel DAG
//! stays acyclic ([`assignment_is_acyclic`]) and every endpoint read of an
//! in-kernel value matches its producer's reduction grouping
//! ([`assignment_is_legal`]). Because each merge is individually guarded,
//! the unified partition always yields a schedulable kernel DAG — there is
//! no fallback path. Kernel boundaries, materialization classes and
//! streaming eligibility all follow from the same views (see
//! [`crate::lower`]), which is what makes lowering total over the operator
//! algebra.
//!
//! Baselines:
//! * [`FusionLevel::None`] — one kernel per operator (ablation baseline);
//! * [`FusionLevel::DglBuiltin`] — DGL: fused edge-softmax plus the gSpMM
//!   pattern (`Gather ∘ Binary ∘ Scatter(Copy*)`), everything else
//!   unfused;
//! * [`FusionLevel::EdgeOnly`] — fuseGNN: additionally fuses chains of
//!   edge-centric operators, but never across the edge→vertex boundary.

use crate::ir::IrGraph;
use crate::op::{BinaryFn, EdgeGroup, FusionClass, NodeId, OpKind, ScatterFn, Space};
use crate::plan::Kernel;
use gnnopt_sim::ThreadMapping;
use std::collections::{HashMap, HashSet};

/// How aggressively to fuse (which system is being modeled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionLevel {
    /// One kernel per operator.
    None,
    /// DGL's built-in fused kernels only.
    DglBuiltin,
    /// fuseGNN: edge-centric chains (plus the DGL built-ins).
    EdgeOnly,
    /// This paper: fuse all graph-related + lightweight operators under a
    /// unified thread mapping.
    Unified,
}

/// Thread-mapping selection policy for fused graph kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingPolicy {
    /// Vertex-balanced when a reduction/softmax is present, edge-balanced
    /// otherwise (the paper's default choice).
    #[default]
    Auto,
    /// Force vertex-balanced mappings for all graph kernels.
    ForceVertex,
    /// Force edge-balanced mappings (reductions pay the atomic penalty).
    ForceEdge,
}

/// Partitions the IR's compute nodes into kernels.
pub fn partition(ir: &IrGraph, level: FusionLevel, policy: MappingPolicy) -> Vec<Kernel> {
    let region = match level {
        FusionLevel::None => regions_unfused(ir),
        FusionLevel::DglBuiltin => regions_dgl(ir),
        FusionLevel::EdgeOnly => regions_edge_only(ir),
        FusionLevel::Unified => regions_unified(ir),
    };
    if let Some(kernels) = try_build_kernels(ir, &region, policy) {
        return kernels;
    }
    // Unified regions are acyclic by construction (every merge is guarded
    // by `assignment_is_acyclic`), and unfused regions trivially so; only
    // the baseline templates (DGL / fuseGNN) can produce a non-convex
    // pattern claim on exotic graphs. Degrade those to one-kernel-per-op.
    assert!(
        matches!(level, FusionLevel::DglBuiltin | FusionLevel::EdgeOnly),
        "merge-guarded {level:?} regions always form an acyclic kernel DAG"
    );
    try_build_kernels(ir, &regions_unfused(ir), policy)
        .expect("one kernel per op is trivially acyclic")
}

/// Gives every consumer of a shared `Scatter(CopyU/CopyV)` its own private
/// copy of the scatter (a zero-FLOP node), and removes dead originals.
///
/// This normalization mirrors what every real GNN system does implicitly:
/// copy-style scatters are access patterns, not tensors, so each consuming
/// kernel re-reads the vertex tensor instead of sharing a materialized
/// `O(|E|)` copy — in particular, DGL's gSpMM/gSDDMM *backward* built-ins
/// read the stashed vertex features directly. Returns the rewritten graph
/// and the old→new node-id map.
pub fn duplicate_copy_scatters(ir: &IrGraph) -> (IrGraph, HashMap<NodeId, NodeId>) {
    let consumers = ir.consumers();
    let mut out = IrGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for node in ir.nodes() {
        out.set_phase(node.phase);
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &i in &node.inputs {
            let inode = ir.node(i);
            let shared_copy = matches!(
                inode.kind,
                OpKind::Scatter(ScatterFn::CopyU) | OpKind::Scatter(ScatterFn::CopyV)
            ) && consumers[i].len() > 1;
            if shared_copy {
                let dup = out.push_raw(
                    inode.kind.clone(),
                    vec![map[&inode.inputs[0]]],
                    inode.space,
                    inode.dim,
                    format!("{}_dup", inode.name),
                );
                inputs.push(dup);
            } else {
                inputs.push(map[&i]);
            }
        }
        let id = out.push_raw(
            remap_kind(&node.kind, &map),
            inputs,
            node.space,
            node.dim,
            node.name.clone(),
        );
        map.insert(node.id, id);
    }
    for &o in ir.outputs() {
        out.mark_output(map[&o]);
    }
    out.set_phase(crate::ir::Phase::Forward);
    dce_with_map(&out, map)
}

/// Clones an op kind for a rewritten graph, remapping any node ids
/// *embedded in the kind itself* (the `fwd` pointer of
/// [`OpKind::GatherMaxBwd`]) through the old→new map. The forward gather
/// always precedes its backward node, so its new id is already in `map`.
fn remap_kind(kind: &OpKind, map: &HashMap<NodeId, NodeId>) -> OpKind {
    match kind {
        OpKind::GatherMaxBwd { fwd } => OpKind::GatherMaxBwd { fwd: map[fwd] },
        other => other.clone(),
    }
}

/// Dead-code elimination that threads an existing old→new map through.
fn dce_with_map(
    ir: &IrGraph,
    prior: HashMap<NodeId, NodeId>,
) -> (IrGraph, HashMap<NodeId, NodeId>) {
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = ir.outputs().to_vec();
    // Keep everything reachable from outputs or from any still-consumed
    // node; simplest liveness: reachable from outputs and from nodes with
    // consumers — i.e. drop only nodes with no consumers that are not
    // outputs (and their now-dead ancestors, iteratively).
    let consumers = ir.consumers();
    for n in ir.nodes() {
        if !consumers[n.id].is_empty() {
            continue;
        }
        if ir.outputs().contains(&n.id) {
            stack.push(n.id);
        }
    }
    // Standard reverse reachability from outputs *and* all sinks that are
    // outputs; then anything consumed transitively by them survives.
    while let Some(n) = stack.pop() {
        if live.insert(n) {
            stack.extend(ir.node(n).inputs.iter().copied());
        }
    }
    // Preserve non-output sinks that are *not* dead duplicates (e.g.
    // parameter gradients): they have no consumers but must survive.
    for n in ir.nodes() {
        if consumers[n.id].is_empty()
            && !ir.outputs().contains(&n.id)
            && !matches!(
                n.kind,
                OpKind::Scatter(ScatterFn::CopyU) | OpKind::Scatter(ScatterFn::CopyV)
            )
        {
            let mut stack = vec![n.id];
            while let Some(m) = stack.pop() {
                if live.insert(m) {
                    stack.extend(ir.node(m).inputs.iter().copied());
                }
            }
        }
    }
    let mut out = IrGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for node in ir.nodes() {
        if !live.contains(&node.id) {
            continue;
        }
        out.set_phase(node.phase);
        let inputs = node.inputs.iter().map(|i| map[i]).collect();
        let id = out.push_raw(
            remap_kind(&node.kind, &map),
            inputs,
            node.space,
            node.dim,
            node.name.clone(),
        );
        map.insert(node.id, id);
    }
    for &o in ir.outputs() {
        out.mark_output(map[&o]);
    }
    out.set_phase(crate::ir::Phase::Forward);
    let combined = prior
        .into_iter()
        .filter_map(|(old, mid)| map.get(&mid).map(|&new| (old, new)))
        .collect();
    (out, combined)
}

/// Union-find over node ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

fn is_compute(ir: &IrGraph, id: NodeId) -> bool {
    ir.node(id).kind.fusion_class() != FusionClass::Leaf
}

fn is_fusible(ir: &IrGraph, id: NodeId) -> bool {
    ir.node(id).kind.fusion_class() == FusionClass::Fusible
}

/// Zero-cost reinterpretations (aliases). They are placed into regions
/// *after* real compute nodes so an alias shared between an expensive
/// consumer and a fusible one never welds the two sides together.
fn is_view(ir: &IrGraph, id: NodeId) -> bool {
    match &ir.node(id).kind {
        OpKind::SetHeads { .. } => true,
        // A slice of a parameter is an alias into the weight matrix —
        // real systems never launch a kernel for it; it rides inside
        // whichever kernel consumes the slice (the reorganization pass
        // introduces these when splitting a concat-projection, §4).
        OpKind::SliceRows { .. } | OpKind::SliceCols { .. } => {
            matches!(ir.node(ir.node(id).inputs[0]).kind, OpKind::Param)
        }
        _ => false,
    }
}

/// Param-slice views may join *expensive* consumers' kernels too (a GEMM
/// slices its weight in-kernel); reshaping views stick to fusible ones.
fn view_joins_expensive(ir: &IrGraph, id: NodeId) -> bool {
    matches!(
        ir.node(id).kind,
        OpKind::SliceRows { .. } | OpKind::SliceCols { .. }
    )
}

/// Every compute node in its own region.
fn regions_unfused(ir: &IrGraph) -> Vec<Option<usize>> {
    let mut region = vec![None; ir.len()];
    let mut next = 0;
    for n in ir.nodes() {
        if is_compute(ir, n.id) {
            region[n.id] = Some(next);
            next += 1;
        }
    }
    region
}

/// The paper's unified fusion: grow regions greedily along fusible
/// same-phase dataflow edges, admitting each merge only if the kernel DAG
/// stays acyclic (i.e. the region stays convex). This recovers the paper's
/// single-kernel GAT forward/backward while correctly splitting around
/// gradient-accumulation points that read expensive kernels' outputs.
fn regions_unified(ir: &IrGraph) -> Vec<Option<usize>> {
    let mut region: Vec<Option<usize>> = vec![None; ir.len()];
    let mut next = 0usize;
    // Pass 1: real compute nodes (views deferred).
    for n in ir.nodes() {
        if !is_compute(ir, n.id) || is_view(ir, n.id) {
            continue;
        }
        if !is_fusible(ir, n.id) {
            region[n.id] = Some(next);
            next += 1;
            continue;
        }
        let mut cands: Vec<usize> = n
            .inputs
            .iter()
            .filter(|&&i| is_fusible(ir, i) && !is_view(ir, i) && ir.node(i).phase == n.phase)
            .filter_map(|&i| region[i])
            .collect();
        cands.sort_unstable();
        cands.dedup();
        for r in cands {
            let snapshot = region.clone();
            match region[n.id] {
                None => region[n.id] = Some(r),
                Some(t) if t != r => {
                    // Merging two producer regions: relabel r → t.
                    for slot in region.iter_mut() {
                        if *slot == Some(r) {
                            *slot = Some(t);
                        }
                    }
                }
                _ => continue,
            }
            if !assignment_is_acyclic(ir, &region, n.id) || !assignment_is_legal(ir, &region) {
                region = snapshot;
            }
        }
        if region[n.id].is_none() {
            region[n.id] = Some(next);
            next += 1;
        }
    }
    // Pass 2: views join a consumer's region if that keeps the DAG
    // acyclic, else a fusible producer's region, else stand alone.
    let consumers = ir.consumers();
    let last = ir.len().saturating_sub(1);
    for n in ir.nodes() {
        if !is_view(ir, n.id) {
            continue;
        }
        let expensive_ok = view_joins_expensive(ir, n.id);
        let mut cands: Vec<usize> = consumers[n.id]
            .iter()
            .filter(|&&c| {
                (is_fusible(ir, c) || (expensive_ok && is_compute(ir, c)))
                    && ir.node(c).phase == n.phase
            })
            .filter_map(|&c| region[c])
            .chain(
                n.inputs
                    .iter()
                    .filter(|&&i| is_fusible(ir, i) && ir.node(i).phase == n.phase)
                    .filter_map(|&i| region[i]),
            )
            .collect();
        cands.sort_unstable();
        cands.dedup();
        for r in cands {
            let snapshot = region.clone();
            region[n.id] = Some(r);
            if assignment_is_acyclic(ir, &region, last) && assignment_is_legal(ir, &region) {
                break;
            }
            region = snapshot;
        }
        if region[n.id].is_none() {
            region[n.id] = Some(next);
            next += 1;
        }
    }
    region
}

/// The per-edge vertex-row reads of scatter-like ops, as `(input index,
/// endpoint)` pairs — derived from the per-edge view classification
/// ([`crate::view::edge_view`]) rather than an op template table, so new
/// ops are covered by construction.
fn vertex_read_endpoints(ir: &IrGraph, n: &crate::ir::Node) -> Vec<(usize, EdgeGroup)> {
    crate::view::endpoint_reads(ir, n.id)
}

/// Follows zero-cost view chains (`SetHeads`) to the value-producing node.
fn resolve_view(ir: &IrGraph, mut id: NodeId) -> NodeId {
    while matches!(ir.node(id).kind, OpKind::SetHeads { .. }) {
        id = ir.node(id).inputs[0];
    }
    id
}

/// Collects the reduction groupings of every in-region producer a vertex
/// operand depends on, resolving through views and vertex-space
/// elementwise ops (which inherit their input's grouping: the worker that
/// owns a row also applies the elementwise function to it). An in-region
/// non-reduction graph producer is recorded as `None` (ungrouped —
/// unreadable from any endpoint).
fn in_region_groups(
    ir: &IrGraph,
    region: &[Option<usize>],
    r: usize,
    id: NodeId,
    out: &mut Vec<Option<EdgeGroup>>,
) {
    let node = ir.node(id);
    if region[id] != Some(r) {
        return; // global memory (leaf or another kernel): safe anywhere
    }
    if let Some(g) = node.kind.reduction_group() {
        out.push(Some(g));
        return;
    }
    // Elementwise / view producers: inherit from vertex-space inputs.
    let mut recursed = false;
    for &i in &node.inputs {
        if ir.node(i).space == Space::Vertex {
            in_region_groups(ir, region, r, i, out);
            recursed = true;
        }
    }
    if !recursed {
        out.push(None);
    }
}

/// Checks the cross-group legality of a region assignment (§5): a fused
/// kernel computes a reduction row inside the thread group that owns it,
/// so an in-kernel value produced under grouping `G` can only be read
/// back at endpoint `G`, and only when `G` is the kernel's primary
/// direction (a reduction diverging from the primary is implemented with
/// atomics, whose partial state must never be read in-kernel). Everything
/// else must arrive from global memory — i.e. a kernel boundary.
fn assignment_is_legal(ir: &IrGraph, region: &[Option<usize>]) -> bool {
    // Primary direction per region: the softmax's ByDst if present, else
    // the first reduction's grouping (mirrors `choose_mapping`).
    let mut primary: HashMap<usize, EdgeGroup> = HashMap::new();
    let mut softmaxed: HashSet<usize> = HashSet::new();
    for n in ir.nodes() {
        let Some(r) = region[n.id] else { continue };
        if matches!(n.kind, OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd) {
            primary.insert(r, EdgeGroup::ByDst);
            softmaxed.insert(r);
        } else if let Some(g) = n.kind.reduction_group() {
            if !softmaxed.contains(&r) {
                primary.entry(r).or_insert(g);
            }
        }
    }
    for n in ir.nodes() {
        let reads = vertex_read_endpoints(ir, n);
        if reads.is_empty() {
            continue;
        }
        let Some(r) = region[n.id] else { continue };
        for (idx, endpoint) in reads {
            // Deduplicated copy-scatters carry a single input; clamp.
            let input = *n.inputs.get(idx).unwrap_or(&n.inputs[0]);
            let base = resolve_view(ir, input);
            let mut groups = Vec::new();
            in_region_groups(ir, region, r, base, &mut groups);
            for g in groups {
                let legal = g == Some(endpoint) && primary.get(&r).is_none_or(|&p| p == endpoint);
                if !legal {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks that the kernel DAG induced by the (partial) region assignment
/// is acyclic. Unassigned compute nodes count as singleton kernels.
fn assignment_is_acyclic(ir: &IrGraph, region: &[Option<usize>], upto: NodeId) -> bool {
    // Map every compute node to a contraction id.
    let offset = ir.len();
    let contract = |id: NodeId| -> Option<usize> {
        if !is_compute(ir, id) {
            return None;
        }
        Some(region[id].map_or(offset + id, |r| r))
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for n in ir.nodes().iter().take(upto + 1) {
        let Some(cn) = contract(n.id) else { continue };
        for &i in &n.inputs {
            if let Some(ci) = contract(i) {
                if ci != cn {
                    edges.push((ci, cn));
                }
            }
        }
    }
    // Kahn over the contracted graph.
    let mut ids: HashMap<usize, usize> = HashMap::new();
    for &(a, b) in &edges {
        let l = ids.len();
        ids.entry(a).or_insert(l);
        let l = ids.len();
        ids.entry(b).or_insert(l);
    }
    let m = ids.len();
    let mut indeg = vec![0usize; m];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for &(a, b) in &edges {
        let (a, b) = (ids[&a], ids[&b]);
        if seen.insert((a, b)) {
            adj[a].push(b);
            indeg[b] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..m).filter(|&i| indeg[i] == 0).collect();
    let mut visited = 0;
    while let Some(x) = queue.pop() {
        visited += 1;
        for &y in &adj[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                queue.push(y);
            }
        }
    }
    visited == m
}

/// True if `id` is a `Scatter(CopyU)`/`Scatter(CopyV)` whose only consumer
/// is `only`.
fn is_private_copy_scatter(
    ir: &IrGraph,
    consumers: &[Vec<NodeId>],
    id: NodeId,
    only: NodeId,
) -> bool {
    matches!(
        ir.node(id).kind,
        OpKind::Scatter(ScatterFn::CopyU) | OpKind::Scatter(ScatterFn::CopyV)
    ) && consumers[id] == [only]
}

/// DGL's built-in fusion: gSpMM patterns around every `Gather`, the gSDDMM
/// dot pattern around every `FeatSum`, fused edge-softmax, nothing else.
fn regions_dgl(ir: &IrGraph) -> Vec<Option<usize>> {
    let consumers = ir.consumers();
    let mut region = regions_unfused(ir);
    let mut uf = UnionFind::new(ir.len());
    for n in ir.nodes() {
        // gSpMM: gather ∘ [binary ∘] scatter_copy.
        if matches!(n.kind, OpKind::Gather { .. }) {
            let src = n.inputs[0];
            match &ir.node(src).kind {
                OpKind::Binary(_) if consumers[src] == [n.id] => {
                    uf.union(n.id, src);
                    for &bi in &ir.node(src).inputs {
                        if is_private_copy_scatter(ir, &consumers, bi, src) {
                            uf.union(n.id, bi);
                        }
                    }
                }
                OpKind::Scatter(ScatterFn::CopyU) | OpKind::Scatter(ScatterFn::CopyV)
                    if consumers[src] == [n.id] =>
                {
                    uf.union(n.id, src);
                }
                _ => {}
            }
        }
        // gSDDMM dot: feat_sum ∘ binary(mul) ∘ scatter_copies — e.g.
        // `u_dot_v`, which is exactly the backward of `u_mul_e` SpMM.
        if n.kind == OpKind::FeatSum {
            let src = n.inputs[0];
            if matches!(ir.node(src).kind, OpKind::Binary(BinaryFn::Mul))
                && consumers[src] == [n.id]
            {
                uf.union(n.id, src);
                for &bi in &ir.node(src).inputs {
                    if is_private_copy_scatter(ir, &consumers, bi, src) {
                        uf.union(n.id, bi);
                    }
                }
            }
        }
    }
    merge_regions(ir, &mut region, &mut uf);
    region
}

/// fuseGNN: DGL built-ins plus maximal chains of edge-centric fusible
/// operators (never across the edge→vertex boundary).
fn regions_edge_only(ir: &IrGraph) -> Vec<Option<usize>> {
    let consumers = ir.consumers();
    let mut region = regions_unfused(ir);
    let mut uf = UnionFind::new(ir.len());
    // DGL aggregation built-ins first (they claim their member nodes).
    let mut claimed = vec![false; ir.len()];
    for n in ir.nodes() {
        if !matches!(n.kind, OpKind::Gather { .. }) {
            continue;
        }
        let src = n.inputs[0];
        if let OpKind::Binary(_) = &ir.node(src).kind {
            if consumers[src] == [n.id] {
                uf.union(n.id, src);
                claimed[src] = true;
                for &bi in &ir.node(src).inputs {
                    if is_private_copy_scatter(ir, &consumers, bi, src) {
                        uf.union(n.id, bi);
                        claimed[bi] = true;
                    }
                }
            }
        }
    }
    // Edge-centric chains over the remaining nodes.
    for n in ir.nodes() {
        if claimed[n.id] || !is_fusible(ir, n.id) || n.space != Space::Edge {
            continue;
        }
        for &i in &n.inputs {
            if !claimed[i]
                && is_fusible(ir, i)
                && ir.node(i).space == Space::Edge
                && ir.node(i).phase == n.phase
            {
                uf.union(i, n.id);
            }
        }
    }
    merge_regions(ir, &mut region, &mut uf);
    region
}

/// Rewrites `region` so nodes sharing a union-find root share a region id.
fn merge_regions(ir: &IrGraph, region: &mut [Option<usize>], uf: &mut UnionFind) {
    let mut ids: HashMap<usize, usize> = HashMap::new();
    let mut next = 0;
    for n in ir.nodes() {
        if region[n.id].is_none() {
            continue;
        }
        let root = uf.find(n.id);
        let r = *ids.entry(root).or_insert_with(|| {
            let r = next;
            next += 1;
            r
        });
        region[n.id] = Some(r);
    }
}

/// Groups regions into [`Kernel`]s, assigns mappings, and topologically
/// sorts the kernel DAG. Returns `None` when the region assignment is not
/// convex (the kernel DAG has a cycle).
fn try_build_kernels(
    ir: &IrGraph,
    region: &[Option<usize>],
    policy: MappingPolicy,
) -> Option<Vec<Kernel>> {
    let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for n in ir.nodes() {
        if let Some(r) = region[n.id] {
            groups.entry(r).or_default().push(n.id);
        }
    }
    // Provisional kernels.
    let mut kernels: Vec<Kernel> = groups
        .into_values()
        .map(|nodes| {
            let (mapping, atomic) = choose_mapping(ir, &nodes, policy);
            Kernel {
                id: 0,
                nodes,
                mapping,
                atomic_reduction: atomic,
                recompute: Vec::new(),
            }
        })
        .collect();
    // Deterministic provisional order by first member id.
    kernels.sort_by_key(|k| k.nodes[0]);

    // Kahn toposort of the kernel DAG (ties broken by provisional order).
    let mut owner: HashMap<NodeId, usize> = HashMap::new();
    for (ki, k) in kernels.iter().enumerate() {
        for &n in &k.nodes {
            owner.insert(n, ki);
        }
    }
    let mut indeg = vec![0usize; kernels.len()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); kernels.len()];
    for (ki, k) in kernels.iter().enumerate() {
        for &n in &k.nodes {
            for &i in &ir.node(n).inputs {
                if let Some(&kj) = owner.get(&i) {
                    if kj != ki && !edges[kj].contains(&ki) {
                        edges[kj].push(ki);
                        indeg[ki] += 1;
                    }
                }
            }
        }
    }
    let mut ready: Vec<usize> = (0..kernels.len()).filter(|&k| indeg[k] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(kernels.len());
    while let Some(k) = ready.first().copied() {
        ready.remove(0);
        order.push(k);
        for &next in &edges[k] {
            indeg[next] -= 1;
            if indeg[next] == 0 {
                let pos = ready.binary_search(&next).unwrap_or_else(|p| p);
                ready.insert(pos, next);
            }
        }
    }
    if order.len() != kernels.len() {
        return None; // cyclic kernel DAG: regions were not convex
    }

    let mut out: Vec<Kernel> = order.into_iter().map(|ki| kernels[ki].clone()).collect();
    for (i, k) in out.iter_mut().enumerate() {
        k.id = i;
        k.nodes.sort_unstable();
    }
    Some(out)
}

/// True when any member op is an edge-softmax (forward or backward) —
/// such kernels buffer per-destination reductions in shared memory and
/// must stay vertex-balanced (§5 "A special case is when ReduceScatter is
/// involved").
pub(crate) fn kernel_has_softmax(ir: &IrGraph, nodes: &[NodeId]) -> bool {
    nodes.iter().any(|&n| {
        matches!(
            ir.node(n).kind,
            OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd
        )
    })
}

/// Whether a kernel over `nodes` needs atomics under `mapping` (§5):
/// edge-balanced kernels atomically update any vertex-space reduction;
/// vertex-balanced kernels only when a second reduction diverges from the
/// kernel's primary grouping direction. Parameter-space reductions are
/// atomic under every mapping.
pub(crate) fn atomic_flag(ir: &IrGraph, nodes: &[NodeId], mapping: ThreadMapping) -> bool {
    let has_param_reduction = nodes.iter().any(|&n| ir.node(n).kind.is_param_reduction());
    let groups: Vec<EdgeGroup> = nodes
        .iter()
        .filter_map(|&n| ir.node(n).kind.reduction_group())
        .collect();
    match mapping {
        ThreadMapping::EdgeBalanced => !groups.is_empty() || has_param_reduction,
        ThreadMapping::VertexBalanced => {
            let primary = if kernel_has_softmax(ir, nodes) {
                EdgeGroup::ByDst
            } else {
                groups.first().copied().unwrap_or(EdgeGroup::ByDst)
            };
            groups.iter().any(|&g| g != primary) || has_param_reduction
        }
        ThreadMapping::Dense => has_param_reduction,
    }
}

/// Mapping + atomics decision for one kernel (§5).
fn choose_mapping(ir: &IrGraph, nodes: &[NodeId], policy: MappingPolicy) -> (ThreadMapping, bool) {
    let has_graph = nodes.iter().any(|&n| ir.node(n).kind.is_graph_op());
    let has_param_reduction = nodes.iter().any(|&n| ir.node(n).kind.is_param_reduction());
    if !has_graph {
        return (ThreadMapping::Dense, has_param_reduction);
    }
    let groups: Vec<EdgeGroup> = nodes
        .iter()
        .filter_map(|&n| ir.node(n).kind.reduction_group())
        .collect();
    let has_softmax = kernel_has_softmax(ir, nodes);
    let mapping = match policy {
        MappingPolicy::ForceVertex => ThreadMapping::VertexBalanced,
        MappingPolicy::ForceEdge if !has_softmax => ThreadMapping::EdgeBalanced,
        MappingPolicy::ForceEdge => ThreadMapping::VertexBalanced,
        MappingPolicy::Auto => {
            if groups.is_empty() {
                ThreadMapping::EdgeBalanced
            } else {
                ThreadMapping::VertexBalanced
            }
        }
    };
    (mapping, atomic_flag(ir, nodes, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Dim, ReduceFn, UnaryFn};

    /// h' = gather_sum(mul(softmax(leakyrelu(scatter_add(a, a))), copy_u(h)))
    /// — the graph-related part of a GAT layer.
    fn gat_like() -> (IrGraph, [NodeId; 6]) {
        let mut g = IrGraph::new();
        let a = g.input_vertex("a", Dim::multi(2, 1));
        let h = g.input_vertex("h", Dim::multi(2, 8));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Add), a, a).unwrap();
        let lr = g.unary(UnaryFn::LeakyRelu(0.2), e).unwrap();
        let sm = g.edge_softmax(lr).unwrap();
        let hu = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, sm).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        g.mark_output(out);
        (g, [e, lr, sm, hu, me, out])
    }

    #[test]
    fn unified_fuses_whole_graph_section() {
        let (g, nodes) = gat_like();
        let kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        assert_eq!(kernels.len(), 1, "all graph ops must fuse into one kernel");
        let k = &kernels[0];
        assert_eq!(k.mapping, ThreadMapping::VertexBalanced);
        assert!(!k.atomic_reduction);
        for n in nodes {
            assert!(k.nodes.contains(&n));
        }
    }

    #[test]
    fn unfused_gives_one_kernel_per_op() {
        let (g, _) = gat_like();
        let kernels = partition(&g, FusionLevel::None, MappingPolicy::Auto);
        assert_eq!(kernels.len(), 6);
    }

    #[test]
    fn dgl_fuses_softmax_and_spmm_only() {
        let (g, [e, lr, sm, hu, me, out]) = gat_like();
        let kernels = partition(&g, FusionLevel::DglBuiltin, MappingPolicy::Auto);
        // Expected: scatter_add | leaky_relu | edge_softmax | spmm(mul+copy+gather)
        assert_eq!(kernels.len(), 4);
        let spmm = kernels
            .iter()
            .find(|k| k.nodes.contains(&out))
            .expect("gather kernel");
        assert!(spmm.nodes.contains(&me) && spmm.nodes.contains(&hu));
        assert!(!spmm.nodes.contains(&sm));
        let scatter_kernel = kernels.iter().find(|k| k.nodes.contains(&e)).unwrap();
        assert_eq!(scatter_kernel.nodes.len(), 1);
        assert_eq!(scatter_kernel.mapping, ThreadMapping::EdgeBalanced);
        let lr_kernel = kernels.iter().find(|k| k.nodes.contains(&lr)).unwrap();
        assert_eq!(lr_kernel.nodes.len(), 1);
    }

    #[test]
    fn edge_only_fuses_edge_chain_but_not_across_gather() {
        let (g, [e, lr, sm, hu, me, out]) = gat_like();
        let kernels = partition(&g, FusionLevel::EdgeOnly, MappingPolicy::Auto);
        // scatter_add + leaky_relu + softmax chain fused; spmm separate.
        let chain = kernels.iter().find(|k| k.nodes.contains(&e)).unwrap();
        assert!(chain.nodes.contains(&lr) && chain.nodes.contains(&sm));
        assert!(!chain.nodes.contains(&out));
        let spmm = kernels.iter().find(|k| k.nodes.contains(&out)).unwrap();
        assert!(spmm.nodes.contains(&me) && spmm.nodes.contains(&hu));
        assert_eq!(kernels.len(), 2);
    }

    #[test]
    fn expensive_ops_split_regions() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let le = g.linear(e, w).unwrap(); // expensive on edges
        let r = g.unary(UnaryFn::Relu, le).unwrap();
        let out = g.gather(ReduceFn::Max, EdgeGroup::ByDst, r).unwrap();
        g.mark_output(out);
        let kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        // scatter | linear | relu+gather
        assert_eq!(kernels.len(), 3);
        let lin = kernels.iter().find(|k| k.nodes.contains(&le)).unwrap();
        assert_eq!(lin.mapping, ThreadMapping::Dense);
        let tail = kernels.iter().find(|k| k.nodes.contains(&out)).unwrap();
        assert!(tail.nodes.contains(&r));
        assert!(!tail.nodes.contains(&e));
    }

    #[test]
    fn force_edge_marks_atomics() {
        let (g, _) = gat_like();
        let kernels = partition(&g, FusionLevel::Unified, MappingPolicy::ForceEdge);
        // Softmax keeps the kernel vertex-balanced even under ForceEdge.
        assert_eq!(kernels[0].mapping, ThreadMapping::VertexBalanced);

        // Without softmax, ForceEdge yields an atomic edge-balanced kernel.
        let mut g2 = IrGraph::new();
        let h = g2.input_vertex("h", Dim::flat(4));
        let e = g2.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let v = g2.gather(ReduceFn::Sum, EdgeGroup::ByDst, e).unwrap();
        g2.mark_output(v);
        let kernels2 = partition(&g2, FusionLevel::Unified, MappingPolicy::ForceEdge);
        assert_eq!(kernels2.len(), 1);
        assert_eq!(kernels2[0].mapping, ThreadMapping::EdgeBalanced);
        assert!(kernels2[0].atomic_reduction);
    }

    /// APPNP-style propagation: each hop's gather output feeds the next
    /// hop's source-reading scatter. A single kernel cannot hand one
    /// thread group's gather result to an arbitrary other group, so the
    /// hops must land in different kernels.
    #[test]
    fn multi_hop_propagation_splits_at_gather_scatter_boundary() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(16));
        let ew = g.input_edge("ew", Dim::flat(1));
        let mut z = h;
        let hops = 3;
        for _ in 0..hops {
            let hu = g.scatter(ScatterFn::CopyU, z, z).unwrap();
            let me = g.binary(BinaryFn::Mul, hu, ew).unwrap();
            z = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        }
        g.mark_output(z);
        let kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        assert_eq!(
            kernels.len(),
            hops,
            "each hop must be its own kernel (global sync between hops)"
        );
        // The legality invariant holds on the final partition.
        let mut region = vec![None; g.len()];
        for k in &kernels {
            for &n in &k.nodes {
                region[n] = Some(k.id);
            }
        }
        assert!(assignment_is_legal(&g, &region));
    }

    /// The legality barrier does not split the group-local
    /// softmax-aggregate chain: GAT still fuses into one kernel (the §5
    /// headline claim) because its scatters read only leaf inputs.
    #[test]
    fn legality_preserves_single_kernel_gat() {
        let (g, _) = gat_like();
        let kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        assert_eq!(kernels.len(), 1);
    }

    /// A shared `CopyU` forces duplication (inserting nodes and shifting
    /// every later id) and DCE then compacts ids again; the `fwd` pointer
    /// embedded in `GatherMaxBwd` must track its forward gather through
    /// both rewrites.
    #[test]
    fn duplication_remaps_gather_max_bwd_fwd_pointer() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let hu = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let g1 = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, hu).unwrap();
        let mx = g.gather(ReduceFn::Max, EdgeGroup::ByDst, hu).unwrap();
        let a = g.binary(BinaryFn::Add, g1, mx).unwrap();
        g.mark_output(a);
        g.set_phase(crate::ir::Phase::Backward);
        let seed = g.push_raw(
            OpKind::GradSeed,
            vec![],
            Space::Vertex,
            Dim::flat(4),
            "seed",
        );
        let bwd = g.push_raw(
            OpKind::GatherMaxBwd { fwd: mx },
            vec![seed],
            Space::Edge,
            Dim::flat(4),
            "gmb",
        );
        g.mark_output(bwd);
        let (out, map) = duplicate_copy_scatters(&g);
        assert_ne!(map[&mx], mx, "duplication must shift the forward id");
        let OpKind::GatherMaxBwd { fwd } = out.node(map[&bwd]).kind else {
            panic!("rewrite changed the node kind");
        };
        assert_eq!(fwd, map[&mx], "fwd must track the remapped forward node");
        assert!(matches!(
            out.node(fwd).kind,
            OpKind::Gather {
                reduce: ReduceFn::Max,
                ..
            }
        ));
    }

    #[test]
    fn kernel_schedule_respects_dependencies() {
        let (g, _) = gat_like();
        for level in [
            FusionLevel::None,
            FusionLevel::DglBuiltin,
            FusionLevel::EdgeOnly,
            FusionLevel::Unified,
        ] {
            let kernels = partition(&g, level, MappingPolicy::Auto);
            let mut seen: Vec<NodeId> = Vec::new();
            for k in &kernels {
                for &n in &k.nodes {
                    for &i in &g.node(n).inputs {
                        let leaf = g.node(i).kind.fusion_class() == FusionClass::Leaf;
                        assert!(
                            leaf || seen.contains(&i) || k.nodes.contains(&i),
                            "{level:?}: node {n} scheduled before its input {i}"
                        );
                    }
                }
                seen.extend(&k.nodes);
            }
        }
    }
}

//! Analytical per-operator cost model: FLOPs, DRAM bytes and residency.
//!
//! These are the quantities behind every figure in the paper: §4's
//! computation counts (e.g. GAT attention dropping from `6|E|f + |E|` to
//! `4|V|f + 2|E|` after reorganization), §5's IO counts (e.g.
//! `|V|hf + 7|E|h + 3|E|hf` → `|V|hf + 5|E|h + 2|E|hf` after fusion) and
//! §6's memory counts (`O(|E|)` intermediates eliminated). The unit tests
//! of this module assert the *symbolic* formulas; the executor asserts
//! that measured counters match these numbers exactly.

use crate::ir::Node;
use crate::op::{OpKind, Space};
use gnnopt_graph::GraphStats;

/// Bytes per f32 element.
pub const ELEM_BYTES: u64 = 4;

/// Cost-model context: binds the IR to a concrete graph size.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a GraphStats,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model over the given graph statistics.
    pub fn new(stats: &'a GraphStats) -> Self {
        Self { stats }
    }

    /// The bound statistics.
    pub fn stats(&self) -> &GraphStats {
        self.stats
    }

    /// Number of rows of a node's output tensor.
    pub fn rows(&self, node: &Node) -> u64 {
        match node.space {
            Space::Vertex => self.stats.num_vertices() as u64,
            Space::Edge => self.stats.num_edges() as u64,
            Space::Param => node.dim.heads as u64,
        }
    }

    /// Bytes of a node's output tensor.
    pub fn out_bytes(&self, node: &Node) -> u64 {
        match node.space {
            Space::Param => (node.dim.heads * node.dim.feat) as u64 * ELEM_BYTES,
            _ => self.rows(node) * node.dim.total() as u64 * ELEM_BYTES,
        }
    }

    /// Floating-point operations performed by a node.
    pub fn flops(&self, node: &Node, inputs: &[&Node]) -> u64 {
        let e = self.stats.num_edges() as u64;
        let total = node.dim.total() as u64;
        match &node.kind {
            OpKind::InputVertex
            | OpKind::InputEdge
            | OpKind::Param
            | OpKind::GradSeed
            | OpKind::SliceCols { .. }
            | OpKind::SliceRows { .. }
            | OpKind::SetHeads { .. }
            | OpKind::HeadBroadcast { .. }
            | OpKind::FeatBroadcast { .. }
            | OpKind::EmbedCols { .. }
            | OpKind::EmbedRows { .. } => 0,

            OpKind::Scatter(f) => match f {
                crate::op::ScatterFn::Bin(_) => e * total,
                _ => 0,
            },
            OpKind::Gather { .. } | OpKind::GatherMaxBwd { .. } | OpKind::GatherMeanBwd { .. } => {
                e * total
            }
            OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd => 4 * e * total,

            // y = x·W: 2·rows·d_in·d_out multiply-adds.
            OpKind::Linear => 2 * self.rows(node) * inputs[0].dim.total() as u64 * total,
            // ∂x = g·Wᵀ: same work as forward.
            OpKind::LinearBwdInput => 2 * self.rows(node) * inputs[0].dim.total() as u64 * total,
            // ∂W = xᵀ·g: reduces over the data rows of x.
            OpKind::LinearBwdWeight => {
                2 * self.rows(inputs[0]) * node.dim.heads as u64 * node.dim.feat as u64
            }

            OpKind::Unary(_) | OpKind::Binary(_) => self.rows(node) * total,
            OpKind::FeatSum | OpKind::HeadReduce(_) => {
                self.rows(node) * inputs[0].dim.total() as u64
            }
            OpKind::UnaryBwd(_) => 2 * self.rows(node) * total,

            // Per-head dot products touch heads·feat elements per row of
            // the non-param operand.
            OpKind::HeadDot | OpKind::HeadDotBwdInput | OpKind::HeadDotBwdParam => {
                let data = inputs
                    .iter()
                    .find(|i| i.space != Space::Param)
                    .unwrap_or(&inputs[0]);
                let width = inputs
                    .iter()
                    .map(|i| i.dim.total())
                    .max()
                    .unwrap_or(node.dim.total())
                    .max(node.dim.total()) as u64;
                2 * self.rows(data) * width
            }

            // K kernels × r pseudo-dims: 3 ops per (k, j) plus exp+scale.
            OpKind::GaussianWeight | OpKind::GaussianBwdMu | OpKind::GaussianBwdSigma => {
                let k = node.dim.heads as u64;
                let r = inputs[0].dim.feat as u64;
                e * k * (3 * r + 2)
            }
        }
    }

    /// Bytes a kernel reads to consume `input` from node `consumer`:
    /// graph-related consumers access vertex tensors once per incident
    /// edge (gather-style random access), everything else streams the
    /// tensor once.
    pub fn read_bytes(&self, consumer: &Node, input: &Node) -> u64 {
        let streamed = self.out_bytes(input);
        if consumer.kind.is_graph_op() {
            let per_edge = self.stats.num_edges() as u64 * input.dim.total() as u64 * ELEM_BYTES;
            match input.space {
                // per-edge access of a vertex tensor cannot be coalesced
                Space::Vertex => per_edge,
                _ => streamed,
            }
        } else {
            streamed
        }
    }

    /// Bytes of graph-topology index arrays charged once per kernel that
    /// contains at least one graph-related op (`indptr` + neighbour ids +
    /// edge ids).
    pub fn index_bytes(&self) -> u64 {
        (self.stats.num_vertices() as u64 + 2 * self.stats.num_edges() as u64) * 4
    }

    /// Auxiliary bytes a node must stash for its backward pass beyond its
    /// regular output (argmax tables, softmax max/denominator).
    pub fn aux_bytes(&self, node: &Node) -> u64 {
        let v = self.stats.num_vertices() as u64;
        match &node.kind {
            // per-vertex argmax per channel
            OpKind::Gather {
                reduce: crate::op::ReduceFn::Max,
                ..
            } => v * node.dim.total() as u64 * 4,
            // per-vertex max + denominator per head
            OpKind::EdgeSoftmax => 2 * v * node.dim.total() as u64 * ELEM_BYTES,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrGraph;
    use crate::op::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn};

    fn stats(v: usize, avg: f64) -> GraphStats {
        GraphStats::synthesize_power_law(v, avg, 0.0)
    }

    /// §4 example: naive GAT attention costs ≈ 6|E|f FLOPs for the
    /// concat+projection (2|E|f copy is free here, 4|E|f for the
    /// projection since HeadDot reads 2f per edge) plus |E| LeakyReLU.
    #[test]
    fn gat_attention_flops_naive_vs_reorganized() {
        let s = stats(1000, 10.0);
        let e = s.num_edges() as u64;
        let v = s.num_vertices() as u64;
        let f = 64usize;

        // Naive: concat on edges then per-edge projection.
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(f));
        let a = g.param("a", 1, 2 * f);
        let a = g.set_heads(a, 1).unwrap(); // param [1, 2f] viewed per-head
        let cat = g.scatter(ScatterFn::ConcatUV, h, h).unwrap();
        let att = g.head_dot(cat, a).unwrap();
        let cm = CostModel::new(&s);
        let proj_flops = cm.flops(g.node(att), &[g.node(cat), g.node(a)]);
        assert_eq!(proj_flops, 2 * e * 2 * f as u64); // = 4|E|f

        // Reorganized: two vertex-side projections.
        let mut g2 = IrGraph::new();
        let h2 = g2.input_vertex("h", Dim::flat(f));
        let al = g2.param("al", 1, f);
        let al = g2.set_heads(al, 1).unwrap();
        let dv = g2.head_dot(h2, al).unwrap();
        let cm2 = CostModel::new(&s);
        let vert_flops = cm2.flops(g2.node(dv), &[g2.node(h2), g2.node(al)]);
        assert_eq!(vert_flops, 2 * v * f as u64); // = 2|V|f, ×2 projections = 4|V|f
        assert!(2 * vert_flops < proj_flops, "reorg must reduce FLOPs");
    }

    #[test]
    fn scatter_copy_is_io_only() {
        let s = stats(100, 4.0);
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let e = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let cm = CostModel::new(&s);
        assert_eq!(cm.flops(g.node(e), &[g.node(h)]), 0);
        // per-edge random access of a vertex tensor
        assert_eq!(
            cm.read_bytes(g.node(e), g.node(h)),
            s.num_edges() as u64 * 8 * 4
        );
        assert_eq!(cm.out_bytes(g.node(e)), s.num_edges() as u64 * 8 * 4);
    }

    #[test]
    fn gather_writes_vertex_rows() {
        let s = stats(100, 4.0);
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, e).unwrap();
        let cm = CostModel::new(&s);
        assert_eq!(cm.out_bytes(g.node(v)), 100 * 8 * 4);
        assert_eq!(cm.flops(g.node(v), &[g.node(e)]), s.num_edges() as u64 * 8);
    }

    #[test]
    fn softmax_aux_is_order_v() {
        let s = stats(1000, 50.0);
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::multi(4, 1));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Add), h, h).unwrap();
        let sm = g.edge_softmax(e).unwrap();
        let cm = CostModel::new(&s);
        assert_eq!(cm.aux_bytes(g.node(sm)), 2 * 1000 * 4 * 4);
        assert_eq!(cm.aux_bytes(g.node(e)), 0);
    }

    #[test]
    fn linear_flops_are_2ndk() {
        let s = stats(100, 4.0);
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(16));
        let w = g.param("w", 16, 32);
        let y = g.linear(h, w).unwrap();
        let cm = CostModel::new(&s);
        assert_eq!(
            cm.flops(g.node(y), &[g.node(h), g.node(w)]),
            2 * 100 * 16 * 32
        );
    }
}

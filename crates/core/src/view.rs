//! Per-edge `View`s: how a consumer op reads each of its inputs.
//!
//! The generalized op-graph IR (ROADMAP item 5) annotates every dataflow
//! edge with a `View` describing the index transformation between the
//! producer's rows and the consumer's iteration space. All scheduling
//! decisions downstream — kernel clustering ([`crate::fusion`]),
//! storage-class assignment and streaming eligibility ([`crate::lower`]) —
//! are derived from these views alone, never from per-op templates, which
//! is what makes lowering *total*: any op the IR can express has a
//! well-defined view signature and therefore a well-defined schedule.
//!
//! The classification is a pure function of `(consumer kind, consumer
//! space, producer space)` plus — for [`crate::op::OpKind::GatherMaxBwd`] —
//! the grouping of the forward node it inverts, so it lives here as the
//! single source of truth shared by the fusion and lowering passes.

use crate::ir::IrGraph;
use crate::op::{EdgeGroup, NodeId, OpKind, ScatterFn, Space};

/// How one input of an op is read relative to the op's iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum View {
    /// Same iteration space, same row: `in[i]` while producing `out[i]`.
    Aligned,
    /// Vertex rows read through each edge's *source* endpoint
    /// (`in[src(e)]` while iterating edges).
    BySrc,
    /// Vertex rows read through each edge's *destination* endpoint
    /// (`in[dst(e)]` while iterating edges).
    ByDst,
    /// Edge rows *reduced* into per-endpoint rows (`out[v] = ⊕ in[e]` over
    /// the group anchored at `v`); the grouping endpoint decides whether
    /// the reduction streams (ByDst) or must invert the edge order (BySrc).
    Reduce(EdgeGroup),
    /// Whole-tensor read independent of the iteration row (parameters and
    /// other `Space::Param` operands broadcast into every row).
    Broadcast,
    /// Stash-backed auxiliary: the value is not a live dataflow input but
    /// an auxiliary table recorded by another node (argmax tables, softmax
    /// max/denominator stashes) and replayed at the consumer's rows.
    Stash,
    /// The operand is never read (the dummy second operand of a
    /// `Scatter(CopyU/CopyV)` kept for arity uniformity).
    Unused,
}

impl View {
    /// True when the read crosses the vertex↔edge boundary through a CSR
    /// endpoint (and therefore pins the thread mapping of a fused kernel).
    pub fn is_endpoint(self) -> bool {
        matches!(self, View::BySrc | View::ByDst)
    }

    /// The endpoint group of an endpoint read, if any.
    pub fn endpoint_group(self) -> Option<EdgeGroup> {
        match self {
            View::BySrc => Some(EdgeGroup::BySrc),
            View::ByDst => Some(EdgeGroup::ByDst),
            _ => None,
        }
    }
}

/// The view through which `consumer` reads its `pos`-th input.
///
/// Total over every op the IR can express; unknown combinations default to
/// [`View::Aligned`] (same-space elementwise) or [`View::Broadcast`]
/// (param operands), which are the only reads left once the explicit
/// endpoint/reduction cases below are handled.
pub fn edge_view(ir: &IrGraph, consumer: NodeId, pos: usize) -> View {
    let node = ir.node(consumer);
    let input = node.inputs[pos];
    let in_space = ir.node(input).space;
    match &node.kind {
        // Scatter reads vertex rows through edge endpoints: copy scatters
        // carry their one read operand at position 0; binary/concat
        // scatters read the source operand at 0 and the destination
        // operand at 1.
        OpKind::Scatter(f) => match (f, pos) {
            (ScatterFn::CopyU, 0) => View::BySrc,
            (ScatterFn::CopyV, 0) => View::ByDst,
            (ScatterFn::Bin(_) | ScatterFn::ConcatUV, 0) => View::BySrc,
            (ScatterFn::Bin(_) | ScatterFn::ConcatUV, _) => View::ByDst,
            _ => View::Unused,
        },
        // Reductions consume edge rows grouped by an endpoint.
        OpKind::Gather { group, .. } => View::Reduce(*group),
        OpKind::EdgeSoftmax | OpKind::EdgeSoftmaxBwd => {
            if in_space == Space::Edge {
                View::Aligned
            } else {
                View::Broadcast
            }
        }
        // Mean backward broadcasts the vertex gradient to each edge of the
        // forward group — an endpoint read through the forward grouping.
        OpKind::GatherMeanBwd { group } => match group {
            EdgeGroup::ByDst => View::ByDst,
            EdgeGroup::BySrc => View::BySrc,
        },
        // Max backward routes the vertex gradient through the argmax table
        // of the forward gather: the dataflow input (the gradient) is an
        // endpoint read at the forward grouping, and the argmax table
        // itself is a stash-backed auxiliary.
        OpKind::GatherMaxBwd { fwd } => match gather_max_bwd_group(ir, *fwd) {
            EdgeGroup::ByDst => View::ByDst,
            EdgeGroup::BySrc => View::BySrc,
        },
        // Gaussian parameter reductions iterate edges and reduce into the
        // tiny `[K, r]` parameter grid: the pseudo-coordinate and incoming
        // gradient are aligned edge reads, everything else is a parameter
        // broadcast.
        OpKind::GaussianBwdMu | OpKind::GaussianBwdSigma => {
            if in_space == Space::Param {
                View::Broadcast
            } else {
                View::Aligned
            }
        }
        // Everything else: parameters broadcast, same-space reads align.
        _ => {
            if in_space == Space::Param && node.space != Space::Param {
                View::Broadcast
            } else {
                View::Aligned
            }
        }
    }
}

/// The endpoint group a [`OpKind::GatherMaxBwd`] inverts: the grouping of
/// its forward `Gather(Max)` node (`ByDst` if the forward node has been
/// rewritten into something without a grouping, which cannot happen for
/// IRs produced by the autodiff pass).
pub fn gather_max_bwd_group(ir: &IrGraph, fwd: NodeId) -> EdgeGroup {
    ir.node(fwd)
        .kind
        .reduction_group()
        .unwrap_or(EdgeGroup::ByDst)
}

/// The `(input position, endpoint group)` pairs of every input `consumer`
/// reads through a CSR endpoint. This is the view-derived replacement for
/// the old per-template endpoint tables in the fusion pass.
pub fn endpoint_reads(ir: &IrGraph, consumer: NodeId) -> Vec<(usize, EdgeGroup)> {
    let node = ir.node(consumer);
    (0..node.inputs.len())
        .filter_map(|pos| {
            edge_view(ir, consumer, pos)
                .endpoint_group()
                .map(|g| (pos, g))
        })
        .collect()
}

/// Input positions `consumer` reads through the *source* endpoint — the
/// reads that cannot see a same-segment tile buffer when the surrounding
/// kernel tiles by destination vertex.
pub fn src_side_reads(ir: &IrGraph, consumer: NodeId) -> Vec<usize> {
    endpoint_reads(ir, consumer)
        .into_iter()
        .filter_map(|(pos, g)| (g == EdgeGroup::BySrc).then_some(pos))
        .collect()
}

/// The endpoint group an *edge-space output* of `id` is coupled to, if
/// any: each output row depends on the whole edge group anchored at that
/// endpoint (a softmax normalizes over it, a mean backward divides by
/// its size, a max backward consults its argmax), not just on the row's
/// own inputs.
///
/// This is the view-level fact sharded execution keys on: a shard that
/// only holds *part* of a group (a replicated cut edge whose anchor
/// vertex lives elsewhere) computes such rows wrong, so the rows are
/// only authoritative in the shard owning the anchor endpoint. Rows of
/// un-anchored edge ops (`None`) are a pure function of their own
/// aligned/endpoint reads and are correct wherever those reads are.
pub fn output_anchor(ir: &IrGraph, id: NodeId) -> Option<EdgeGroup> {
    let node = ir.node(id);
    if node.space != Space::Edge {
        return None;
    }
    match &node.kind {
        OpKind::GatherMaxBwd { fwd } => Some(gather_max_bwd_group(ir, *fwd)),
        k => k.reduction_group(),
    }
}

/// The endpoint group at which an *edge-space operand* of `consumer`
/// must be group-complete and valid: `Reduce(g)` views iterate the edge
/// groups anchored at `g`, and group-coupled consumers (see
/// [`output_anchor`]) read their aligned edge operands a whole group at
/// a time. `None` for row-local reads — an aligned operand of an
/// un-anchored consumer only needs its own row.
///
/// Sharded execution derives its halo exchanges from exactly this:
/// before a consumer with `Some(g)` runs, the operand's rows anchored
/// at each shard's owned `g`-endpoints must hold the values the
/// unsharded session would see.
pub fn required_anchor(ir: &IrGraph, consumer: NodeId, pos: usize) -> Option<EdgeGroup> {
    let node = ir.node(consumer);
    let input = node.inputs[pos];
    if ir.node(input).space != Space::Edge {
        return None;
    }
    match edge_view(ir, consumer, pos) {
        View::Reduce(g) => Some(g),
        View::Aligned => node.kind.reduction_group(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrGraph;
    use crate::op::{BinaryFn, Dim, ReduceFn};

    fn edge_fixture() -> (IrGraph, NodeId, NodeId, NodeId) {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(4));
        let e = ir.scatter(ScatterFn::Bin(BinaryFn::Add), h, h).unwrap();
        let v = ir.gather(ReduceFn::Max, EdgeGroup::ByDst, e).unwrap();
        (ir, h, e, v)
    }

    #[test]
    fn scatter_views_are_endpoint_reads() {
        let (ir, _, e, _) = edge_fixture();
        assert_eq!(edge_view(&ir, e, 0), View::BySrc);
        assert_eq!(edge_view(&ir, e, 1), View::ByDst);
        assert_eq!(endpoint_reads(&ir, e).len(), 2);
        assert_eq!(src_side_reads(&ir, e), vec![0]);
    }

    #[test]
    fn copy_u_reads_only_the_source_side() {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(4));
        let e = ir.scatter(ScatterFn::CopyU, h, h).unwrap();
        assert_eq!(edge_view(&ir, e, 0), View::BySrc);
        assert_eq!(endpoint_reads(&ir, e), vec![(0, EdgeGroup::BySrc)]);
    }

    #[test]
    fn gather_view_is_a_reduction() {
        let (ir, _, _, v) = edge_fixture();
        assert_eq!(edge_view(&ir, v, 0), View::Reduce(EdgeGroup::ByDst));
        assert!(endpoint_reads(&ir, v).is_empty());
    }

    #[test]
    fn gather_max_bwd_inherits_the_forward_group() {
        let (mut ir, _, _, v) = edge_fixture();
        let dim = ir.node(v).dim;
        let seed = ir.push_raw(OpKind::GradSeed, vec![], Space::Vertex, dim, "seed");
        let bwd = ir.push_raw(
            OpKind::GatherMaxBwd { fwd: v },
            vec![seed],
            Space::Edge,
            dim,
            "gmb",
        );
        assert_eq!(gather_max_bwd_group(&ir, v), EdgeGroup::ByDst);
        assert_eq!(edge_view(&ir, bwd, 0), View::ByDst);
    }

    #[test]
    fn params_broadcast_into_nonparam_spaces() {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(4));
        let w = ir.param("w", 4, 2);
        let y = ir.linear(h, w).unwrap();
        assert_eq!(edge_view(&ir, y, 0), View::Aligned);
        assert_eq!(edge_view(&ir, y, 1), View::Broadcast);
    }
}

//! Execution plans: the output of the compilation pipeline.
//!
//! A plan is the IR plus (a) a partition of its compute nodes into
//! [`Kernel`]s (the fusion decision, §5), (b) the stash/recompute split for
//! training (§6), and (c) enough structure to derive kernel resource
//! profiles and a memory schedule. The same plan drives both the CPU
//! reference executor (`gnnopt-exec`) and the analytical device model
//! (`gnnopt-sim`).

use crate::cost::CostModel;
use crate::exec_policy::ExecPolicy;
use crate::ir::{IrGraph, Phase};
use crate::lower::KernelProgram;
use crate::op::{NodeId, OpKind};
use gnnopt_graph::GraphStats;
use gnnopt_sim::{Device, ExecStats, KernelProfile, MemoryError, MemoryTracker, ThreadMapping};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One launched kernel: a set of IR nodes executed together.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel index in schedule order.
    pub id: usize,
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
    /// Thread mapping (unified across all members, §5).
    pub mapping: ThreadMapping,
    /// True if a reduction's grouping diverges from the kernel's primary
    /// mapping direction and therefore needs atomics.
    pub atomic_reduction: bool,
    /// Forward nodes recomputed inside this (backward) kernel instead of
    /// being read from a stash (§6).
    pub recompute: Vec<NodeId>,
}

impl Kernel {
    /// True when the kernel touches graph topology.
    pub fn is_graph_kernel(&self, ir: &IrGraph) -> bool {
        self.nodes
            .iter()
            .chain(&self.recompute)
            .any(|&n| ir.node(n).kind.is_graph_op())
    }
}

/// A fully compiled model: IR + kernel schedule + training memory policy.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// The IR (forward, plus backward when `training`).
    pub ir: IrGraph,
    /// Kernels in schedule order (forward phase first).
    pub kernels: Vec<Kernel>,
    /// Forward nodes whose outputs persist for the backward pass.
    pub stash: BTreeSet<NodeId>,
    /// Forward nodes whose auxiliaries (softmax max/denominator, argmax
    /// tables) are stashed, persisting from forward to backward.
    pub aux_stash: BTreeSet<NodeId>,
    /// `(param, grad)` node pairs (empty for inference plans).
    pub param_grads: Vec<(NodeId, NodeId)>,
    /// Whether the plan includes a backward pass.
    pub training: bool,
    /// CPU execution policy the executor should run this plan under
    /// (from [`crate::pipeline::CompileOptions::exec`]). Its `fused`
    /// flag selects the lowered [`KernelProgram`] interpreter by default;
    /// the session-level `GNNOPT_FUSED` override wins either way.
    pub exec: ExecPolicy,
    /// Tiled lowering of each kernel, indexed by kernel id. Lowering is
    /// total (see [`crate::lower`]): every kernel has a program, so fused
    /// execution never falls back per kernel. Always populated so a
    /// session can force fused execution on plans whose policy keeps
    /// `fused` off.
    pub programs: Vec<KernelProgram>,
}

impl ExecutionPlan {
    /// Maps each node to the kernel that (primarily) computes it.
    pub fn node_kernel(&self) -> HashMap<NodeId, usize> {
        let mut m = HashMap::new();
        for k in &self.kernels {
            for &n in &k.nodes {
                m.insert(n, k.id);
            }
        }
        m
    }

    /// Nodes of a kernel whose outputs leave the kernel: consumed by
    /// another kernel (that does not itself recompute the value), model
    /// outputs, or stashed values.
    pub fn materialized_nodes(&self, kernel: &Kernel) -> Vec<NodeId> {
        let members: HashSet<NodeId> = kernel.nodes.iter().copied().collect();
        let consumers = self.ir.consumers();
        // A consumer kernel satisfies its read internally when the node is
        // among its members or its recompute closure.
        let mut satisfied: HashMap<NodeId, Vec<&Kernel>> = HashMap::new();
        for n in &kernel.nodes {
            satisfied.insert(*n, Vec::new());
        }
        for k in &self.kernels {
            for &n in k.nodes.iter().chain(&k.recompute) {
                if let Some(v) = satisfied.get_mut(&n) {
                    v.push(k);
                }
            }
        }
        kernel
            .nodes
            .iter()
            .copied()
            .filter(|&n| {
                let escapes = consumers[n].iter().any(|&c| {
                    if members.contains(&c) {
                        return false;
                    }
                    // Is the consumer inside a kernel that recomputes n?
                    !self.kernels.iter().any(|k| {
                        (k.nodes.contains(&c) || k.recompute.contains(&c))
                            && k.recompute.contains(&n)
                    })
                });
                let is_output = self.ir.outputs().contains(&n);
                let stashed = self.stash.contains(&n);
                let dead = consumers[n].is_empty() && !is_output;
                escapes || is_output || stashed || dead
            })
            .collect()
    }

    /// Resource profile of every kernel under the cost model.
    pub fn profiles(&self, stats: &GraphStats) -> Vec<KernelProfile> {
        let cm = CostModel::new(stats);
        let consumers = self.ir.consumers();
        self.kernels
            .iter()
            .map(|k| self.kernel_profile(k, &cm, &consumers))
            .collect()
    }

    fn kernel_profile(
        &self,
        kernel: &Kernel,
        cm: &CostModel<'_>,
        consumers: &[Vec<NodeId>],
    ) -> KernelProfile {
        let members: HashSet<NodeId> = kernel
            .nodes
            .iter()
            .chain(&kernel.recompute)
            .copied()
            .collect();
        let mut flops = 0u64;
        let mut reads: HashMap<NodeId, u64> = HashMap::new();
        let mut extra_read = 0u64;
        let mut writes = 0u64;

        for &nid in kernel.nodes.iter().chain(&kernel.recompute) {
            let node = self.ir.node(nid);
            let inputs: Vec<&crate::ir::Node> =
                node.inputs.iter().map(|&i| self.ir.node(i)).collect();
            // A softmax recomputed from its stashed max/denominator costs
            // half the forward flops (no reduction passes).
            let node_flops = if kernel.recompute.contains(&nid)
                && node.kind == OpKind::EdgeSoftmax
                && self.aux_stash.contains(&nid)
            {
                cm.flops(node, &inputs) / 2
            } else {
                cm.flops(node, &inputs)
            };
            flops += node_flops;

            for &i in &node.inputs {
                if members.contains(&i) {
                    continue;
                }
                let b = cm.read_bytes(node, self.ir.node(i));
                let e = reads.entry(i).or_insert(0);
                *e = (*e).max(b);
            }
            // Auxiliary reads: argmax tables and softmax statistics.
            if let OpKind::GatherMaxBwd { fwd } = node.kind {
                extra_read += cm.aux_bytes(self.ir.node(fwd));
            }
            if kernel.recompute.contains(&nid) && self.aux_stash.contains(&nid) {
                extra_read += cm.aux_bytes(node);
            }
        }

        if kernel.is_graph_kernel(&self.ir) {
            extra_read += cm.index_bytes();
        }

        for &nid in &self.materialized_nodes(kernel) {
            let _ = consumers; // materialization already uses consumer info
            writes += cm.out_bytes(self.ir.node(nid));
        }
        // Auxiliary stashes written by this kernel's forward members.
        for &nid in &self.aux_stash {
            if kernel.nodes.contains(&nid) {
                writes += cm.aux_bytes(self.ir.node(nid));
            }
        }

        KernelProfile {
            flops,
            bytes_read: reads.values().sum::<u64>() + extra_read,
            bytes_written: writes,
            mapping: kernel.mapping,
            atomic_reduction: kernel.atomic_reduction,
        }
    }

    /// Replays the schedule against a capacity-limited allocator.
    ///
    /// Returns `(peak_bytes, stash_bytes)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] when the live set exceeds `capacity`.
    pub fn memory_replay(
        &self,
        stats: &GraphStats,
        capacity: u64,
    ) -> Result<(u64, u64), MemoryError> {
        let cm = CostModel::new(stats);
        let consumers = self.ir.consumers();
        let node_kernel = self.node_kernel();
        let num_kernels = self.kernels.len();

        // Which kernels read node n (primary consumption + recompute
        // closures re-reading checkpoints).
        let mut readers: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for k in &self.kernels {
            let members: HashSet<NodeId> = k.nodes.iter().chain(&k.recompute).copied().collect();
            for &nid in k.nodes.iter().chain(&k.recompute) {
                for &i in &self.ir.node(nid).inputs {
                    if !members.contains(&i) {
                        readers.entry(i).or_default().push(k.id);
                    }
                }
                if let OpKind::GatherMaxBwd { fwd } = self.ir.node(nid).kind {
                    readers.entry(fwd).or_default().push(k.id);
                }
            }
        }

        // Lifetime per materialized tensor: birth kernel → death kernel.
        let mut births: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); num_kernels + 1];
        let mut deaths: Vec<Vec<NodeId>> = vec![Vec::new(); num_kernels + 1];
        let mut stash_bytes = 0u64;

        for node in self.ir.nodes() {
            let bytes = cm.out_bytes(node);
            let (birth, leaf) = match node.kind {
                OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed => {
                    (0usize, true)
                }
                _ => match node_kernel.get(&node.id) {
                    Some(&k) => (k + 1, false),
                    // Node fused away (never materialized): skip.
                    None => continue,
                },
            };
            if !leaf {
                // Only materialized outputs occupy DRAM.
                let kernel = &self.kernels[birth - 1];
                if !self.materialized_nodes(kernel).contains(&node.id) {
                    continue;
                }
            }
            let mut death = readers
                .get(&node.id)
                .and_then(|r| r.iter().max())
                .map_or(birth, |&k| k + 1);
            let is_output = self.ir.outputs().contains(&node.id);
            let persistent = leaf
                || is_output
                || matches!(
                    node.kind,
                    OpKind::LinearBwdWeight
                        | OpKind::HeadDotBwdParam
                        | OpKind::GaussianBwdMu
                        | OpKind::GaussianBwdSigma
                        | OpKind::EmbedRows { .. }
                );
            if persistent {
                death = num_kernels;
            }
            if self.stash.contains(&node.id) && node.phase == Phase::Forward {
                stash_bytes += bytes;
                // Stashed values persist at least until their last
                // backward reader.
                death = death.max(
                    readers
                        .get(&node.id)
                        .and_then(|r| r.iter().max())
                        .map_or(num_kernels, |&k| k + 1),
                );
            }
            births[birth].push((node.id, bytes));
            deaths[death.min(num_kernels)].push(node.id);
        }

        // Aux stashes live from their producing kernel to schedule end.
        for &nid in &self.aux_stash {
            if let Some(&k) = node_kernel.get(&nid) {
                let bytes = cm.aux_bytes(self.ir.node(nid));
                births[k + 1].push((usize::MAX - nid, bytes));
                stash_bytes += bytes;
            }
        }

        let mut tracker = MemoryTracker::with_capacity(capacity);
        let mut handles: HashMap<NodeId, u64> = HashMap::new();
        let _ = consumers;
        for step in 0..=num_kernels {
            for &(nid, bytes) in &births[step] {
                let label = if nid > usize::MAX / 2 {
                    format!("aux:{}", usize::MAX - nid)
                } else {
                    self.ir.node(nid).name.clone()
                };
                let h = tracker.alloc(bytes, &label)?;
                handles.insert(nid, h);
            }
            for &nid in &deaths[step] {
                if let Some(h) = handles.remove(&nid) {
                    tracker.free(h);
                }
            }
        }
        Ok((tracker.peak_bytes(), stash_bytes))
    }

    /// Full analytical statistics of the plan on a device.
    pub fn exec_stats(&self, device: &Device, stats: &GraphStats) -> ExecStats {
        let profiles = self.profiles(stats);
        let (peak, stash) = self
            .memory_replay(stats, u64::MAX)
            .expect("unbounded replay cannot OOM");
        let mut s = ExecStats {
            kernels: profiles.len() as u64,
            peak_memory: peak,
            stashed_bytes: stash,
            ..ExecStats::default()
        };
        for p in &profiles {
            s.flops += p.flops;
            s.bytes_read += p.bytes_read;
            s.bytes_written += p.bytes_written;
            s.latency += device.kernel_latency(p, stats);
        }
        s
    }

    /// Checks whether the plan fits in the device's DRAM.
    ///
    /// # Errors
    ///
    /// Returns the OOM description when it does not fit.
    pub fn check_fits(&self, device: &Device, stats: &GraphStats) -> Result<u64, MemoryError> {
        self.memory_replay(stats, device.usable_memory())
            .map(|p| p.0)
    }
}

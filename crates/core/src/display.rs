//! Human-readable and Graphviz renderings of IR graphs and execution
//! plans — the debugging surface for every pass.

use crate::ir::{IrGraph, Phase};
use crate::lower::StepExec;
use crate::op::{EdgeGroup, OpKind, Space};
use crate::plan::ExecutionPlan;
use crate::view::{edge_view, View};
use std::fmt::Write as _;

/// One line per node: `id name space dim phase ← inputs`.
pub fn dump_ir(ir: &IrGraph) -> String {
    let mut out = String::new();
    for n in ir.nodes() {
        let space = match n.space {
            Space::Vertex => "V",
            Space::Edge => "E",
            Space::Param => "P",
        };
        let phase = match n.phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
        };
        let marker = if ir.outputs().contains(&n.id) {
            " *out"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "%{:<3} {:<24} {space}[{},{}] {phase} ← {:?}{marker}",
            n.id, n.name, n.dim.heads, n.dim.feat, n.inputs
        );
    }
    out
}

/// Graphviz `dot` rendering of the IR with kernels as clusters (when a
/// plan is supplied). Paste into any dot viewer.
pub fn to_dot(ir: &IrGraph, plan: Option<&ExecutionPlan>) -> String {
    let mut out = String::from("digraph gnn {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    let owner: std::collections::HashMap<usize, usize> = plan
        .map(|p| {
            p.kernels
                .iter()
                .flat_map(|k| k.nodes.iter().map(move |&n| (n, k.id)))
                .collect()
        })
        .unwrap_or_default();

    if let Some(plan) = plan {
        for k in &plan.kernels {
            let _ = writeln!(
                out,
                "  subgraph cluster_k{} {{ label=\"kernel {} [{:?}]\"; style=dashed;",
                k.id, k.id, k.mapping
            );
            for &n in &k.nodes {
                let _ = writeln!(out, "    n{n};");
            }
            out.push_str("  }\n");
        }
    }
    for n in ir.nodes() {
        let color = match (n.phase, n.space) {
            (Phase::Backward, _) => "lightpink",
            (_, Space::Edge) => "lightyellow",
            (_, Space::Vertex) => "lightblue",
            (_, Space::Param) => "lightgrey",
        };
        let extra = if owner.contains_key(&n.id)
            || matches!(
                n.kind,
                OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed
            ) {
            ""
        } else {
            ", style=dotted" // fused-away / unscheduled
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n[{},{}]\", fillcolor={color}, style=filled{extra}];",
            n.id, n.name, n.dim.heads, n.dim.feat
        );
        for &i in &n.inputs {
            let _ = writeln!(out, "  n{i} -> n{};", n.id);
        }
    }
    out.push_str("}\n");
    out
}

/// Compact plan summary: one line per kernel with mapping, member count
/// and recompute count.
pub fn dump_plan(plan: &ExecutionPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan: {} kernels, {} stashed, {} aux-stashed, training={}",
        plan.kernels.len(),
        plan.stash.len(),
        plan.aux_stash.len(),
        plan.training
    );
    for k in &plan.kernels {
        let names: Vec<&str> = k
            .nodes
            .iter()
            .map(|&n| plan.ir.node(n).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  k{:<3} {:?}{} [{}]{}",
            k.id,
            k.mapping,
            if k.atomic_reduction { "+atomic" } else { "" },
            names.join(", "),
            if k.recompute.is_empty() {
                String::new()
            } else {
                format!(" recompute×{}", k.recompute.len())
            }
        );
    }
    out
}

fn view_label(v: View) -> &'static str {
    match v {
        View::Aligned => "aligned",
        View::BySrc => "by-src",
        View::ByDst => "by-dst",
        View::Reduce(EdgeGroup::ByDst) => "reduce:by-dst",
        View::Reduce(EdgeGroup::BySrc) => "reduce:by-src",
        View::Broadcast => "bcast",
        View::Stash => "stash",
        View::Unused => "unused",
    }
}

/// Lowered cluster structure: one block per kernel program showing the
/// kernel boundary (materialization class of every step), the streamed
/// segment chains, and the per-edge view each step reads its inputs
/// through.
///
/// Sample line — step `%14` of segment 0, tiled, spilled to an interior
/// tensor, reading input `%12` through the destination endpoint:
///
/// ```text
///   seg 0 (tiled stream):
///     %14 gather_sum   V[1,4] interior  ← %12:reduce:by-dst
/// ```
pub fn dump_programs(plan: &ExecutionPlan) -> String {
    let ir = &plan.ir;
    let mut out = String::new();
    for (k, prog) in plan.kernels.iter().zip(&plan.programs) {
        // Count populated segments: full steps claim a fresh segment id
        // even when the preceding tiled segment ended up empty, so the
        // last id can overshoot the number of segments that exist.
        let segments = prog
            .steps
            .iter()
            .map(|s| s.segment)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let _ = writeln!(
            out,
            "k{:<3} {:?} {} steps, {} segment{}",
            k.id,
            k.mapping,
            prog.steps.len(),
            segments,
            if segments == 1 { "" } else { "s" }
        );
        let mut seg = usize::MAX;
        for s in &prog.steps {
            if s.segment != seg {
                seg = s.segment;
                let flavor = match s.exec {
                    StepExec::Tiled => "tiled stream",
                    StepExec::Full => "full",
                };
                let _ = writeln!(out, "  seg {seg} ({flavor}):");
            }
            let node = ir.node(s.node);
            let space = match s.space {
                Space::Vertex => "V",
                Space::Edge => "E",
                Space::Param => "P",
            };
            let storage = match s.storage {
                crate::lower::Storage::Materialized => "materialized",
                crate::lower::Storage::Interior => "interior",
                crate::lower::Storage::Scratch => "scratch",
                crate::lower::Storage::Prelude => "prelude",
            };
            let reads: Vec<String> = node
                .inputs
                .iter()
                .enumerate()
                .filter(|&(pos, _)| edge_view(ir, s.node, pos) != View::Unused)
                .map(|(pos, &i)| format!("%{i}:{}", view_label(edge_view(ir, s.node, pos))))
                .collect();
            let _ = writeln!(
                out,
                "    %{:<3} {:<24} {space}[{}] {:<12}{}{}",
                s.node,
                node.name,
                s.cols,
                storage,
                if s.recompute { " recompute" } else { "" },
                if reads.is_empty() {
                    String::new()
                } else {
                    format!(" ← {}", reads.join(" "))
                }
            );
        }
    }
    out
}

/// Offset map of a [`MemoryPlan`](crate::memplan::MemoryPlan): one line
/// per planned region — tensor, arena offset, granted/requested size,
/// lifetime interval in kernel positions — plus the arena summary.
///
/// Sample line — node `%14`, 2 KiB at offset 4096, live from position 3
/// until position 5:
///
/// ```text
///   %14  gather_sum              @4096     2048 B  [3, 5]
/// ```
pub fn dump_memory(plan: &ExecutionPlan, mem: &crate::memplan::MemoryPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "memory plan ({}): arena {} B across {} regions, {} positions, aux {} B",
        if mem.fused { "fused" } else { "reference" },
        mem.arena_bytes,
        mem.buffers().len(),
        mem.positions,
        mem.aux_bytes
    );
    for r in &mem.regions {
        let life = if r.death == crate::memplan::PERSISTENT {
            format!("[{}, ∞]", r.birth)
        } else {
            format!("[{}, {}]", r.birth, r.death)
        };
        let granted = if r.bytes == r.request {
            String::new()
        } else {
            format!(" (in {} B region)", r.bytes)
        };
        let _ = writeln!(
            out,
            "  %{:<3} {:<24} @{:<10} {:>10} B  {life}{granted}",
            r.node,
            plan.ir.node(r.node).name,
            r.offset,
            r.request
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memplan::plan_memory;
    use crate::op::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn};
    use crate::pipeline::{compile, CompileOptions};

    fn toy() -> IrGraph {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let p = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), p, p).unwrap();
        // A softmax makes the training plan exercise recomputation.
        let sm = g.edge_softmax(e).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, sm).unwrap();
        g.mark_output(v);
        g
    }

    #[test]
    fn dump_ir_lists_every_node() {
        let g = toy();
        let s = dump_ir(&g);
        assert_eq!(s.lines().count(), g.len());
        assert!(s.contains("*out"));
        assert!(s.contains("scatter"));
    }

    #[test]
    fn dot_is_wellformed() {
        let g = toy();
        let compiled = compile(&g, true, &CompileOptions::ours()).unwrap();
        let dot = to_dot(&compiled.plan.ir, Some(&compiled.plan));
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("subgraph cluster_k0"));
        // Every node appears.
        for n in compiled.plan.ir.nodes() {
            assert!(dot.contains(&format!("n{} [", n.id)));
        }
    }

    #[test]
    fn plan_summary_mentions_recompute() {
        let g = toy();
        let compiled = compile(&g, true, &CompileOptions::ours()).unwrap();
        let s = dump_plan(&compiled.plan);
        assert!(s.contains("kernels"));
        assert!(s.contains("recompute"), "plan summary: {s}");
    }

    #[test]
    fn program_dump_renders_clusters_views_and_storage() {
        let g = toy();
        let compiled = compile(&g, true, &CompileOptions::ours()).unwrap();
        let s = dump_programs(&compiled.plan);
        // Every kernel appears with its segment structure …
        for k in &compiled.plan.kernels {
            assert!(s.contains(&format!("k{:<3}", k.id)), "kernel {}: {s}", k.id);
        }
        // … every step appears with a storage class …
        for prog in &compiled.plan.programs {
            for st in &prog.steps {
                assert!(
                    s.contains(&format!("%{:<3}", st.node)),
                    "step {}: {s}",
                    st.node
                );
            }
        }
        assert!(s.contains("materialized"), "boundary class: {s}");
        assert!(s.contains("scratch"), "internal class: {s}");
        // … and endpoint views annotate the cross-space reads (the
        // scatter reads its vertex operand by-src, the gather reduces
        // by-dst).
        assert!(s.contains("by-src"), "endpoint views: {s}");
        assert!(s.contains("reduce:by-dst"), "reduction views: {s}");
        assert!(s.contains("tiled stream"), "streamed chains: {s}");
    }

    #[test]
    fn memory_dump_renders_every_region() {
        let g = toy();
        let compiled = compile(&g, true, &CompileOptions::ours()).unwrap();
        let mem = plan_memory(&compiled.plan, 16, 48, true);
        let s = dump_memory(&compiled.plan, &mem);
        assert!(s.contains("arena"), "summary: {s}");
        for r in &mem.regions {
            assert!(
                s.contains(&format!("%{:<3}", r.node)),
                "region {}: {s}",
                r.node
            );
        }
        assert!(s.contains('∞'), "persistent lifetimes: {s}");
    }
}

//! The execution policy: how the CPU reference executor runs the
//! compiled kernels.
//!
//! The compiler's output (the [`crate::plan::ExecutionPlan`]) describes
//! *what* to run; [`ExecPolicy`] describes *how wide* to run it on the
//! host CPU. It is carried by [`crate::pipeline::CompileOptions`] into the
//! plan so a single compile call fixes both, and `gnnopt-exec` resolves
//! the `threads = 0` auto marker against the shared pool-size detection in
//! `gnnopt_tensor::parallel` (which honours the `GNNOPT_THREADS`
//! environment override).

/// Thread-parallelism policy for the CPU reference executor.
///
/// The parallel kernels partition their output over contiguous row (or CSR
/// vertex) ranges with deterministic chunk boundaries, so for any
/// `threads` value the result is **bit-identical** to the serial path —
/// no floating-point reduction ever crosses a chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker threads for graph/row kernels. `0` means auto-detect: the
    /// `GNNOPT_THREADS` environment variable when set, else hardware
    /// parallelism (resolved by the executor at session creation).
    pub threads: usize,
    /// Minimum per-kernel work (output elements, or edge touches for
    /// gather-style kernels) below which the kernel stays serial; thread
    /// spawning would otherwise dominate.
    pub parallel_threshold: usize,
    /// Edge budget per tile of the fused tiled interpreter: destination
    /// vertex ranges are cut so each tile covers at most this many edges
    /// (a single vertex whose in-degree exceeds the budget still gets one
    /// intact tile — reduction groups never split). Smaller tiles bound
    /// scratch tighter; the value never affects results, which are
    /// bit-identical to the reference path for any tiling.
    pub tile_edges: usize,
}

impl ExecPolicy {
    /// Work threshold below which parallel dispatch is not worth the
    /// `std::thread::scope` spawn overhead (~tens of µs per worker).
    pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 17;

    /// Default per-tile edge budget of the fused interpreter: at the
    /// typical feature widths (≤ a few hundred floats per edge row) a
    /// tile's scratch stays within L2-cache scale.
    pub const DEFAULT_TILE_EDGES: usize = 4096;

    /// Auto-detected thread count (the default for every preset).
    pub fn auto() -> Self {
        Self {
            threads: 0,
            parallel_threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
            tile_edges: Self::DEFAULT_TILE_EDGES,
        }
    }

    /// Single-threaded reference execution.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            parallel_threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
            tile_edges: Self::DEFAULT_TILE_EDGES,
        }
    }

    /// An explicit thread count (still subject to the work threshold).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            parallel_threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
            tile_edges: Self::DEFAULT_TILE_EDGES,
        }
    }

    /// True when this policy requests auto-detection.
    pub fn is_auto(&self) -> bool {
        self.threads == 0
    }

    /// Resolves the auto marker with the given detector, leaving explicit
    /// thread counts untouched.
    pub fn resolved(self, detect: impl FnOnce() -> usize) -> Self {
        Self {
            threads: if self.threads == 0 {
                detect().max(1)
            } else {
                self.threads
            },
            ..self
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_via_detector() {
        let p = ExecPolicy::auto().resolved(|| 6);
        assert_eq!(p.threads, 6);
        assert_eq!(p.parallel_threshold, ExecPolicy::DEFAULT_PARALLEL_THRESHOLD);
    }

    #[test]
    fn explicit_threads_win_over_detector() {
        let p = ExecPolicy::with_threads(3).resolved(|| 12);
        assert_eq!(p.threads, 3);
    }

    #[test]
    fn detector_zero_clamps_to_one() {
        assert_eq!(ExecPolicy::auto().resolved(|| 0).threads, 1);
    }

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecPolicy::serial().threads, 1);
        assert!(!ExecPolicy::serial().is_auto());
        assert!(ExecPolicy::default().is_auto());
    }
}

//! The execution policy: how the CPU reference executor runs the
//! compiled kernels.
//!
//! The compiler's output (the [`crate::plan::ExecutionPlan`]) describes
//! *what* to run; [`ExecPolicy`] describes *how wide* to run it on the
//! host CPU. It is carried by [`crate::pipeline::CompileOptions`] into the
//! plan so a single compile call fixes both, and `gnnopt-exec` resolves
//! the `threads = 0` auto marker against the shared pool-size detection in
//! `gnnopt_tensor::parallel` (which honours the `GNNOPT_THREADS`
//! environment override).
//!
//! The policy also carries the *runtime preprocessing* choice of §8: a
//! [`ReorderPolicy`] naming the vertex-reordering strategy the executor
//! applies to the CSR graph once at session build (GNNAdvisor-style
//! locality preprocessing, implemented in `gnnopt-reorder`). The session
//! permutes the graph and every vertex/edge-space binding on the way in
//! and inverse-permutes user-facing outputs on the way out, so reordering
//! is invisible to callers except through its locality effect (and the
//! `GNNOPT_REORDER` environment override, see `gnnopt-exec`).
//!
//! Since PR 5 the policy also selects the dense compute engine: a
//! [`GemmKernel`] (re-exported from `gnnopt_tensor::gemm`) choosing
//! between the register-tiled blocked GEMM and the naive reference loops
//! for every `Linear`-family kernel the session runs. Both produce
//! bit-identical results; the `GNNOPT_GEMM` environment variable
//! overrides the choice per process (see `gnnopt-exec`).

pub use gnnopt_tensor::gemm::GemmKernel;

/// Vertex-reordering strategy the executor applies to the graph at
/// session build time (runtime preprocessing, §8 related work).
///
/// Every strategy is a bijective relabeling computed by `gnnopt-reorder`;
/// the session runs all kernels on the relabeled graph and restores the
/// caller's vertex order on every output, so the choice never changes
/// *what* is computed. Per-destination reduction order is preserved by
/// the stable CSR permutation, so forward results are bit-identical to
/// the identity ordering; backward `BySrc` reductions re-associate, so
/// parameter gradients agree only up to floating-point reassociation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderPolicy {
    /// Keep the caller's vertex ids (the default everywhere).
    #[default]
    None,
    /// Descending-degree order: hub rows share cache lines.
    DegreeSort,
    /// Breadth-first order from vertex 0 (unreached components appended).
    Bfs,
    /// Reverse Cuthill–McKee: the classic bandwidth minimizer.
    Rcm,
    /// Label-propagation clustered order (Rabbit-inspired).
    Cluster,
    /// Pick the candidate (including identity) with the smallest mean
    /// gather index gap (`gnnopt_reorder::locality::report`).
    Auto,
}

impl ReorderPolicy {
    /// Label-propagation sweeps the `Cluster` strategy runs — the single
    /// source of truth shared by the executor, the figure binaries, and
    /// the tests that reproduce a session's resolved permutation.
    pub const CLUSTER_SWEEPS: usize = 4;

    /// Parses the `GNNOPT_REORDER` spelling of a policy.
    ///
    /// Accepted values: `0`/`none`/`off` (identity), `degree`/
    /// `degree-sort`, `bfs`, `rcm`, `cluster`, and `1`/`auto`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the valid spellings on
    /// anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "0" | "none" | "off" => Ok(Self::None),
            "degree" | "degree-sort" | "degree_sort" => Ok(Self::DegreeSort),
            "bfs" => Ok(Self::Bfs),
            "rcm" => Ok(Self::Rcm),
            "cluster" => Ok(Self::Cluster),
            "1" | "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown reorder strategy '{other}' (expected 0|none|degree|bfs|rcm|cluster|auto)"
            )),
        }
    }
}

/// Thread-parallelism policy for the CPU reference executor.
///
/// The parallel kernels partition their output over contiguous row (or CSR
/// vertex) ranges with deterministic chunk boundaries, so for any
/// `threads` value the result is **bit-identical** to the serial path —
/// no floating-point reduction ever crosses a chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker threads for graph/row kernels. `0` means auto-detect: the
    /// `GNNOPT_THREADS` environment variable when set, else hardware
    /// parallelism (resolved by the executor at session creation).
    pub threads: usize,
    /// Minimum per-kernel work (output elements, or edge touches for
    /// gather-style kernels) below which the kernel stays serial; thread
    /// spawning would otherwise dominate.
    pub parallel_threshold: usize,
    /// Edge budget per tile of the fused tiled interpreter: destination
    /// vertex ranges are cut so each tile covers at most this many edges
    /// (a single vertex whose in-degree exceeds the budget still gets one
    /// intact tile — reduction groups never split). Smaller tiles bound
    /// scratch tighter; the value never affects results, which are
    /// bit-identical to the reference path for any tiling.
    pub tile_edges: usize,
    /// Bind fused-interpreter workers to bounded-size **edge groups**
    /// (the destination tiles, each holding at most [`Self::tile_edges`]
    /// edges) instead of raw tile counts: worker boundaries are cut so
    /// every worker owns roughly the same number of *edges*, the
    /// GNNAdvisor neighbor-grouping discipline that flattens degree skew
    /// on power-law graphs. Purely a scheduling choice — workers still
    /// write disjoint contiguous row chunks, so results are bit-identical
    /// either way.
    pub group_workers: bool,
    /// Vertex-reordering preprocessing applied at session build (see
    /// [`ReorderPolicy`]); overridable per process with `GNNOPT_REORDER`.
    pub reorder: ReorderPolicy,
    /// Dense GEMM engine for the `Linear`-family kernels (blocked by
    /// default; results are bit-identical either way). Overridable per
    /// process with `GNNOPT_GEMM=naive|blocked`.
    pub gemm: GemmKernel,
    /// Run the fused tiled interpreter instead of the node-by-node
    /// reference executor. Compiled into the plan by the presets (`Ours`
    /// enables it) and overridable per process with `GNNOPT_FUSED` or per
    /// session through the `SessionBuilder` in `gnnopt-exec`. Results are
    /// bit-identical either way.
    pub fused: bool,
    /// In-degree above which a destination row's reduction is split into
    /// fixed [`Self::HEAVY_ROW_CHUNK_EDGES`]-edge chunks whose partial
    /// rows are combined in ascending chunk order — the heavy half of the
    /// executor's degree-binned CSR dispatch. Chunk boundaries are a pure
    /// function of the row's edge list (never of the thread count), so
    /// results are identical for every `threads` value; hub rows merely
    /// become schedulable across workers instead of serializing one.
    pub heavy_row_degree: usize,
    /// Scan every kernel output for non-finite values, localizing the
    /// first one to `(kernel, node, row, col)` as a typed error
    /// instead of letting a NaN surface as garbage loss epochs later.
    /// One streaming pass per output; off by default so warmed steps
    /// stay allocation- and scan-free. Overridable per process with
    /// `GNNOPT_GUARD=0|1` (see `gnnopt-exec`).
    pub guard: bool,
}

impl ExecPolicy {
    /// Work threshold below which parallel dispatch is not worth the
    /// `std::thread::scope` spawn overhead (~tens of µs per worker).
    pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 17;

    /// Default per-tile edge budget of the fused interpreter: at the
    /// typical feature widths (≤ a few hundred floats per edge row) a
    /// tile's scratch stays within L2-cache scale.
    pub const DEFAULT_TILE_EDGES: usize = 4096;

    /// Fixed chunk length (in edges) for heavy-row reductions: rows whose
    /// degree exceeds [`Self::heavy_row_degree`] are reduced as
    /// per-chunk partials combined in ascending chunk order. One shared
    /// constant so the reference kernels and the fused interpreter can
    /// never disagree on the association pattern.
    pub const HEAVY_ROW_CHUNK_EDGES: usize = 1024;

    /// Default [`Self::heavy_row_degree`]: far above the mean degree of
    /// every benchmark graph, so only genuine power-law hubs take the
    /// chunked path.
    pub const DEFAULT_HEAVY_ROW_DEGREE: usize = 1 << 12;

    /// Auto-detected thread count (the default for every preset).
    pub fn auto() -> Self {
        Self {
            threads: 0,
            parallel_threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
            tile_edges: Self::DEFAULT_TILE_EDGES,
            group_workers: false,
            reorder: ReorderPolicy::None,
            gemm: GemmKernel::default(),
            fused: false,
            heavy_row_degree: Self::DEFAULT_HEAVY_ROW_DEGREE,
            guard: false,
        }
    }

    /// Single-threaded reference execution.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::auto()
        }
    }

    /// An explicit thread count (still subject to the work threshold).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::auto()
        }
    }

    /// The same policy with a vertex-reordering strategy.
    pub fn reordered(self, reorder: ReorderPolicy) -> Self {
        Self { reorder, ..self }
    }

    /// The same policy with grouped worker binding in the fused
    /// interpreter (edge-balanced worker boundaries over the tiles).
    pub fn grouped(self) -> Self {
        Self {
            group_workers: true,
            ..self
        }
    }

    /// The same policy with an explicit dense GEMM engine.
    pub fn with_gemm(self, gemm: GemmKernel) -> Self {
        Self { gemm, ..self }
    }

    /// The same policy with the fused tiled interpreter toggled.
    pub fn with_fused(self, fused: bool) -> Self {
        Self { fused, ..self }
    }

    /// The same policy with an explicit heavy-row degree threshold
    /// (tests lower it to exercise the chunked hub-row path on small
    /// graphs).
    pub fn with_heavy_row_degree(self, heavy_row_degree: usize) -> Self {
        Self {
            heavy_row_degree,
            ..self
        }
    }

    /// The same policy with the per-kernel numeric guard toggled.
    pub fn with_guard(self, guard: bool) -> Self {
        Self { guard, ..self }
    }

    /// True when this policy requests auto-detection.
    pub fn is_auto(&self) -> bool {
        self.threads == 0
    }

    /// Resolves the auto marker with the given detector, leaving explicit
    /// thread counts untouched.
    pub fn resolved(self, detect: impl FnOnce() -> usize) -> Self {
        Self {
            threads: if self.threads == 0 {
                detect().max(1)
            } else {
                self.threads
            },
            ..self
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_via_detector() {
        let p = ExecPolicy::auto().resolved(|| 6);
        assert_eq!(p.threads, 6);
        assert_eq!(p.parallel_threshold, ExecPolicy::DEFAULT_PARALLEL_THRESHOLD);
    }

    #[test]
    fn explicit_threads_win_over_detector() {
        let p = ExecPolicy::with_threads(3).resolved(|| 12);
        assert_eq!(p.threads, 3);
    }

    #[test]
    fn detector_zero_clamps_to_one() {
        assert_eq!(ExecPolicy::auto().resolved(|| 0).threads, 1);
    }

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecPolicy::serial().threads, 1);
        assert!(!ExecPolicy::serial().is_auto());
        assert!(ExecPolicy::default().is_auto());
        assert_eq!(ExecPolicy::default().reorder, ReorderPolicy::None);
        assert!(!ExecPolicy::default().group_workers);
    }

    #[test]
    fn builders_compose() {
        let p = ExecPolicy::with_threads(2)
            .reordered(ReorderPolicy::Rcm)
            .grouped()
            .with_gemm(GemmKernel::Naive)
            .with_fused(true)
            .with_heavy_row_degree(64)
            .with_guard(true);
        assert_eq!(p.threads, 2);
        assert!(p.guard);
        assert!(!ExecPolicy::auto().guard, "guard defaults off");
        assert_eq!(p.reorder, ReorderPolicy::Rcm);
        assert!(p.group_workers);
        assert_eq!(p.gemm, GemmKernel::Naive);
        assert!(p.fused);
        assert_eq!(p.heavy_row_degree, 64);
        // `resolved` preserves the new knobs.
        let r = p.resolved(|| 8);
        assert_eq!(r.reorder, ReorderPolicy::Rcm);
        assert!(r.group_workers);
        assert_eq!(r.gemm, GemmKernel::Naive);
        assert!(r.fused);
        assert_eq!(r.heavy_row_degree, 64);
    }

    #[test]
    fn fused_defaults_off_with_sane_heavy_threshold() {
        let p = ExecPolicy::auto();
        assert!(!p.fused);
        assert_eq!(p.heavy_row_degree, ExecPolicy::DEFAULT_HEAVY_ROW_DEGREE);
        assert!(ExecPolicy::HEAVY_ROW_CHUNK_EDGES.is_power_of_two());
    }

    #[test]
    fn default_gemm_engine_is_blocked() {
        assert_eq!(ExecPolicy::auto().gemm, GemmKernel::Blocked);
        assert_eq!(ExecPolicy::serial().gemm, GemmKernel::Blocked);
    }

    #[test]
    fn reorder_policy_parses_every_spelling() {
        use ReorderPolicy as R;
        for (s, want) in [
            ("0", R::None),
            ("none", R::None),
            ("off", R::None),
            ("degree", R::DegreeSort),
            ("degree-sort", R::DegreeSort),
            ("bfs", R::Bfs),
            ("RCM", R::Rcm),
            ("cluster", R::Cluster),
            ("auto", R::Auto),
            ("1", R::Auto),
            (" rcm ", R::Rcm),
        ] {
            assert_eq!(R::parse(s), Ok(want), "spelling '{s}'");
        }
        let err = R::parse("banana").unwrap_err();
        assert!(err.contains("banana") && err.contains("rcm"));
    }
}

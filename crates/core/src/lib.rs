//! # gnnopt-core — the paper's primary contribution
//!
//! Reproduces *"Understanding GNN Computational Graph: A Coordinated
//! Computation, IO, and Memory Perspective"* (MLSys 2022): a fine-grained
//! GNN operator IR plus three coordinated inter-operator optimizations.
//!
//! * [`ir`] / [`op`] — the `Scatter` / `Gather` / `ApplyEdge` /
//!   `ApplyVertex` operator algebra and the computational-graph IR (§2.1,
//!   Appendix A);
//! * [`view`] — the per-edge `View` classification (how each op reads each
//!   input) that the fusion and lowering passes schedule from;
//! * [`autodiff`] — derives backward graphs inside the same algebra
//!   (Appendix B);
//! * [`cost`] — symbolic FLOP/IO/memory model per operator;
//! * [`reorg`] — propagation-postponed operator reorganization (§4);
//! * [`fusion`] — unified-thread-mapping kernel fusion (§5), including the
//!   restricted fusion capabilities of the DGL and fuseGNN baselines;
//! * [`recompute`] — intermediate-data recomputation for training (§6);
//! * [`plan`] / [`pipeline`] — the compiler driver producing an
//!   [`plan::ExecutionPlan`] from a model IR under a [`pipeline::Preset`].
//!
//! ```
//! use gnnopt_core::ir::IrGraph;
//! use gnnopt_core::op::{Dim, ScatterFn, ReduceFn, EdgeGroup, BinaryFn};
//!
//! # fn main() -> Result<(), gnnopt_core::ir::IrError> {
//! // h' = gather_sum(scatter_sub(h, h))  — a toy EdgeConv-like layer
//! let mut g = IrGraph::new();
//! let h = g.input_vertex("h", Dim::flat(16));
//! let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h)?;
//! let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, e)?;
//! g.mark_output(v);
//! # Ok(())
//! # }
//! ```

pub mod autodiff;
pub mod checkpoint;
pub mod cost;
pub mod display;
pub mod exec_policy;
pub mod fusion;
pub mod ir;
pub mod lower;
pub mod memplan;
pub mod op;
pub mod pipeline;
pub mod plan;
pub mod recompute;
pub mod reorg;
pub mod tune;
pub mod view;

/// Deterministic fault injection (failpoints): named sites across the
/// runtime armed via `GNNOPT_FAILPOINTS`, zero-cost when unset. The
/// machinery physically lives in `gnnopt_tensor::fault` (the buffer
/// pool, at the bottom of the crate stack, hosts a failpoint site) and
/// is re-exported here as the canonical path. See the module docs for
/// the spec grammar, the wired sites, and the determinism contract.
pub use gnnopt_tensor::fault;

pub use exec_policy::{ExecPolicy, GemmKernel, ReorderPolicy};
pub use ir::{IrError, IrGraph, Node, Phase};
pub use lower::{KernelProgram, ProgramStep, Storage};
pub use memplan::{kernel_phase, liveness, plan_memory, Liveness, MemRegion, MemoryPlan};
pub use op::{BinaryFn, Dim, EdgeGroup, NodeId, OpKind, ReduceFn, ScatterFn, Space, UnaryFn};
pub use pipeline::{compile, CompileOptions, FusionLevel, Preset};
pub use plan::{ExecutionPlan, Kernel};
pub use recompute::RecomputeScope;
pub use tune::{autotune_mappings, TuneReport};
pub use view::View;

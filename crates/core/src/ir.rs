//! The computational-graph IR: a DAG of [`Node`]s over the operator
//! algebra, with a validating builder API.
//!
//! Every node carries its iteration space ([`crate::op::Space`]: vertex,
//! edge, or parameter rows) and shape ([`crate::op::Dim`]), and every
//! dataflow edge has a well-defined per-edge [`crate::view::View`]
//! derivable from the endpoint kinds alone — the generalized op-graph
//! contract the clustering ([`crate::fusion`]) and lowering
//! ([`crate::lower`]) passes schedule from, with no per-op templates and
//! no unlowerable nodes.

use crate::op::{BinaryFn, Dim, EdgeGroup, NodeId, OpKind, ReduceFn, ScatterFn, Space, UnaryFn};

use std::error::Error;
use std::fmt;

/// Forward vs backward phase of a node (autodiff appends backward nodes to
/// the same graph so the passes can rewrite both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Inference dataflow.
    #[default]
    Forward,
    /// Gradient dataflow.
    Backward,
}

/// One operator instance.
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier (index into [`IrGraph::nodes`]).
    pub id: NodeId,
    /// The operator.
    pub kind: OpKind,
    /// Producer nodes, in operator-specific order.
    pub inputs: Vec<NodeId>,
    /// Output index space.
    pub space: Space,
    /// Output feature dimensions ([`Space::Param`] uses `heads` as rows and
    /// `feat` as cols).
    pub dim: Dim,
    /// Debug label.
    pub name: String,
    /// Forward or backward phase.
    pub phase: Phase,
    /// Whether gradients flow through this node.
    pub requires_grad: bool,
}

/// Errors raised by IR construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Input spaces/dims incompatible with the operator.
    Incompatible {
        /// Operator being constructed.
        op: String,
        /// Explanation.
        detail: String,
    },
    /// Referenced node id does not exist.
    UnknownNode(NodeId),
    /// Autodiff does not support a required operator.
    Unsupported(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Incompatible { op, detail } => {
                write!(f, "incompatible operands for {op}: {detail}")
            }
            IrError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            IrError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl Error for IrError {}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, IrError>;

/// A GNN computational graph.
///
/// Nodes are appended in construction order, which is always a valid
/// topological order (inputs must exist before use), so `nodes` doubles as
/// the canonical schedule.
#[derive(Debug, Clone, Default)]
pub struct IrGraph {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    phase: Phase,
}

impl IrGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The declared model outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Declares `id` a model output.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Consumer lists per node (edges of the DAG, reversed).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut cons = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                cons[i].push(n.id);
            }
        }
        cons
    }

    fn check(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id).ok_or(IrError::UnknownNode(id))
    }

    /// Switches the phase stamped on subsequently built nodes. Autodiff
    /// sets this to [`Phase::Backward`] before emitting gradient nodes.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The phase currently stamped on new nodes.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    fn push(
        &mut self,
        kind: OpKind,
        inputs: Vec<NodeId>,
        space: Space,
        dim: Dim,
        name: impl Into<String>,
        phase: Phase,
    ) -> NodeId {
        let requires_grad =
            matches!(kind, OpKind::Param) || inputs.iter().any(|&i| self.nodes[i].requires_grad);
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind,
            inputs,
            space,
            dim,
            name: name.into(),
            phase,
            requires_grad,
        });
        id
    }

    /// Appends a node with explicit kind/space/dim, stamped with the
    /// current phase. Used by autodiff and the passes for backward-only
    /// and rewritten operators; model code should prefer the typed
    /// builders.
    pub(crate) fn push_raw(
        &mut self,
        kind: OpKind,
        inputs: Vec<NodeId>,
        space: Space,
        dim: Dim,
        name: impl Into<String>,
    ) -> NodeId {
        self.push(kind, inputs, space, dim, name, self.phase)
    }

    // ---- leaves ----

    /// Adds a per-vertex input of width `dim`.
    pub fn input_vertex(&mut self, name: &str, dim: Dim) -> NodeId {
        self.push(
            OpKind::InputVertex,
            vec![],
            Space::Vertex,
            dim,
            name,
            self.phase,
        )
    }

    /// Adds a per-edge input of width `dim`.
    pub fn input_edge(&mut self, name: &str, dim: Dim) -> NodeId {
        self.push(
            OpKind::InputEdge,
            vec![],
            Space::Edge,
            dim,
            name,
            self.phase,
        )
    }

    /// Adds a `[rows, cols]` parameter.
    pub fn param(&mut self, name: &str, rows: usize, cols: usize) -> NodeId {
        self.push(
            OpKind::Param,
            vec![],
            Space::Param,
            Dim {
                heads: rows,
                feat: cols,
            },
            name,
            self.phase,
        )
    }

    // ---- graph ops ----

    /// `Scatter`: builds edge features from vertex features.
    ///
    /// `CopyU`/`CopyV` take one operand; binary functions and `ConcatUV`
    /// take two.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] on non-vertex operands or dim
    /// mismatches, and requires `heads` to agree for `ConcatUV`.
    pub fn scatter(&mut self, f: ScatterFn, x: NodeId, y: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        let ny = self.check(y)?.clone();
        if nx.space != Space::Vertex || ny.space != Space::Vertex {
            return Err(IrError::Incompatible {
                op: format!("scatter({f:?})"),
                detail: "operands must be vertex features".into(),
            });
        }
        let dim = match f {
            ScatterFn::CopyU => nx.dim,
            ScatterFn::CopyV => ny.dim,
            ScatterFn::Bin(_) => {
                if nx.dim != ny.dim {
                    return Err(IrError::Incompatible {
                        op: format!("scatter({f:?})"),
                        detail: format!("dims {:?} vs {:?}", nx.dim, ny.dim),
                    });
                }
                nx.dim
            }
            ScatterFn::ConcatUV => {
                if nx.dim.heads != ny.dim.heads {
                    return Err(IrError::Incompatible {
                        op: "scatter(concat)".into(),
                        detail: format!("head mismatch {:?} vs {:?}", nx.dim, ny.dim),
                    });
                }
                Dim {
                    heads: nx.dim.heads,
                    feat: nx.dim.feat + ny.dim.feat,
                }
            }
        };
        let inputs = match f {
            ScatterFn::CopyU => vec![x],
            ScatterFn::CopyV => vec![y],
            _ => vec![x, y],
        };
        Ok(self.push(
            OpKind::Scatter(f),
            inputs,
            Space::Edge,
            dim,
            format!("scatter_{f:?}"),
            self.phase,
        ))
    }

    /// `Gather`: reduces edge features into vertex features.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] for non-edge input.
    pub fn gather(&mut self, reduce: ReduceFn, group: EdgeGroup, x: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        if nx.space != Space::Edge {
            return Err(IrError::Incompatible {
                op: format!("gather({reduce:?})"),
                detail: "operand must be edge features".into(),
            });
        }
        Ok(self.push(
            OpKind::Gather { reduce, group },
            vec![x],
            Space::Vertex,
            nx.dim,
            format!("gather_{reduce:?}"),
            self.phase,
        ))
    }

    /// Edge softmax over per-destination groups (the `ReduceScatter`
    /// instance of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] for non-edge input.
    pub fn edge_softmax(&mut self, x: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        if nx.space != Space::Edge {
            return Err(IrError::Incompatible {
                op: "edge_softmax".into(),
                detail: "operand must be edge features".into(),
            });
        }
        Ok(self.push(
            OpKind::EdgeSoftmax,
            vec![x],
            Space::Edge,
            nx.dim,
            "edge_softmax",
            self.phase,
        ))
    }

    // ---- apply ops ----

    /// Linear projection `x · w` (expensive Apply-).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] unless `w` is a parameter with
    /// `rows == x.dim.total()`.
    pub fn linear(&mut self, x: NodeId, w: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        let nw = self.check(w)?.clone();
        if nw.space != Space::Param || nw.dim.heads != nx.dim.total() {
            return Err(IrError::Incompatible {
                op: "linear".into(),
                detail: format!(
                    "weight {:?} incompatible with input dim {:?}",
                    nw.dim, nx.dim
                ),
            });
        }
        Ok(self.push(
            OpKind::Linear,
            vec![x, w],
            nx.space,
            Dim::flat(nw.dim.feat),
            "linear",
            self.phase,
        ))
    }

    /// Lightweight unary apply.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] for dangling ids.
    pub fn unary(&mut self, f: UnaryFn, x: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        Ok(self.push(
            OpKind::Unary(f),
            vec![x],
            nx.space,
            nx.dim,
            format!("unary_{f:?}"),
            self.phase,
        ))
    }

    /// Lightweight binary apply. Operands must share a space and head
    /// count; one operand may have `feat == 1` and broadcasts across
    /// features.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] otherwise.
    pub fn binary(&mut self, f: BinaryFn, a: NodeId, b: NodeId) -> Result<NodeId> {
        let na = self.check(a)?.clone();
        let nb = self.check(b)?.clone();
        if na.space != nb.space {
            return Err(IrError::Incompatible {
                op: format!("binary({f:?})"),
                detail: format!("space {:?} vs {:?}", na.space, nb.space),
            });
        }
        if na.dim.heads != nb.dim.heads
            || (na.dim.feat != nb.dim.feat && na.dim.feat != 1 && nb.dim.feat != 1)
        {
            return Err(IrError::Incompatible {
                op: format!("binary({f:?})"),
                detail: format!("dims {:?} vs {:?}", na.dim, nb.dim),
            });
        }
        let dim = Dim {
            heads: na.dim.heads,
            feat: na.dim.feat.max(nb.dim.feat),
        };
        Ok(self.push(
            OpKind::Binary(f),
            vec![a, b],
            na.space,
            dim,
            format!("binary_{f:?}"),
            self.phase,
        ))
    }

    /// Per-head dot product with parameter `a` of shape `[heads, feat]`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] unless `a` matches `x`'s `[heads,
    /// feat]`.
    pub fn head_dot(&mut self, x: NodeId, a: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        let na = self.check(a)?.clone();
        if na.space != Space::Param || na.dim.heads != nx.dim.heads || na.dim.feat != nx.dim.feat {
            return Err(IrError::Incompatible {
                op: "head_dot".into(),
                detail: format!("param {:?} vs input {:?}", na.dim, nx.dim),
            });
        }
        Ok(self.push(
            OpKind::HeadDot,
            vec![x, a],
            nx.space,
            Dim {
                heads: nx.dim.heads,
                feat: 1,
            },
            "head_dot",
            self.phase,
        ))
    }

    /// Gaussian mixture weights (MoNet). `pseudo` is `[|E|, r]`; `mu` and
    /// `inv_sigma` are `[K, r]` parameters; output is `[|E|, K]` (heads=K).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] on mismatched kernel shapes.
    pub fn gaussian_weight(
        &mut self,
        pseudo: NodeId,
        mu: NodeId,
        inv_sigma: NodeId,
    ) -> Result<NodeId> {
        let np = self.check(pseudo)?.clone();
        let nm = self.check(mu)?.clone();
        let ns = self.check(inv_sigma)?.clone();
        if np.space != Space::Edge || np.dim.heads != 1 {
            return Err(IrError::Incompatible {
                op: "gaussian_weight".into(),
                detail: "pseudo-coordinates must be single-head edge features".into(),
            });
        }
        if nm.dim != ns.dim || nm.dim.feat != np.dim.feat {
            return Err(IrError::Incompatible {
                op: "gaussian_weight".into(),
                detail: format!(
                    "mu {:?} / sigma {:?} vs pseudo {:?}",
                    nm.dim, ns.dim, np.dim
                ),
            });
        }
        Ok(self.push(
            OpKind::GaussianWeight,
            vec![pseudo, mu, inv_sigma],
            Space::Edge,
            Dim {
                heads: nm.dim.heads,
                feat: 1,
            },
            "gaussian_weight",
            self.phase,
        ))
    }

    // ---- structural ----

    /// Per-head feature slice `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] on out-of-range slices.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        if start >= end || end > nx.dim.feat {
            return Err(IrError::Incompatible {
                op: "slice_cols".into(),
                detail: format!("[{start}, {end}) out of 0..{}", nx.dim.feat),
            });
        }
        Ok(self.push(
            OpKind::SliceCols { start, end },
            vec![x],
            nx.space,
            Dim {
                heads: nx.dim.heads,
                feat: end - start,
            },
            "slice_cols",
            self.phase,
        ))
    }

    /// Row slice of a parameter.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] unless `x` is a parameter and the
    /// range is valid.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, end: usize) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        if nx.space != Space::Param || start >= end || end > nx.dim.heads {
            return Err(IrError::Incompatible {
                op: "slice_rows".into(),
                detail: format!("[{start}, {end}) of param {:?}", nx.dim),
            });
        }
        Ok(self.push(
            OpKind::SliceRows { start, end },
            vec![x],
            Space::Param,
            Dim {
                heads: end - start,
                feat: nx.dim.feat,
            },
            "slice_rows",
            self.phase,
        ))
    }

    /// Reinterprets `[1, h·f]` as `[h, f]`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] if the total width is not
    /// divisible by `heads`.
    pub fn set_heads(&mut self, x: NodeId, heads: usize) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        let total = nx.dim.total();
        if heads == 0 || total % heads != 0 {
            return Err(IrError::Incompatible {
                op: "set_heads".into(),
                detail: format!("total {total} not divisible by {heads}"),
            });
        }
        Ok(self.push(
            OpKind::SetHeads { heads },
            vec![x],
            nx.space,
            Dim {
                heads,
                feat: total / heads,
            },
            "set_heads",
            self.phase,
        ))
    }

    /// Reduces heads to 1 (`Sum` or `Mean`).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] for `Max` (unsupported here).
    pub fn head_reduce(&mut self, f: ReduceFn, x: NodeId) -> Result<NodeId> {
        if f == ReduceFn::Max {
            return Err(IrError::Incompatible {
                op: "head_reduce".into(),
                detail: "max head-reduction is not supported".into(),
            });
        }
        let nx = self.check(x)?.clone();
        Ok(self.push(
            OpKind::HeadReduce(f),
            vec![x],
            nx.space,
            Dim {
                heads: 1,
                feat: nx.dim.feat,
            },
            "head_reduce",
            self.phase,
        ))
    }

    /// Broadcasts `[1, f]` to `[heads, f]`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Incompatible`] unless the input has one head.
    pub fn head_broadcast(&mut self, x: NodeId, heads: usize) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        if nx.dim.heads != 1 {
            return Err(IrError::Incompatible {
                op: "head_broadcast".into(),
                detail: format!("input already has {} heads", nx.dim.heads),
            });
        }
        Ok(self.push(
            OpKind::HeadBroadcast { heads },
            vec![x],
            nx.space,
            Dim {
                heads,
                feat: nx.dim.feat,
            },
            "head_broadcast",
            self.phase,
        ))
    }

    /// Sums features within each head: `[h, f] → [h, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownNode`] for dangling ids.
    pub fn feat_sum(&mut self, x: NodeId) -> Result<NodeId> {
        let nx = self.check(x)?.clone();
        Ok(self.push(
            OpKind::FeatSum,
            vec![x],
            nx.space,
            Dim {
                heads: nx.dim.heads,
                feat: 1,
            },
            "feat_sum",
            self.phase,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_spaces() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        // gather of a vertex tensor must fail
        assert!(g.gather(ReduceFn::Sum, EdgeGroup::ByDst, h).is_err());
        // scatter of an edge tensor must fail
        assert!(g.scatter(ScatterFn::CopyU, e, e).is_err());
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, e).unwrap();
        assert_eq!(g.node(v).space, Space::Vertex);
        assert_eq!(g.node(v).dim, Dim::flat(8));
    }

    #[test]
    fn concat_adds_feats_and_checks_heads() {
        let mut g = IrGraph::new();
        let a = g.input_vertex("a", Dim::multi(2, 4));
        let b = g.input_vertex("b", Dim::multi(2, 3));
        let c = g.scatter(ScatterFn::ConcatUV, a, b).unwrap();
        assert_eq!(g.node(c).dim, Dim::multi(2, 7));
        let bad = g.input_vertex("bad", Dim::multi(3, 4));
        assert!(g.scatter(ScatterFn::ConcatUV, a, bad).is_err());
    }

    #[test]
    fn linear_checks_param_rows() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 16);
        let y = g.linear(h, w).unwrap();
        assert_eq!(g.node(y).dim, Dim::flat(16));
        assert!(g.node(y).requires_grad);
        let wbad = g.param("wbad", 9, 16);
        assert!(g.linear(h, wbad).is_err());
    }

    #[test]
    fn binary_broadcast_rules() {
        let mut g = IrGraph::new();
        let a = g.input_vertex("a", Dim::multi(4, 16));
        let s = g.input_vertex("s", Dim::multi(4, 1));
        let y = g.binary(BinaryFn::Mul, a, s).unwrap();
        assert_eq!(g.node(y).dim, Dim::multi(4, 16));
        let bad = g.input_vertex("bad", Dim::multi(4, 8));
        assert!(g.binary(BinaryFn::Add, a, bad).is_err());
    }

    #[test]
    fn requires_grad_propagates_from_params_only() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let e = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        assert!(!g.node(e).requires_grad);
        let w = g.param("w", 4, 4);
        let y = g.linear(h, w).unwrap();
        assert!(g.node(y).requires_grad);
    }

    #[test]
    fn set_heads_roundtrip() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(12));
        let m = g.set_heads(h, 4).unwrap();
        assert_eq!(g.node(m).dim, Dim::multi(4, 3));
        assert!(g.set_heads(h, 5).is_err());
    }

    #[test]
    fn consumers_reverse_edges() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let e1 = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let e2 = g.scatter(ScatterFn::CopyV, h, h).unwrap();
        let cons = g.consumers();
        assert_eq!(cons[h], vec![e1, e2]);
    }

    #[test]
    fn outputs_dedup() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        g.mark_output(h);
        g.mark_output(h);
        assert_eq!(g.outputs(), &[h]);
    }
}

//! DNN-style segment checkpointing (Chen et al., 2016) — the comparison
//! point of the paper's §8.
//!
//! The paper adapts recomputation to GNNs at *operator* granularity
//! (§6): only cheap graph ops are rebuilt, giving `< 10 %` latency
//! overhead. The DNN technique it cites instead checkpoints *segment
//! boundaries* of a layer chain and re-runs whole segments during
//! backward, which costs roughly one extra forward pass (≈ 30 % of a
//! training step). This module implements the DNN scheme faithfully —
//! the √n heuristic and the optimal dynamic program under a memory
//! budget — so the `dnn_checkpoint_compare` bench can reproduce the
//! 30 %-vs-10 % claim quantitatively on the same workloads.
//!
//! Model: a chain of `n` stages (for a GNN plan: the kernels in schedule
//! order). A plan partitions the chain into contiguous segments; the
//! activations at segment boundaries are kept, everything inside a
//! segment is dropped after the forward pass and recomputed (one segment
//! re-forward) when the backward pass reaches it.

/// Cost of one stage of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCost {
    /// FLOPs to (re)compute the stage's outputs from its inputs.
    pub flops: u64,
    /// Bytes of activations the stage produces.
    pub activation_bytes: u64,
}

/// A segment-checkpointing schedule: the stage indices whose outputs are
/// kept (segment boundaries). The last stage is never listed — its output
/// is the model output and always live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPlan {
    boundaries: Vec<usize>,
    num_stages: usize,
}

impl CheckpointPlan {
    /// Builds a plan from explicit boundary indices.
    ///
    /// # Panics
    ///
    /// Panics if a boundary is out of range or the list is not strictly
    /// increasing.
    pub fn new(mut boundaries: Vec<usize>, num_stages: usize) -> Self {
        boundaries.sort_unstable();
        boundaries.dedup();
        assert!(
            boundaries.iter().all(|&b| b + 1 < num_stages.max(1)),
            "boundaries must leave at least one stage in the final segment"
        );
        Self {
            boundaries,
            num_stages,
        }
    }

    /// Stash-everything baseline: every stage is a boundary.
    pub fn stash_all(num_stages: usize) -> Self {
        Self {
            boundaries: (0..num_stages.saturating_sub(1)).collect(),
            num_stages,
        }
    }

    /// The √n heuristic: segments of ~√n stages (Chen et al.'s default).
    pub fn sqrt_n(num_stages: usize) -> Self {
        if num_stages <= 2 {
            return Self::new(Vec::new(), num_stages);
        }
        let seg = (num_stages as f64).sqrt().round().max(1.0) as usize;
        let boundaries = (1..num_stages - 1)
            .filter(|i| i % seg == 0)
            .map(|i| i - 1)
            .collect();
        Self::new(boundaries, num_stages)
    }

    /// Checkpointed stage indices (segment boundaries).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Segments as `(start, end)` half-open stage ranges.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.boundaries.len() + 1);
        let mut start = 0;
        for &b in &self.boundaries {
            out.push((start, b + 1));
            start = b + 1;
        }
        if start < self.num_stages {
            out.push((start, self.num_stages));
        }
        out
    }

    /// Peak activation memory: every boundary activation and the model
    /// output persist for the whole step, plus the largest single
    /// segment's *interior* (the non-boundary activations, alive while
    /// that segment runs forward or is recomputed for backward).
    pub fn peak_memory(&self, stages: &[StageCost]) -> u64 {
        assert_eq!(stages.len(), self.num_stages, "stage count mismatch");
        let kept: u64 = self
            .boundaries
            .iter()
            .map(|&b| stages[b].activation_bytes)
            .sum();
        let output = stages.last().map_or(0, |c| c.activation_bytes);
        kept + output + self.largest_interior(stages)
    }

    fn largest_interior(&self, stages: &[StageCost]) -> u64 {
        self.segments()
            .into_iter()
            .map(|(s, e)| {
                // The segment's last stage output is its boundary (kept,
                // or the model output) — interior is everything before it.
                stages[s..e.saturating_sub(1).max(s)]
                    .iter()
                    .map(|c| c.activation_bytes)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Extra FLOPs spent rebuilding segment interiors during backward:
    /// for each segment, the stages whose outputs were dropped (all but
    /// the segment's own boundary) are re-run once. Stash-all therefore
    /// costs zero; coarse segments re-run almost the whole forward pass.
    pub fn recompute_flops(&self, stages: &[StageCost]) -> u64 {
        assert_eq!(stages.len(), self.num_stages, "stage count mismatch");
        self.segments()
            .into_iter()
            .map(|(s, e)| {
                stages[s..e.saturating_sub(1).max(s)]
                    .iter()
                    .map(|c| c.flops)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Latency overhead of the recompute work relative to one training
    /// step, with a backward pass modeled at `bwd_factor`× the forward
    /// FLOPs (2 is the standard estimate).
    pub fn overhead_ratio(&self, stages: &[StageCost], bwd_factor: f64) -> f64 {
        let fwd: u64 = stages.iter().map(|c| c.flops).sum();
        if fwd == 0 {
            return 0.0;
        }
        let step = fwd as f64 * (1.0 + bwd_factor);
        self.recompute_flops(stages) as f64 / step
    }
}

/// The optimal contiguous-segment plan under a peak-memory budget:
/// minimizes recomputed FLOPs via dynamic programming over segment end
/// positions. Returns `None` when even the best partition exceeds the
/// budget (some single stage's interior is too large).
pub fn optimal_plan(stages: &[StageCost], budget_bytes: u64) -> Option<CheckpointPlan> {
    let n = stages.len();
    if n == 0 {
        return Some(CheckpointPlan::new(Vec::new(), 0));
    }
    // Search over the *largest-segment interior* allowance `m`: for a
    // given allowance the greedy packing (close a segment just before it
    // would exceed `m`) minimizes kept bytes… but not recompute FLOPs.
    // With n in the hundreds a O(n²) DP per allowance is affordable and
    // exact: dp[i] = min recompute FLOPs to process stages [0, i) with
    // every closed segment's interior ≤ m; track kept bytes to check the
    // budget at the end. Because kept bytes also depend on the partition,
    // fold them into the DP state cost via lexicographic minimization of
    // (fits, flops).
    let prefix_bytes: Vec<u64> = std::iter::once(0)
        .chain(stages.iter().scan(0u64, |acc, c| {
            *acc += c.activation_bytes;
            Some(*acc)
        }))
        .collect();
    let prefix_flops: Vec<u64> = std::iter::once(0)
        .chain(stages.iter().scan(0u64, |acc, c| {
            *acc += c.flops;
            Some(*acc)
        }))
        .collect();
    let seg_bytes = |s: usize, e: usize| prefix_bytes[e] - prefix_bytes[s];
    let seg_flops = |s: usize, e: usize| prefix_flops[e] - prefix_flops[s];

    // dp[i]: best (kept_bytes, recompute_flops, prev_cut) over partitions
    // of [0, i) into closed segments, where "best" minimizes
    // max(interior) ≤ anything — we instead enumerate: for each i, for
    // each cut j < i, segment [j, i) costs: kept += bytes of stage i-1
    // (its boundary output), recompute += flops of [j, i) if it is not
    // the final segment. The final segment is handled at the end.
    // State: minimal recompute_flops for [0, i) such that
    // kept_bytes + max_interior_so_far ≤ budget is *checked* with the
    // pessimistic max-interior folded in as a second pass; to stay exact
    // we keep per-state (kept, max_interior) pareto fronts.
    #[derive(Clone)]
    struct State {
        kept: u64,
        max_interior: u64,
        flops: u64,
        cuts: Vec<usize>,
    }
    let mut frontier: Vec<Vec<State>> = vec![Vec::new(); n + 1];
    frontier[0].push(State {
        kept: 0,
        max_interior: 0,
        flops: 0,
        cuts: Vec::new(),
    });
    for i in 1..=n {
        let mut cands: Vec<State> = Vec::new();
        for (j, states) in frontier.iter().enumerate().take(i) {
            for base in states {
                // Segment [j, i): its boundary is stage i−1's output;
                // interior = stages j..i−1, which are also what backward
                // recomputation re-runs.
                let interior = seg_bytes(j, i - 1);
                let is_last = i == n;
                let kept = base.kept
                    + if is_last {
                        0 // the model output is charged once, below
                    } else {
                        stages[i - 1].activation_bytes
                    };
                let flops = base.flops + seg_flops(j, i - 1);
                let max_interior = base.max_interior.max(interior);
                let mut cuts = base.cuts.clone();
                if !is_last {
                    cuts.push(i - 1);
                }
                cands.push(State {
                    kept,
                    max_interior,
                    flops,
                    cuts,
                });
            }
        }
        // Prune to the 3-key pareto front (kept, max_interior, flops):
        // `kept` and `max_interior` evolve differently (sums vs. max), so
        // neither — nor their sum — is a sufficient statistic alone.
        cands.sort_by_key(|s| (s.kept, s.max_interior, s.flops));
        let mut front: Vec<State> = Vec::new();
        for s in cands {
            let dominated = front.iter().any(|f| {
                f.kept <= s.kept && f.max_interior <= s.max_interior && f.flops <= s.flops
            });
            if !dominated {
                front.retain(|f| {
                    !(s.kept <= f.kept && s.max_interior <= f.max_interior && s.flops <= f.flops)
                });
                front.push(s);
            }
        }
        frontier[i] = front;
    }
    let output = stages.last().map_or(0, |c| c.activation_bytes);
    frontier[n]
        .iter()
        .filter(|s| s.kept + s.max_interior + output <= budget_bytes)
        .min_by_key(|s| s.flops)
        .map(|s| CheckpointPlan::new(s.cuts.clone(), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, flops: u64, bytes: u64) -> Vec<StageCost> {
        vec![
            StageCost {
                flops,
                activation_bytes: bytes,
            };
            n
        ]
    }

    #[test]
    fn stash_all_has_no_recompute_and_full_memory() {
        let stages = uniform(8, 100, 10);
        let plan = CheckpointPlan::stash_all(8);
        assert_eq!(plan.recompute_flops(&stages), 0);
        assert_eq!(plan.peak_memory(&stages), 80);
        assert_eq!(plan.overhead_ratio(&stages, 2.0), 0.0);
    }

    #[test]
    fn sqrt_n_memory_scales_sublinearly() {
        let n = 64;
        let stages = uniform(n, 100, 10);
        let all = CheckpointPlan::stash_all(n).peak_memory(&stages);
        let sqrt = CheckpointPlan::sqrt_n(n).peak_memory(&stages);
        // √n checkpoints + √n interior ≈ 2√n stages of memory.
        assert!(
            sqrt <= all / 3,
            "sqrt-n must cut memory substantially: {all} -> {sqrt}"
        );
    }

    #[test]
    fn sqrt_n_overhead_is_about_one_forward() {
        // Recomputing every non-final segment re-runs ≈ the whole forward:
        // ratio ≈ fwd / (fwd + bwd) ≈ 1/3 with bwd = 2×fwd — Chen et
        // al.'s "roughly 30 %", which §8 of the paper quotes.
        let stages = uniform(100, 50, 10);
        let ratio = CheckpointPlan::sqrt_n(100).overhead_ratio(&stages, 2.0);
        assert!(
            (0.25..0.34).contains(&ratio),
            "sqrt-n overhead should be ≈30 %: {ratio}"
        );
    }

    #[test]
    fn segments_partition_the_chain() {
        for n in [1usize, 2, 5, 17, 64] {
            let plan = CheckpointPlan::sqrt_n(n);
            let segs = plan.segments();
            assert_eq!(segs.first().map(|s| s.0), Some(0));
            assert_eq!(segs.last().map(|s| s.1), Some(n));
            for w in segs.windows(2) {
                assert_eq!(w[0].1, w[1].0, "segments must tile contiguously");
            }
        }
    }

    #[test]
    fn optimal_plan_respects_budget_and_beats_sqrt_n() {
        let stages = uniform(16, 100, 10);
        let sqrt = CheckpointPlan::sqrt_n(16);
        let budget = sqrt.peak_memory(&stages);
        let opt = optimal_plan(&stages, budget).expect("feasible");
        assert!(opt.peak_memory(&stages) <= budget);
        assert!(
            opt.recompute_flops(&stages) <= sqrt.recompute_flops(&stages),
            "the DP must not lose to the heuristic at the same budget"
        );
    }

    #[test]
    fn optimal_plan_prefers_cutting_after_cheap_fat_stages() {
        // Stage 1 is huge in bytes but free to recompute; the optimal
        // single cut under a tight budget is *before* it so its bytes
        // never persist... or after, if keeping it is cheaper than the
        // interior. Verify the DP picks the cheaper of the two.
        let stages = vec![
            StageCost {
                flops: 1000,
                activation_bytes: 10,
            },
            StageCost {
                flops: 1,
                activation_bytes: 1000,
            },
            StageCost {
                flops: 1000,
                activation_bytes: 10,
            },
        ];
        let opt = optimal_plan(&stages, 1020).expect("feasible");
        // Keeping stage 0 (10 bytes) leaves interior {1, 2} = 1010 ≤
        // budget and recomputes only stage 0 (1000 flops)… while keeping
        // stage 1 (1000 bytes kept) leaves max interior 10+? Check the DP
        // found a plan within budget at minimal flops.
        assert!(opt.peak_memory(&stages) <= 1020);
        let alt = CheckpointPlan::new(vec![1], 3);
        assert!(opt.recompute_flops(&stages) <= alt.recompute_flops(&stages));
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let stages = uniform(4, 10, 1000);
        assert!(optimal_plan(&stages, 999).is_none());
    }

    #[test]
    fn degenerate_chains() {
        assert_eq!(CheckpointPlan::sqrt_n(0).segments(), vec![]);
        assert_eq!(CheckpointPlan::sqrt_n(1).segments(), vec![(0, 1)]);
        let one = uniform(1, 10, 10);
        assert_eq!(CheckpointPlan::sqrt_n(1).recompute_flops(&one), 0);
    }
}

//! Profile-driven thread-mapping selection.
//!
//! §5 of the paper: *"In general, we can select between vertex-balanced or
//! edge-balanced mapping based on performance profiling."* The fusion
//! pass's [`MappingPolicy::Auto`](crate::fusion::MappingPolicy) applies
//! the paper's static default (vertex-balanced when a reduction is
//! present); this module implements the profiling alternative — evaluate
//! both mappings of every fused graph kernel under the device model and
//! keep the faster one.
//!
//! The trade modeled is exactly the paper's Figure 5 discussion:
//! vertex-balanced mappings suffer degree-skew imbalance, edge-balanced
//! mappings pay the atomic penalty on reductions. Which side wins depends
//! on the graph (Reddit's skew vs. a citation network's near-regularity)
//! and on the kernel's compute/IO balance — a per-(kernel, graph, device)
//! question the static rule cannot answer.
//!
//! Kernels containing an edge-softmax are pinned to vertex-balanced: the
//! fused implementation buffers the per-destination max/denominator in
//! shared memory, which only exists under a destination-grouped mapping
//! (§5 "A special case is when ReduceScatter is involved").

use crate::fusion::{atomic_flag, kernel_has_softmax};
use crate::plan::ExecutionPlan;
use gnnopt_graph::GraphStats;
use gnnopt_sim::{Device, KernelProfile, ThreadMapping};

/// Outcome of one autotuning run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TuneReport {
    /// Graph kernels whose mapping was re-evaluated.
    pub considered: usize,
    /// Kernels whose mapping changed.
    pub switched: usize,
    /// Total plan latency before tuning, in seconds.
    pub latency_before: f64,
    /// Total plan latency after tuning, in seconds.
    pub latency_after: f64,
}

impl TuneReport {
    /// Speedup factor achieved by tuning (≥ 1 by construction).
    pub fn speedup(&self) -> f64 {
        if self.latency_after > 0.0 {
            self.latency_before / self.latency_after
        } else {
            1.0
        }
    }
}

/// Re-selects each graph kernel's thread mapping by profiling both
/// candidates on `device` × `stats`, mutating the plan in place.
///
/// Dense kernels and edge-softmax kernels are left untouched. The
/// returned report records how many kernels were considered and switched
/// and the modeled end-to-end latency on either side.
///
/// ```
/// use gnnopt_core::{autotune_mappings, compile, CompileOptions};
/// use gnnopt_core::ir::IrGraph;
/// use gnnopt_core::op::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn};
/// use gnnopt_graph::GraphStats;
/// use gnnopt_sim::Device;
///
/// # fn main() -> Result<(), gnnopt_core::ir::IrError> {
/// let mut g = IrGraph::new();
/// let h = g.input_vertex("h", Dim::flat(64));
/// let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h)?;
/// let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, e)?;
/// g.mark_output(v);
///
/// let mut plan = compile(&g, false, &CompileOptions::ours())?.plan;
/// let stats = GraphStats::synthesize_power_law(4096, 24.0, 1.5);
/// let report = autotune_mappings(&mut plan, &Device::rtx3090(), &stats);
/// assert!(report.latency_after <= report.latency_before);
/// # Ok(())
/// # }
/// ```
pub fn autotune_mappings(
    plan: &mut ExecutionPlan,
    device: &Device,
    stats: &GraphStats,
) -> TuneReport {
    let mut report = TuneReport {
        latency_before: plan_latency(plan, device, stats),
        ..TuneReport::default()
    };

    // Candidate evaluation uses each kernel's *current* resource profile;
    // byte/FLOP counts do not depend on the mapping, only the latency
    // model's interpretation does (imbalance vs. atomic penalty).
    let profiles = plan.profiles(stats);
    for (ki, profile) in profiles.iter().enumerate() {
        let members: Vec<_> = plan.kernels[ki]
            .nodes
            .iter()
            .chain(&plan.kernels[ki].recompute)
            .copied()
            .collect();
        if !plan.kernels[ki].mapping.is_graph() {
            continue;
        }
        if kernel_has_softmax(&plan.ir, &members) {
            continue; // pinned vertex-balanced
        }
        report.considered += 1;
        let mut best = (
            plan.kernels[ki].mapping,
            plan.kernels[ki].atomic_reduction,
            device.kernel_latency(profile, stats),
        );
        for mapping in [ThreadMapping::VertexBalanced, ThreadMapping::EdgeBalanced] {
            if mapping == plan.kernels[ki].mapping {
                continue;
            }
            let atomic = atomic_flag(&plan.ir, &members, mapping);
            let candidate = KernelProfile {
                mapping,
                atomic_reduction: atomic,
                ..*profile
            };
            let lat = device.kernel_latency(&candidate, stats);
            if lat < best.2 {
                best = (mapping, atomic, lat);
            }
        }
        if best.0 != plan.kernels[ki].mapping {
            report.switched += 1;
            plan.kernels[ki].mapping = best.0;
            plan.kernels[ki].atomic_reduction = best.1;
        }
    }

    report.latency_after = plan_latency(plan, device, stats);
    report
}

fn plan_latency(plan: &ExecutionPlan, device: &Device, stats: &GraphStats) -> f64 {
    device.plan_latency(plan.profiles(stats).iter(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::MappingPolicy;
    use crate::ir::IrGraph;
    use crate::op::{BinaryFn, Dim, EdgeGroup, OpKind, ReduceFn, ScatterFn, UnaryFn};
    use crate::pipeline::{compile, CompileOptions};

    /// A fused scatter→gather chain with *no* softmax: the kernel the
    /// tuner is free to re-map. With `project`, a trailing linear adds a
    /// parameter so the IR also compiles for training.
    fn sum_pool_ir_with(feat: usize, project: bool) -> IrGraph {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(feat));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let r = g.unary(UnaryFn::Relu, e).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, r).unwrap();
        let out = if project {
            let w = g.param("w", feat, 16);
            g.linear(v, w).unwrap()
        } else {
            v
        };
        g.mark_output(out);
        g
    }

    fn sum_pool_ir(feat: usize) -> IrGraph {
        sum_pool_ir_with(feat, false)
    }

    fn skewed_stats() -> GraphStats {
        GraphStats::synthesize_power_law(4096, 24.0, 1.6)
    }

    fn regular_stats() -> GraphStats {
        GraphStats::synthesize_power_law(4096, 24.0, 0.0)
    }

    #[test]
    fn tuning_never_increases_latency() {
        let ir = sum_pool_ir(64);
        for stats in [skewed_stats(), regular_stats()] {
            for policy in [
                MappingPolicy::Auto,
                MappingPolicy::ForceVertex,
                MappingPolicy::ForceEdge,
            ] {
                let opts = CompileOptions {
                    mapping: policy,
                    ..CompileOptions::ours()
                };
                let mut plan = compile(&ir, false, &opts).unwrap().plan;
                let r = autotune_mappings(&mut plan, &Device::rtx3090(), &stats);
                assert!(
                    r.latency_after <= r.latency_before * (1.0 + 1e-12),
                    "{policy:?}: tuning must not slow the plan"
                );
            }
        }
    }

    #[test]
    fn skew_flips_a_forced_vertex_kernel_to_edge_balanced() {
        // On a heavily skewed graph, a compute-balanced fused kernel under
        // ForceVertex pays up to 8× imbalance; the tuner should switch it
        // to the atomic edge-balanced form.
        let ir = sum_pool_ir(256);
        let opts = CompileOptions {
            mapping: MappingPolicy::ForceVertex,
            ..CompileOptions::ours()
        };
        let mut plan = compile(&ir, false, &opts).unwrap().plan;
        let before: Vec<_> = plan.kernels.iter().map(|k| k.mapping).collect();
        assert!(before.contains(&ThreadMapping::VertexBalanced));
        let r = autotune_mappings(&mut plan, &Device::rtx3090(), &skewed_stats());
        assert!(r.switched >= 1, "expected at least one switch, got {r:?}");
        assert!(r.speedup() > 1.0);
        let flipped = plan
            .kernels
            .iter()
            .find(|k| k.mapping == ThreadMapping::EdgeBalanced)
            .expect("a kernel must now be edge-balanced");
        assert!(
            flipped.atomic_reduction,
            "edge-balanced reduction must carry the atomic flag"
        );
    }

    #[test]
    fn softmax_kernels_stay_vertex_balanced() {
        // GAT-like graph section: softmax forces vertex-balanced even on
        // the most skewed graph.
        let mut g = IrGraph::new();
        let a = g.input_vertex("a", Dim::flat(1));
        let h = g.input_vertex("h", Dim::flat(64));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Add), a, a).unwrap();
        let sm = g.edge_softmax(e).unwrap();
        let hu = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, sm).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        g.mark_output(out);
        let mut plan = compile(&g, false, &CompileOptions::ours()).unwrap().plan;
        let _ = autotune_mappings(&mut plan, &Device::rtx3090(), &skewed_stats());
        for k in &plan.kernels {
            let members: Vec<_> = k.nodes.clone();
            if kernel_has_softmax(&plan.ir, &members) {
                assert_eq!(k.mapping, ThreadMapping::VertexBalanced);
            }
        }
    }

    #[test]
    fn tuning_is_idempotent() {
        // Training compile needs a parameter: project after pooling.
        let ir = sum_pool_ir_with(128, true);
        let mut plan = compile(&ir, true, &CompileOptions::ours()).unwrap().plan;
        let stats = skewed_stats();
        let d = Device::rtx3090();
        let first = autotune_mappings(&mut plan, &d, &stats);
        let second = autotune_mappings(&mut plan, &d, &stats);
        assert_eq!(second.switched, 0, "second run must be a fixpoint");
        assert!((second.latency_before - first.latency_after).abs() < 1e-15);
    }

    #[test]
    fn dense_kernels_untouched() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 8);
        let l = g.linear(h, w).unwrap();
        g.mark_output(l);
        let mut plan = compile(&g, false, &CompileOptions::ours()).unwrap().plan;
        let r = autotune_mappings(&mut plan, &Device::rtx3090(), &regular_stats());
        assert_eq!(r.considered, 0);
        assert!(plan
            .kernels
            .iter()
            .all(|k| k.mapping == ThreadMapping::Dense
                || !k
                    .nodes
                    .iter()
                    .any(|&n| matches!(plan.ir.node(n).kind, OpKind::Linear))));
    }
}

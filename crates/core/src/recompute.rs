//! Intermediate-data recomputation for training (paper §6).
//!
//! Training must keep every forward value the backward pass reads. The
//! paper's criterion: if an intermediate's `ComputationCost / MemoryCost`
//! is `O(1)`, recompute it inside the backward kernel instead of stashing
//! it — eliminating the `O(|E|)` edge intermediates entirely when combined
//! with fusion ("fusion-recomputation combo"). Edge-softmax gets the
//! special treatment from the paper's example: stash only the per-vertex
//! max and denominator (`O(|V|)`) and rebuild edge values in `O(1)` each.
//!
//! Vertex features are always stashed (`O(|V|)` is cheap, and the paper
//! explicitly chooses to "recompute edge rather than vertex features").

use crate::ir::{IrGraph, Phase};
use crate::op::{FusionClass, NodeId, OpKind, Space};
use crate::plan::Kernel;
use gnnopt_sim::ThreadMapping;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Which saved tensors the planner may recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecomputeScope {
    /// Stash every saved tensor (the paper's "fusion & stashing" ablation).
    None,
    /// Recompute only tensors that live *inside* a fused kernel — this is
    /// what DGL/fuseGNN's hand-written fused built-ins (gSpMM backward,
    /// fused edge-softmax) achieve without a general mechanism.
    FusedInternalsOnly,
    /// The paper's §6: recompute any cheap edge-space intermediate.
    #[default]
    All,
}

/// Options of the recomputation planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecomputeOptions {
    /// Which saved tensors may be recomputed.
    pub scope: RecomputeScope,
    /// Recompute a tensor only if rebuilding one element costs at most
    /// this many FLOPs (the paper's `O(1)` criterion made concrete).
    pub flops_per_element_threshold: f64,
}

impl Default for RecomputeOptions {
    fn default() -> Self {
        Self {
            scope: RecomputeScope::All,
            flops_per_element_threshold: 16.0,
        }
    }
}

/// The training memory plan: what persists across the forward→backward
/// boundary and what is rebuilt.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlan {
    /// Forward nodes whose full outputs are stashed.
    pub stash: BTreeSet<NodeId>,
    /// Forward nodes whose *auxiliaries* are stashed (softmax max +
    /// denominator, gather-max argmax tables).
    pub aux_stash: BTreeSet<NodeId>,
    /// Forward nodes recomputed during the backward pass.
    pub recomputed: BTreeSet<NodeId>,
}

/// FLOPs to rebuild one element of `node` (∞-like large values for
/// non-recomputable kinds).
fn cost_per_element(ir: &IrGraph, node: &crate::ir::Node) -> f64 {
    match &node.kind {
        OpKind::Scatter(crate::op::ScatterFn::Bin(_)) => 1.0,
        OpKind::Scatter(_) => 0.0,
        OpKind::Unary(_) | OpKind::Binary(_) => 1.0,
        // With stashed max/denominator: one exp + one divide per edge.
        OpKind::EdgeSoftmax => 2.0,
        OpKind::GaussianWeight => {
            let r = ir.node(node.inputs[0]).dim.feat as f64;
            3.0 * r + 2.0
        }
        OpKind::SliceCols { .. } | OpKind::SetHeads { .. } | OpKind::FeatBroadcast { .. } => 0.0,
        _ => f64::INFINITY,
    }
}

/// Plans stash/recompute for a training graph and attaches recompute
/// closures to the backward kernels.
pub fn plan_training_memory(
    ir: &IrGraph,
    kernels: &mut [Kernel],
    opts: &RecomputeOptions,
) -> MemoryPlan {
    let mut plan = MemoryPlan::default();

    // Node → kernel (primary).
    let mut owner: HashMap<NodeId, usize> = HashMap::new();
    for k in kernels.iter() {
        for &n in &k.nodes {
            owner.insert(n, k.id);
        }
    }

    // Forward values read by backward nodes, and which kernels read them.
    let mut saved: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for n in ir.nodes() {
        if n.phase != Phase::Backward {
            continue;
        }
        let Some(&k) = owner.get(&n.id) else { continue };
        for &i in &n.inputs {
            let inp = ir.node(i);
            if inp.phase == Phase::Forward && inp.kind.fusion_class() != FusionClass::Leaf {
                saved.entry(i).or_default().push(k);
            }
        }
        // Argmax tables are always auxiliary stashes.
        if let OpKind::GatherMaxBwd { fwd } = n.kind {
            plan.aux_stash.insert(fwd);
        }
    }

    // Expensive kernels (linear projections and their gradients) cannot
    // host fused recomputation, so tensors they read must be stashed.
    let kernel_is_expensive: Vec<bool> = kernels
        .iter()
        .map(|k| {
            k.nodes
                .iter()
                .any(|&n| ir.node(n).kind.fusion_class() == FusionClass::Expensive)
        })
        .collect();
    let consumers = ir.consumers();

    // Stash/recompute decision per saved node.
    for (&s, reader_kernels) in &saved {
        let node = ir.node(s);
        let expensive_reader = reader_kernels.iter().any(|&k| kernel_is_expensive[k]);
        let cheap = cost_per_element(ir, node) <= opts.flops_per_element_threshold;
        // A node is forward-internal when every forward consumer shares
        // its kernel and it is not a model output — i.e. fusion already
        // keeps it on-chip and the fused built-in's backward rebuilds it.
        let forward_internal = !ir.outputs().contains(&s)
            && consumers[s]
                .iter()
                .all(|&c| ir.node(c).phase != Phase::Forward || owner.get(&c) == owner.get(&s));
        let eligible = match opts.scope {
            RecomputeScope::None => false,
            RecomputeScope::FusedInternalsOnly => forward_internal,
            RecomputeScope::All => true,
        };
        if eligible
            && node.space == Space::Edge
            && node.kind.fusion_class() == FusionClass::Fusible
            && cheap
            && !expensive_reader
        {
            plan.recomputed.insert(s);
            if node.kind == OpKind::EdgeSoftmax {
                plan.aux_stash.insert(s);
            }
        } else {
            plan.stash.insert(s);
        }
    }

    // Recompute closures: everything needed to rebuild the recomputed
    // nodes from stashes/leaves, walking forward ancestors.
    let mut full_recompute: BTreeSet<NodeId> = plan.recomputed.clone();
    let mut stack: Vec<NodeId> = plan.recomputed.iter().copied().collect();
    while let Some(r) = stack.pop() {
        for &i in &ir.node(r).inputs {
            let inp = ir.node(i);
            if inp.kind.fusion_class() == FusionClass::Leaf
                || plan.stash.contains(&i)
                || full_recompute.contains(&i)
            {
                continue;
            }
            let cheap = cost_per_element(ir, inp) <= opts.flops_per_element_threshold;
            if inp.space == Space::Edge && inp.kind.fusion_class() == FusionClass::Fusible && cheap
            {
                full_recompute.insert(i);
                if inp.kind == OpKind::EdgeSoftmax {
                    plan.aux_stash.insert(i);
                }
                stack.push(i);
            } else {
                // O(|V|) (or expensive) ancestor: stash it instead.
                plan.stash.insert(i);
            }
        }
    }
    plan.recomputed = full_recompute;

    // Attach per-kernel closures: each backward graph kernel rebuilds the
    // recomputed values its members consume (duplication across kernels is
    // intentional — recomputation is local to the fused kernel).
    let is_backward_kernel: Vec<bool> = kernels
        .iter()
        .map(|k| k.nodes.iter().any(|&n| ir.node(n).phase == Phase::Backward))
        .collect();
    let kernel_expensive = kernel_is_expensive;
    for k in kernels.iter_mut() {
        if !is_backward_kernel[k.id] || kernel_expensive[k.id] {
            continue;
        }
        let members: HashSet<NodeId> = k.nodes.iter().copied().collect();
        let mut need: BTreeSet<NodeId> = BTreeSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &n in &k.nodes {
            for &i in &ir.node(n).inputs {
                if plan.recomputed.contains(&i) && !members.contains(&i) {
                    stack.push(i);
                }
            }
        }
        while let Some(r) = stack.pop() {
            if !need.insert(r) {
                continue;
            }
            for &i in &ir.node(r).inputs {
                if plan.recomputed.contains(&i) {
                    stack.push(i);
                }
            }
        }
        // BTreeSet iteration is ascending node id == topological order.
        k.recompute = need.into_iter().collect();
        // A dense elementwise kernel that now hosts graph-op recomputation
        // becomes a graph kernel.
        if !k.recompute.is_empty() && k.mapping == ThreadMapping::Dense {
            k.mapping = ThreadMapping::EdgeBalanced;
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::append_backward;
    use crate::fusion::{partition, FusionLevel, MappingPolicy};
    use crate::op::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn, UnaryFn};

    /// GAT-like training graph: linear → scatter_add → LR → softmax → mul
    /// with scattered features → gather.
    fn gat_training_ir() -> (IrGraph, NodeId, NodeId) {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 8);
        let hw = g.linear(h, w).unwrap();
        let a = g.param("a", 8, 1);
        let score = g.linear(hw, a).unwrap(); // [V,1] attention logit
        let e = g
            .scatter(ScatterFn::Bin(BinaryFn::Add), score, score)
            .unwrap();
        let lr = g.unary(UnaryFn::LeakyRelu(0.2), e).unwrap();
        let sm = g.edge_softmax(lr).unwrap();
        let hu = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, sm).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        g.mark_output(out);
        append_backward(&mut g, out).unwrap();
        (g, sm, hw)
    }

    #[test]
    fn edge_intermediates_recomputed_vertex_stashed() {
        let (g, sm, hw) = gat_training_ir();
        let mut kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        let plan = plan_training_memory(&g, &mut kernels, &RecomputeOptions::default());
        // Softmax output (edge) must be recomputed with aux stashed.
        assert!(plan.recomputed.contains(&sm), "softmax must be recomputed");
        assert!(plan.aux_stash.contains(&sm), "softmax needs aux stash");
        // Projected vertex features are stashed, not recomputed.
        assert!(plan.stash.contains(&hw));
        // No O(|E|) tensor may appear in the stash.
        for &s in &plan.stash {
            assert_ne!(
                g.node(s).space,
                Space::Edge,
                "edge tensor {} stashed under recomputation",
                g.node(s).name
            );
        }
    }

    #[test]
    fn disabled_recompute_stashes_everything_saved() {
        let (g, sm, _) = gat_training_ir();
        let mut kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        let opts = RecomputeOptions {
            scope: RecomputeScope::None,
            ..RecomputeOptions::default()
        };
        let plan = plan_training_memory(&g, &mut kernels, &opts);
        assert!(plan.recomputed.is_empty());
        assert!(
            plan.stash.contains(&sm),
            "softmax output stashed when disabled"
        );
        assert!(kernels.iter().all(|k| k.recompute.is_empty()));
    }

    #[test]
    fn backward_kernels_get_closures() {
        let (g, sm, _) = gat_training_ir();
        let mut kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        plan_training_memory(&g, &mut kernels, &RecomputeOptions::default());
        let with_recompute: Vec<_> = kernels.iter().filter(|k| !k.recompute.is_empty()).collect();
        assert!(
            !with_recompute.is_empty(),
            "some backward kernel must recompute"
        );
        // Closures are topologically ordered and include the softmax.
        for k in with_recompute {
            assert!(k.recompute.windows(2).all(|w| w[0] < w[1]));
            for &r in &k.recompute {
                assert_eq!(g.node(r).phase, Phase::Forward);
            }
        }
        assert!(kernels.iter().any(|k| k.recompute.contains(&sm)));
    }

    #[test]
    fn expensive_reader_forces_stash() {
        // Linear applied on *edges* (no reorg): its weight gradient reads
        // the edge tensor from a dense kernel, so the tensor must stash.
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let le = g.linear(e, w).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, le).unwrap();
        g.mark_output(out);
        append_backward(&mut g, out).unwrap();
        let mut kernels = partition(&g, FusionLevel::Unified, MappingPolicy::Auto);
        let plan = plan_training_memory(&g, &mut kernels, &RecomputeOptions::default());
        assert!(
            plan.stash.contains(&e),
            "edge input of a dense weight-gradient must be stashed"
        );
    }
}

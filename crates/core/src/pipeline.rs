//! The compiler driver: model IR → [`ExecutionPlan`] under a preset.
//!
//! Presets mirror the systems compared in the paper's evaluation (§7):
//!
//! | Preset | Reorg (§4) | Fusion (§5) | Recompute (§6) | Fused exec |
//! |---|---|---|---|---|
//! | [`Preset::Dgl`] | no | DGL built-ins | no (stash all) | no |
//! | [`Preset::FuseGnn`] | no | edge-centric chains | no (stash all) | no |
//! | [`Preset::Ours`] | yes | unified mapping | yes | yes (tiled) |
//!
//! [`CompileOptions`] exposes each technique independently for the
//! ablation studies (Figures 8–10).

use crate::autodiff::{append_backward, BackwardResult};
use crate::exec_policy::ExecPolicy;
use crate::fusion::{duplicate_copy_scatters, partition, MappingPolicy};
use crate::ir::{IrError, IrGraph, Result};
use crate::plan::ExecutionPlan;
use crate::recompute::{plan_training_memory, RecomputeOptions, RecomputeScope};
use crate::reorg::{reorganize, ReorgReport};

pub use crate::fusion::FusionLevel;

/// The systems compared in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Deep Graph Library baseline.
    Dgl,
    /// fuseGNN baseline (edge-operator fusion, no recomputation).
    FuseGnn,
    /// This paper: all three techniques.
    Ours,
}

/// Knobs of the compilation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Apply propagation-postponed reorganization (§4).
    pub reorg: bool,
    /// Fusion capability (§5).
    pub fusion: FusionLevel,
    /// Thread-mapping policy for fused graph kernels.
    pub mapping: MappingPolicy,
    /// Intermediate-data recomputation scope (§6).
    pub recompute: RecomputeScope,
    /// Recompute threshold (FLOPs per rebuilt element).
    pub recompute_threshold: f64,
    /// CPU execution policy for the compiled plan: thread width, fused
    /// tiled interpretation (`ExecPolicy::fused` — on for
    /// [`Preset::Ours`], overridable per run with `GNNOPT_FUSED=0|1`),
    /// reordering, GEMM engine and the CSR dispatch thresholds.
    pub exec: ExecPolicy,
}

impl CompileOptions {
    /// Options for a named preset.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Dgl => Self {
                reorg: false,
                fusion: FusionLevel::DglBuiltin,
                mapping: MappingPolicy::Auto,
                recompute: RecomputeScope::FusedInternalsOnly,
                recompute_threshold: 16.0,
                exec: ExecPolicy::auto(),
            },
            Preset::FuseGnn => Self {
                reorg: false,
                fusion: FusionLevel::EdgeOnly,
                mapping: MappingPolicy::Auto,
                recompute: RecomputeScope::FusedInternalsOnly,
                recompute_threshold: 16.0,
                exec: ExecPolicy::auto(),
            },
            Preset::Ours => Self {
                reorg: true,
                fusion: FusionLevel::Unified,
                mapping: MappingPolicy::Auto,
                recompute: RecomputeScope::All,
                recompute_threshold: 16.0,
                exec: ExecPolicy::auto().with_fused(true),
            },
        }
    }

    /// This paper's full pipeline.
    pub fn ours() -> Self {
        Self::preset(Preset::Ours)
    }

    /// DGL baseline pipeline.
    pub fn dgl() -> Self {
        Self::preset(Preset::Dgl)
    }

    /// fuseGNN baseline pipeline.
    pub fn fusegnn() -> Self {
        Self::preset(Preset::FuseGnn)
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::ours()
    }
}

/// A compiled model: the plan plus gradient bookkeeping.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The executable plan.
    pub plan: ExecutionPlan,
    /// Backward bookkeeping (present when compiled for training).
    pub backward: Option<BackwardResult>,
    /// Reorganization statistics.
    pub reorg: ReorgReport,
}

/// Compiles a forward model IR into an execution plan.
///
/// For training, the (single) marked output is differentiated; the caller
/// seeds `backward.seed` with `∂L/∂output` at run time.
///
/// # Errors
///
/// Returns [`IrError`] when the model declares no output, a training
/// compile finds multiple outputs, or autodiff hits an unsupported
/// operator.
pub fn compile(ir: &IrGraph, training: bool, opts: &CompileOptions) -> Result<CompiledModel> {
    if ir.outputs().is_empty() {
        return Err(IrError::Unsupported("model declares no outputs".into()));
    }
    let (mut graph, reorg_report) = if opts.reorg {
        reorganize(ir)?
    } else {
        (ir.clone(), ReorgReport::default())
    };

    let backward = if training {
        if graph.outputs().len() != 1 {
            return Err(IrError::Unsupported(
                "training requires exactly one output".into(),
            ));
        }
        let output = graph.outputs()[0];
        Some(append_backward(&mut graph, output)?)
    } else {
        None
    };

    // Normalize shared copy-scatters so every consuming kernel re-reads
    // vertex features instead of sharing a materialized O(|E|) copy
    // (matching how real systems implement copy_u/copy_v access patterns).
    let (graph, remap) = duplicate_copy_scatters(&graph);
    let backward = backward.map(|mut b| {
        b.seed = remap[&b.seed];
        b.param_grads = b
            .param_grads
            .into_iter()
            .map(|(p, g)| (remap[&p], remap[&g]))
            .collect();
        b.grads = b
            .grads
            .into_iter()
            .filter_map(|(n, g)| match (remap.get(&n), remap.get(&g)) {
                (Some(&n2), Some(&g2)) => Some((n2, g2)),
                _ => None,
            })
            .collect();
        b
    });

    let mut kernels = partition(&graph, opts.fusion, opts.mapping);

    let (stash, aux) = if training {
        let ropts = RecomputeOptions {
            scope: opts.recompute,
            flops_per_element_threshold: opts.recompute_threshold,
        };
        let mp = plan_training_memory(&graph, &mut kernels, &ropts);
        (mp.stash, mp.aux_stash)
    } else {
        Default::default()
    };

    let param_grads = backward
        .as_ref()
        .map(|b| b.param_grads.clone())
        .unwrap_or_default();
    let mut plan = ExecutionPlan {
        ir: graph,
        kernels,
        stash,
        aux_stash: aux,
        param_grads,
        training,
        exec: opts.exec,
        programs: Vec::new(),
    };
    // Lower every fusible kernel to a tiled program. Always computed —
    // even for plans whose policy keeps `fused` off — so `GNNOPT_FUSED=1`
    // can force the tiled interpreter onto any plan for A/B comparison.
    plan.programs = crate::lower::lower_plan(&plan);
    Ok(CompiledModel {
        plan,
        backward,
        reorg: reorg_report,
    })
}

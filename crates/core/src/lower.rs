//! Lowering fused kernels to tiled [`KernelProgram`]s (§5 realized).
//!
//! The fusion pass (`fusion.rs`) decides *which* nodes share a kernel; by
//! itself that only changes the analytical model. This pass decides *how*
//! a fused kernel actually runs on hardware so the fusion pays off in
//! measured memory and IO: every member node is classified as
//!
//! * [`Storage::Materialized`] — its output leaves the kernel (consumed
//!   by another kernel, a model output, a stashed value, or a terminal
//!   sink) and is written to a full tensor, exactly as before;
//! * [`Storage::Scratch`] — a kernel-internal value that exists only as a
//!   per-tile scratch buffer during execution. For edge-space
//!   intermediates this is the paper's headline saving: the `O(|E|·d)`
//!   tensor between a `Scatter` and the `Gather` that consumes it never
//!   exists in memory;
//! * [`Storage::Prelude`] — a parameter-space view (weight slice /
//!   reshape) computed once per kernel launch; it is `O(params)`, not
//!   graph-sized, so tiling it would be pointless.
//!
//! A [`KernelProgram`] is executed by `gnnopt-exec`'s fused interpreter
//! over CSR **destination-vertex ranges** (tiles): the canonical edge
//! numbering is destination-major, so the edges of a vertex range are a
//! contiguous block, every `ByDst` reduction group is wholly inside one
//! tile, and per-vertex edge order is preserved — which is why fused
//! execution stays **bit-identical** to the node-by-node reference path.
//!
//! # Segments: source-grouped reductions inside a destination tiling
//!
//! Backward kernels of graph models inherently contain **source**-grouped
//! reductions (the dual of a `Scatter(CopyU)` is a `Gather` over
//! out-edges), whose groups are not contiguous in the destination-major
//! edge order. Rather than failing the whole kernel, lowering splits the
//! program into *segments*: maximal runs of destination-tileable steps,
//! separated by [`StepExec::Full`] steps that run once over the whole
//! graph through the ordinary reference kernels (which are already
//! deterministic and thread-parallel). A scratch value read across a
//! segment boundary — in particular by a full step — is *spilled*: forced
//! to [`Storage::Interior`], a real full tensor that lives only for the
//! duration of the kernel. This is how a fused GAT backward kernel keeps
//! its softmax-backward chain in scratch while its two vertex-gradient
//! gathers (`ByDst` and `BySrc`) both still execute.
//!
//! # Totality
//!
//! Lowering is *total*: [`lower_kernel`] produces a [`KernelProgram`] for
//! every kernel the fusion pass emits — there is no per-kernel fallback to
//! the reference path. Each member's schedule follows from its per-edge
//! views ([`crate::view`]):
//!
//! * per-edge / destination-endpoint members run [`StepExec::Tiled`]
//!   inside the destination-tile loop — including the argmax-routed
//!   `GatherMaxBwd` when its forward gather grouped `ByDst` (the argmax
//!   rows of a tile's destinations select only that tile's edges);
//! * source-grouped reductions, the `BySrc`-grouped `GatherMaxBwd`, dense
//!   projections (`Linear`, `HeadDot`, and their backward duals) and the
//!   cross-row parameter reductions (`GaussianBwdMu`/`GaussianBwdSigma`)
//!   run as [`StepExec::Full`] whole-graph steps with edge-inverted or
//!   dense schedules — their own segments inside the program;
//! * parameter-space *views* (weight slices / reshapes of out-of-kernel
//!   values) are [`Storage::Prelude`] steps evaluated once per launch;
//! * a tiled step reading a same-segment member at the **source**
//!   endpoint starts a fresh segment (a tile only owns its destinations),
//!   which spills the producer to [`Storage::Interior`] via the ordinary
//!   cross-segment rule;
//! * singleton kernels lower to one-step programs, so fused execution is
//!   uniform: every kernel runs through the same program interpreter. The
//!   lone step executes [`StepExec::Full`] (direct reference dispatch —
//!   tiling a single materialized output would round-trip rows through
//!   scratch for no memory win), except `EdgeSoftmax`, which stays tiled
//!   to record its fresh max/denominator auxiliaries.

use crate::op::{EdgeGroup, NodeId, OpKind, Space};
use crate::plan::{ExecutionPlan, Kernel};
use std::collections::{HashMap, HashSet};

/// Where a program step's output lives during tiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Full tensor handed to the value store (kernel boundary).
    Materialized,
    /// Full tensor forced by a cross-segment read (a spill); it is
    /// dropped as soon as the kernel finishes.
    Interior,
    /// Per-tile rows in a worker-local scratch arena (never a full
    /// tensor).
    Scratch,
    /// Parameter-space view evaluated once per kernel launch.
    Prelude,
}

/// How a step executes within the program schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExec {
    /// Runs inside the destination-tile loop.
    Tiled,
    /// Runs once over the whole graph via the reference kernel (its own
    /// segment): source-grouped reductions that cannot tile by
    /// destination.
    Full,
}

/// One member node of a lowered kernel, in execution order.
#[derive(Debug, Clone)]
pub struct ProgramStep {
    /// The IR node this step computes.
    pub node: NodeId,
    /// Output storage class.
    pub storage: Storage,
    /// Tiled vs whole-graph execution.
    pub exec: StepExec,
    /// Execution segment: tiled steps sharing a segment exchange scratch;
    /// every full step is its own segment. Segments run in ascending
    /// order.
    pub segment: usize,
    /// Output index space (copied from the node for self-contained size
    /// arithmetic).
    pub space: Space,
    /// Flattened output columns (`dim.total()`, or `cols` for params).
    pub cols: usize,
    /// True when the step rebuilds a forward value inside a backward
    /// kernel (member of [`Kernel::recompute`]).
    pub recompute: bool,
}

/// A fused kernel lowered to a tiled execution recipe.
///
/// `steps` are in ascending node-id order, which is a topological order of
/// the member subgraph (IR construction order is topological and recompute
/// members are forward nodes preceding the backward members that read
/// them).
#[derive(Debug, Clone)]
pub struct KernelProgram {
    /// Index of the kernel this program lowers.
    pub kernel: usize,
    /// Member steps in execution order.
    pub steps: Vec<ProgramStep>,
}

impl KernelProgram {
    /// Nodes written to full tensors (kernel boundary), in step order.
    pub fn materialized(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.steps
            .iter()
            .filter(|s| s.storage == Storage::Materialized)
            .map(|s| s.node)
    }

    /// Scratch-class steps (kernel-internal values), in step order.
    pub fn scratch(&self) -> impl Iterator<Item = &ProgramStep> + '_ {
        self.steps.iter().filter(|s| s.storage == Storage::Scratch)
    }

    /// Scratch bytes one tile of `tile_vertices` × `tile_edges` needs in
    /// segment `segment`: what a worker arena must hold so kernel-internal
    /// values never become full tensors. Materialized/interior tiled
    /// steps also stage their tile rows in scratch before the boundary
    /// write, so they count too.
    pub fn scratch_tile_bytes(
        &self,
        segment: usize,
        tile_vertices: usize,
        tile_edges: usize,
    ) -> u64 {
        self.steps
            .iter()
            .filter(|s| {
                s.exec == StepExec::Tiled && s.segment == segment && s.storage != Storage::Prelude
            })
            .map(|s| {
                let rows = match s.space {
                    Space::Edge => tile_edges,
                    Space::Vertex => tile_vertices,
                    Space::Param => 0,
                };
                4 * (rows as u64) * (s.cols as u64)
            })
            .sum()
    }

    /// The segment ids of the program, ascending and deduplicated
    /// (prelude steps carry no segment and are excluded).
    pub fn segments(&self) -> Vec<usize> {
        let mut segs: Vec<usize> = self
            .steps
            .iter()
            .filter(|s| s.storage != Storage::Prelude)
            .map(|s| s.segment)
            .collect();
        segs.dedup();
        segs
    }

    /// Bytes the reference executor would materialize for the
    /// kernel-internal (scratch-class) values — the memory the fused path
    /// saves, and exactly the intermediate bytes `gnnopt-sim`'s
    /// [`ExecutionPlan::memory_replay`] never charges for fused plans.
    pub fn internal_full_bytes(&self, num_vertices: usize, num_edges: usize) -> u64 {
        self.scratch()
            .map(|s| Self::full_bytes(s, num_vertices, num_edges))
            .sum()
    }

    /// Bytes of the interior spills (scratch values forced to real
    /// tensors by cross-segment reads): the part of a kernel's internals
    /// the tiled interpreter must still pay for, transiently.
    pub fn interior_full_bytes(&self, num_vertices: usize, num_edges: usize) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.storage == Storage::Interior)
            .map(|s| Self::full_bytes(s, num_vertices, num_edges))
            .sum()
    }

    fn full_bytes(s: &ProgramStep, num_vertices: usize, num_edges: usize) -> u64 {
        let rows = match s.space {
            Space::Edge => num_edges,
            Space::Vertex => num_vertices,
            Space::Param => 0,
        };
        4 * (rows as u64) * (s.cols as u64)
    }
}

/// Lowers every kernel of a plan. Lowering is total: the result has one
/// program per kernel, in kernel order.
pub fn lower_plan(plan: &ExecutionPlan) -> Vec<KernelProgram> {
    plan.kernels.iter().map(|k| lower_kernel(plan, k)).collect()
}

/// How a (non-prelude) member executes — total over every op the fusion
/// pass can put in a kernel. Leaves are never kernel members (every region
/// builder gates on `FusionClass::Leaf`), so they are unreachable here.
fn op_exec(ir: &crate::ir::IrGraph, node: &crate::ir::Node) -> StepExec {
    match &node.kind {
        OpKind::Scatter(_)
        | OpKind::EdgeSoftmax
        | OpKind::EdgeSoftmaxBwd
        | OpKind::Unary(_)
        | OpKind::UnaryBwd(_)
        | OpKind::Binary(_)
        | OpKind::GaussianWeight
        | OpKind::SliceCols { .. }
        | OpKind::EmbedCols { .. }
        | OpKind::SetHeads { .. }
        | OpKind::HeadReduce(_)
        | OpKind::HeadBroadcast { .. }
        | OpKind::FeatSum
        | OpKind::FeatBroadcast { .. } => StepExec::Tiled,
        // Source-grouped reductions run as whole-graph full steps: their
        // groups are not contiguous in the destination-major edge order.
        OpKind::Gather { group, .. } | OpKind::GatherMeanBwd { group } => {
            if *group == EdgeGroup::ByDst {
                StepExec::Tiled
            } else {
                StepExec::Full
            }
        }
        // The argmax-routed gather-max backward tiles iff its forward
        // gather grouped by destination: the argmax rows of a tile's
        // destinations name only that tile's edges. A BySrc forward
        // scatters writes across tiles, so it runs full (edge-inverted).
        OpKind::GatherMaxBwd { fwd } => {
            if crate::view::gather_max_bwd_group(ir, *fwd) == EdgeGroup::ByDst {
                StepExec::Tiled
            } else {
                StepExec::Full
            }
        }
        // Dense projections and cross-row parameter reductions span all
        // tiles: whole-graph full steps through the reference kernels.
        OpKind::Linear
        | OpKind::LinearBwdInput
        | OpKind::LinearBwdWeight
        | OpKind::HeadDot
        | OpKind::HeadDotBwdInput
        | OpKind::HeadDotBwdParam
        | OpKind::GaussianBwdMu
        | OpKind::GaussianBwdSigma
        | OpKind::SliceRows { .. }
        | OpKind::EmbedRows { .. } => StepExec::Full,
        OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed => {
            unreachable!("leaves are never kernel members")
        }
    }
}

/// Lowers one kernel. Total: every kernel yields a program (module docs
/// describe the schedule classes).
pub fn lower_kernel(plan: &ExecutionPlan, kernel: &Kernel) -> KernelProgram {
    let ir = &plan.ir;
    // Members in ascending node-id order (== topological order).
    let recompute: HashSet<NodeId> = kernel.recompute.iter().copied().collect();
    let mut member_ids: Vec<NodeId> = kernel
        .nodes
        .iter()
        .chain(&kernel.recompute)
        .copied()
        .collect();
    member_ids.sort_unstable();
    member_ids.dedup();
    let members: HashSet<NodeId> = member_ids.iter().copied().collect();
    let materialized: HashSet<NodeId> = plan.materialized_nodes(kernel).into_iter().collect();

    // Pass 1: execution and storage classes, plus segment assignment
    // (full steps break the tiled run they interrupt, and a tiled
    // source-endpoint read of a same-segment member starts a fresh
    // segment so the producer completes — and spills — first).
    let mut storage: HashMap<NodeId, Storage> = HashMap::new();
    let mut exec: HashMap<NodeId, StepExec> = HashMap::new();
    let mut segment: HashMap<NodeId, usize> = HashMap::new();
    let mut seg = 0usize;
    let mut prev_full = false;
    for &id in &member_ids {
        let node = ir.node(id);
        if node.space == Space::Param {
            // Parameter-space *views* of out-of-kernel values (weight
            // slices / reshapes introduced by the reorganization pass)
            // are prelude steps: evaluated once per launch, `O(params)`.
            let viewish = matches!(
                node.kind,
                OpKind::SliceCols { .. } | OpKind::SliceRows { .. } | OpKind::SetHeads { .. }
            );
            let inputs_prelude = node
                .inputs
                .iter()
                .all(|i| !members.contains(i) || storage.get(i) == Some(&Storage::Prelude));
            if viewish && inputs_prelude && !materialized.contains(&id) {
                storage.insert(id, Storage::Prelude);
                continue;
            }
            // Parameter-space *compute* members (the Gaussian param
            // reductions, fused weight gradients) reduce across all rows:
            // whole-graph full steps, below.
        }
        // Non-prelude param members always run full — `O(params)` work
        // with no tile structure (and the tiled interpreter has no
        // parameter-space scratch rows).
        let e = if node.space == Space::Param {
            StepExec::Full
        } else {
            op_exec(ir, node)
        };
        if e == StepExec::Full {
            seg += 1; // a full step is its own segment …
            prev_full = true;
        } else {
            if prev_full {
                seg += 1; // … and the next tiled run starts a fresh one.
                prev_full = false;
            }
            // A tile owns destination rows only: a source-endpoint read
            // of a member still being produced in the current segment
            // forces a segment break (the producer spills in pass 2).
            let src_break = crate::view::src_side_reads(ir, id).into_iter().any(|pos| {
                let i = node.inputs[pos];
                members.contains(&i)
                    && segment.get(&i) == Some(&seg)
                    && exec.get(&i) == Some(&StepExec::Tiled)
            });
            if src_break {
                seg += 1;
            }
        }
        exec.insert(id, e);
        segment.insert(id, seg);
        let st = if e == StepExec::Full {
            // Full steps always produce a real tensor; whether it is a
            // boundary value or a kernel-transient decides its lifetime.
            if materialized.contains(&id) {
                Storage::Materialized
            } else {
                Storage::Interior
            }
        } else if materialized.contains(&id) && !recompute.contains(&id) {
            Storage::Materialized
        } else {
            Storage::Scratch
        };
        storage.insert(id, st);
    }

    // Pass 2: spills. A scratch value read by a full step, or by a tiled
    // step in a *different* segment, must become a real tensor.
    for &id in &member_ids {
        let node = ir.node(id);
        if storage.get(&id) == Some(&Storage::Prelude) {
            continue;
        }
        for i in &node.inputs {
            if !members.contains(i) || storage.get(i) == Some(&Storage::Prelude) {
                continue;
            }
            let cross_segment = exec[&id] == StepExec::Full || segment[i] != segment[&id];
            if cross_segment && storage[i] == Storage::Scratch {
                storage.insert(*i, Storage::Interior);
            }
        }
    }

    let mut steps: Vec<ProgramStep> = member_ids
        .iter()
        .map(|&id| {
            let node = ir.node(id);
            ProgramStep {
                node: id,
                storage: storage[&id],
                exec: exec.get(&id).copied().unwrap_or(StepExec::Tiled),
                segment: segment.get(&id).copied().unwrap_or(0),
                space: node.space,
                cols: node.dim.total(),
                recompute: recompute.contains(&id),
            }
        })
        .collect();

    // A singleton program has nothing to keep on-chip: its only step's
    // output is the kernel boundary, so tiling it would round-trip every
    // row through scratch for zero memory win (measurably slower on
    // GEMM-heavy models). Run it as one direct full step through the
    // shared reference dispatch instead — except `EdgeSoftmax`, whose
    // fresh max/denominator auxiliaries only the tiled path records.
    if steps.len() == 1
        && steps[0].exec == StepExec::Tiled
        && steps[0].storage == Storage::Materialized
        && !matches!(ir.node(steps[0].node).kind, OpKind::EdgeSoftmax)
    {
        steps[0].exec = StepExec::Full;
    }

    KernelProgram {
        kernel: kernel.id,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrGraph;
    use crate::op::{BinaryFn, Dim, ReduceFn, ScatterFn, UnaryFn};
    use crate::pipeline::{compile, CompileOptions};

    /// The graph-related section of a GAT layer (same shape as the fusion
    /// tests): one fused kernel whose edge intermediates are internal.
    fn gat_like() -> IrGraph {
        let mut g = IrGraph::new();
        let a = g.input_vertex("a", Dim::multi(2, 1));
        let h = g.input_vertex("h", Dim::multi(2, 8));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Add), a, a).unwrap();
        let lr = g.unary(UnaryFn::LeakyRelu(0.2), e).unwrap();
        let sm = g.edge_softmax(lr).unwrap();
        let hu = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, sm).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn gat_forward_kernel_lowers_with_internal_edge_scratch() {
        let plan = compile(&gat_like(), false, &CompileOptions::ours())
            .unwrap()
            .plan;
        assert_eq!(plan.kernels.len(), 1);
        let prog = lower_kernel(&plan, &plan.kernels[0]);
        // Only the gather output crosses the kernel boundary.
        let mat: Vec<NodeId> = prog.materialized().collect();
        assert_eq!(mat.len(), 1);
        assert_eq!(
            plan.ir.node(mat[0]).kind.reduction_group(),
            Some(EdgeGroup::ByDst)
        );
        // All five edge intermediates stay in scratch.
        let scratch_edges = prog.scratch().filter(|s| s.space == Space::Edge).count();
        assert_eq!(scratch_edges, 5);
        // Scratch arithmetic: per-tile bytes scale with the tile, the
        // reference-materialization equivalent with the whole graph.
        let per_tile = prog.scratch_tile_bytes(0, 8, 32);
        let full = prog.internal_full_bytes(1000, 100_000);
        assert!(per_tile > 0 && full > per_tile);
    }

    /// GAT-like training graph with real parameters (autodiff needs a
    /// parameter upstream of the output).
    fn gat_training_ir() -> IrGraph {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(8));
        let w = g.param("w", 8, 8);
        let hw = g.linear(h, w).unwrap();
        let a = g.param("a", 8, 1);
        let score = g.linear(hw, a).unwrap();
        let e = g
            .scatter(ScatterFn::Bin(BinaryFn::Add), score, score)
            .unwrap();
        let lr = g.unary(UnaryFn::LeakyRelu(0.2), e).unwrap();
        let sm = g.edge_softmax(lr).unwrap();
        let hu = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, sm).unwrap();
        let out = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, me).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn compile_populates_programs_for_fused_kernels() {
        let compiled = compile(&gat_training_ir(), true, &CompileOptions::ours()).unwrap();
        let plan = &compiled.plan;
        assert!(plan.exec.fused, "ours preset enables fused execution");
        assert_eq!(plan.programs.len(), plan.kernels.len());
        // Programs agree with the plan's own materialization analysis.
        for (k, prog) in plan.kernels.iter().zip(&plan.programs) {
            let predicted: HashSet<NodeId> = plan.materialized_nodes(k).into_iter().collect();
            let got: HashSet<NodeId> = prog.materialized().collect();
            assert_eq!(got, predicted, "kernel {} materialization", k.id);
        }
    }

    #[test]
    fn gather_max_backward_lowers_as_tiled_step() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let hw = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let v = g.gather(ReduceFn::Max, EdgeGroup::ByDst, e).unwrap();
        g.mark_output(v);
        let compiled = compile(&g, true, &CompileOptions::ours()).unwrap();
        let plan = &compiled.plan;
        assert_eq!(plan.programs.len(), plan.kernels.len());
        let step = plan
            .programs
            .iter()
            .flat_map(|p| &p.steps)
            .find(|s| matches!(plan.ir.node(s.node).kind, OpKind::GatherMaxBwd { .. }))
            .expect("the backward plan contains a GatherMaxBwd step");
        // ByDst forward ⇒ the argmax routing tiles by destination.
        assert_eq!(step.exec, StepExec::Tiled);
    }

    #[test]
    fn by_src_reduction_becomes_full_step_and_spills_its_input() {
        // A BySrc gather cannot tile by destination ranges: it becomes a
        // whole-graph full step, and the edge intermediate it reads is
        // spilled to a kernel-transient tensor — while the rest of the
        // chain stays in scratch.
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let ew = g.input_edge("ew", Dim::flat(4));
        let hu = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        let me = g.binary(BinaryFn::Mul, hu, ew).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, me).unwrap();
        g.mark_output(v);
        let plan = compile(&g, false, &CompileOptions::ours()).unwrap().plan;
        assert_eq!(plan.kernels.len(), 1);
        let prog = &plan.programs[0];
        let step = |id: NodeId| prog.steps.iter().find(|s| s.node == id).unwrap();
        assert_eq!(step(v).exec, StepExec::Full);
        assert_eq!(step(v).storage, Storage::Materialized);
        assert_eq!(
            step(me).storage,
            Storage::Interior,
            "spilled full-step input"
        );
        assert_eq!(step(hu).storage, Storage::Scratch, "rest stays on-chip");
        assert!(step(v).segment > step(me).segment);
    }

    #[test]
    fn singleton_kernels_lower_to_one_step_programs() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        g.mark_output(e);
        let plan = compile(&g, false, &CompileOptions::ours()).unwrap().plan;
        assert_eq!(plan.programs.len(), plan.kernels.len());
        let prog = &plan.programs[0];
        assert_eq!(prog.steps.len(), 1);
        assert_eq!(prog.steps[0].storage, Storage::Materialized);
    }
}

//! Reverse-mode autodiff over the operator algebra (paper Appendix B).
//!
//! The key property the paper proves — *the backward pass of the operator
//! set falls back into the operator set* — is what makes the three passes
//! applicable to training: `append_backward` extends the same [`IrGraph`]
//! with [`Phase::Backward`] nodes built from the very same operators
//! (`Gather` ↔ `Scatter` duals, `Apply-` → two `Apply-`), so fusion and
//! recomputation rewrite forward and backward dataflow uniformly.

use crate::ir::{IrError, IrGraph, Phase, Result};
use crate::op::{BinaryFn, Dim, EdgeGroup, NodeId, OpKind, ReduceFn, ScatterFn, Space, UnaryFn};
use std::collections::HashMap;

/// Output of [`append_backward`].
#[derive(Debug, Clone)]
pub struct BackwardResult {
    /// The `GradSeed` node to be bound to `∂L/∂output` at run time.
    pub seed: NodeId,
    /// `(param, grad)` pairs for every parameter reachable from the output.
    pub param_grads: Vec<(NodeId, NodeId)>,
    /// Gradient node of every differentiable forward node.
    pub grads: HashMap<NodeId, NodeId>,
}

/// Appends the backward graph for `output` and returns the gradient
/// bookkeeping. The graph's phase is left at [`Phase::Backward`]; callers
/// that keep building forward nodes must reset it.
///
/// # Errors
///
/// Returns [`IrError::Unsupported`] if a gradient flows into an operator
/// with no backward rule (e.g. pseudo-coordinates of `GaussianWeight`).
pub fn append_backward(g: &mut IrGraph, output: NodeId) -> Result<BackwardResult> {
    let out = g.node(output).clone();
    if !out.requires_grad {
        return Err(IrError::Unsupported(format!(
            "output node {output} ({}) has no parameters upstream",
            out.name
        )));
    }
    g.set_phase(Phase::Backward);
    let seed = g.push_raw(OpKind::GradSeed, vec![], out.space, out.dim, "grad_seed");

    // Contributions per forward node; folded into one node on first use.
    let mut contrib: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    contrib.insert(output, vec![seed]);
    let mut grads: HashMap<NodeId, NodeId> = HashMap::new();
    let mut param_grads: Vec<(NodeId, NodeId)> = Vec::new();

    // Forward nodes in reverse topological (construction) order.
    let forward_ids: Vec<NodeId> = g
        .nodes()
        .iter()
        .filter(|n| n.phase == Phase::Forward && n.id != seed)
        .map(|n| n.id)
        .collect();

    for &id in forward_ids.iter().rev() {
        let node = g.node(id).clone();
        if !node.requires_grad {
            continue;
        }
        let Some(parts) = contrib.remove(&id) else {
            continue;
        };
        let grad = fold_sum(g, &parts)?;
        grads.insert(id, grad);
        if node.kind == OpKind::Param {
            param_grads.push((id, grad));
            continue;
        }
        backprop_node(g, &node, grad, &mut contrib)?;
    }
    param_grads.reverse();
    Ok(BackwardResult {
        seed,
        param_grads,
        grads,
    })
}

/// Folds a contribution list into a single node with `Binary(Add)`.
fn fold_sum(g: &mut IrGraph, parts: &[NodeId]) -> Result<NodeId> {
    let mut acc = parts[0];
    for &p in &parts[1..] {
        acc = g.binary(BinaryFn::Add, acc, p)?;
    }
    Ok(acc)
}

fn add_contrib(
    g: &IrGraph,
    contrib: &mut HashMap<NodeId, Vec<NodeId>>,
    target: NodeId,
    grad: NodeId,
) {
    if g.node(target).requires_grad {
        contrib.entry(target).or_default().push(grad);
    }
}

/// Reduces `grad` (shaped like the binary output) back to an operand's
/// dim, inserting `FeatSum` when the operand was feature-broadcast.
fn reduce_to(g: &mut IrGraph, grad: NodeId, target_dim: Dim) -> Result<NodeId> {
    if g.node(grad).dim.feat == target_dim.feat {
        Ok(grad)
    } else {
        g.feat_sum(grad)
    }
}

#[allow(clippy::too_many_lines)]
fn backprop_node(
    g: &mut IrGraph,
    node: &crate::ir::Node,
    grad: NodeId,
    contrib: &mut HashMap<NodeId, Vec<NodeId>>,
) -> Result<()> {
    let ins = node.inputs.clone();
    match node.kind.clone() {
        OpKind::InputVertex | OpKind::InputEdge | OpKind::GradSeed | OpKind::Param => {}

        OpKind::Linear => {
            let (x, w) = (ins[0], ins[1]);
            if g.node(x).requires_grad {
                let xd = g.node(x).dim;
                let xs = g.node(x).space;
                let gx = g.push_raw(
                    OpKind::LinearBwdInput,
                    vec![grad, w],
                    xs,
                    xd,
                    "linear_bwd_input",
                );
                add_contrib(g, contrib, x, gx);
            }
            if g.node(w).requires_grad {
                let wd = g.node(w).dim;
                let gw = g.push_raw(
                    OpKind::LinearBwdWeight,
                    vec![x, grad],
                    Space::Param,
                    wd,
                    "linear_bwd_weight",
                );
                add_contrib(g, contrib, w, gw);
            }
        }

        OpKind::HeadDot => {
            let (x, a) = (ins[0], ins[1]);
            if g.node(x).requires_grad {
                let (xd, xs) = (g.node(x).dim, g.node(x).space);
                let gx = g.push_raw(
                    OpKind::HeadDotBwdInput,
                    vec![grad, a],
                    xs,
                    xd,
                    "head_dot_bwd_input",
                );
                add_contrib(g, contrib, x, gx);
            }
            if g.node(a).requires_grad {
                let ad = g.node(a).dim;
                let ga = g.push_raw(
                    OpKind::HeadDotBwdParam,
                    vec![x, grad],
                    Space::Param,
                    ad,
                    "head_dot_bwd_param",
                );
                add_contrib(g, contrib, a, ga);
            }
        }

        OpKind::Unary(f) => {
            let x = ins[0];
            let (xd, xs) = (g.node(x).dim, g.node(x).space);
            let gx = g.push_raw(OpKind::UnaryBwd(f), vec![grad, x], xs, xd, "unary_bwd");
            add_contrib(g, contrib, x, gx);
        }

        OpKind::Binary(f) => {
            let (a, b) = (ins[0], ins[1]);
            let (ad, bd) = (g.node(a).dim, g.node(b).dim);
            match f {
                BinaryFn::Add => {
                    let ga = reduce_to(g, grad, ad)?;
                    add_contrib(g, contrib, a, ga);
                    let gb = reduce_to(g, grad, bd)?;
                    add_contrib(g, contrib, b, gb);
                }
                BinaryFn::Sub => {
                    let ga = reduce_to(g, grad, ad)?;
                    add_contrib(g, contrib, a, ga);
                    let neg = g.unary(UnaryFn::Neg, grad)?;
                    let gb = reduce_to(g, neg, bd)?;
                    add_contrib(g, contrib, b, gb);
                }
                BinaryFn::Mul => {
                    if g.node(a).requires_grad {
                        let t = g.binary(BinaryFn::Mul, grad, b)?;
                        let ga = reduce_to(g, t, ad)?;
                        add_contrib(g, contrib, a, ga);
                    }
                    if g.node(b).requires_grad {
                        let t = g.binary(BinaryFn::Mul, grad, a)?;
                        let gb = reduce_to(g, t, bd)?;
                        add_contrib(g, contrib, b, gb);
                    }
                }
                BinaryFn::Div => {
                    if g.node(a).requires_grad {
                        let t = g.binary(BinaryFn::Div, grad, b)?;
                        let ga = reduce_to(g, t, ad)?;
                        add_contrib(g, contrib, a, ga);
                    }
                    if g.node(b).requires_grad {
                        let gy = g.binary(BinaryFn::Mul, grad, node.id)?;
                        let t = g.binary(BinaryFn::Div, gy, b)?;
                        let neg = g.unary(UnaryFn::Neg, t)?;
                        let gb = reduce_to(g, neg, bd)?;
                        add_contrib(g, contrib, b, gb);
                    }
                }
            }
        }

        OpKind::Scatter(f) => match f {
            ScatterFn::CopyU => {
                let gx = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, grad)?;
                add_contrib(g, contrib, ins[0], gx);
            }
            ScatterFn::CopyV => {
                let gy = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, grad)?;
                add_contrib(g, contrib, ins[0], gy);
            }
            ScatterFn::Bin(bf) => {
                let (x, y) = (ins[0], ins[1]);
                match bf {
                    BinaryFn::Add | BinaryFn::Sub => {
                        if g.node(x).requires_grad {
                            let gx = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, grad)?;
                            add_contrib(g, contrib, x, gx);
                        }
                        if g.node(y).requires_grad {
                            let gv = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, grad)?;
                            let gy = if bf == BinaryFn::Sub {
                                g.unary(UnaryFn::Neg, gv)?
                            } else {
                                gv
                            };
                            add_contrib(g, contrib, y, gy);
                        }
                    }
                    BinaryFn::Mul => {
                        if g.node(x).requires_grad {
                            let sv = g.scatter(ScatterFn::CopyV, y, y)?;
                            let ge = g.binary(BinaryFn::Mul, grad, sv)?;
                            let gx = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, ge)?;
                            add_contrib(g, contrib, x, gx);
                        }
                        if g.node(y).requires_grad {
                            let su = g.scatter(ScatterFn::CopyU, x, x)?;
                            let ge = g.binary(BinaryFn::Mul, grad, su)?;
                            let gy = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, ge)?;
                            add_contrib(g, contrib, y, gy);
                        }
                    }
                    BinaryFn::Div => {
                        if g.node(x).requires_grad {
                            let sv = g.scatter(ScatterFn::CopyV, y, y)?;
                            let ge = g.binary(BinaryFn::Div, grad, sv)?;
                            let gx = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, ge)?;
                            add_contrib(g, contrib, x, gx);
                        }
                        if g.node(y).requires_grad {
                            let sv = g.scatter(ScatterFn::CopyV, y, y)?;
                            let gy_e = g.binary(BinaryFn::Mul, grad, node.id)?;
                            let t = g.binary(BinaryFn::Div, gy_e, sv)?;
                            let neg = g.unary(UnaryFn::Neg, t)?;
                            let gy = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, neg)?;
                            add_contrib(g, contrib, y, gy);
                        }
                    }
                }
            }
            ScatterFn::ConcatUV => {
                let (x, y) = (ins[0], ins[1]);
                let xf = g.node(x).dim.feat;
                let yf = g.node(y).dim.feat;
                if g.node(x).requires_grad {
                    let gl = g.slice_cols(grad, 0, xf)?;
                    let gx = g.gather(ReduceFn::Sum, EdgeGroup::BySrc, gl)?;
                    add_contrib(g, contrib, x, gx);
                }
                if g.node(y).requires_grad {
                    let gr = g.slice_cols(grad, xf, xf + yf)?;
                    let gy = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, gr)?;
                    add_contrib(g, contrib, y, gy);
                }
            }
        },

        OpKind::Gather { reduce, group } => {
            let x = ins[0];
            let xd = g.node(x).dim;
            let gx = match reduce {
                ReduceFn::Sum => match group {
                    EdgeGroup::ByDst => g.scatter(ScatterFn::CopyV, grad, grad)?,
                    EdgeGroup::BySrc => g.scatter(ScatterFn::CopyU, grad, grad)?,
                },
                ReduceFn::Max => g.push_raw(
                    OpKind::GatherMaxBwd { fwd: node.id },
                    vec![grad],
                    Space::Edge,
                    xd,
                    "gather_max_bwd",
                ),
                ReduceFn::Mean => g.push_raw(
                    OpKind::GatherMeanBwd { group },
                    vec![grad],
                    Space::Edge,
                    xd,
                    "gather_mean_bwd",
                ),
            };
            add_contrib(g, contrib, x, gx);
        }

        OpKind::EdgeSoftmax => {
            let x = ins[0];
            let xd = g.node(x).dim;
            let gx = g.push_raw(
                OpKind::EdgeSoftmaxBwd,
                vec![grad, node.id],
                Space::Edge,
                xd,
                "edge_softmax_bwd",
            );
            add_contrib(g, contrib, x, gx);
        }

        OpKind::GaussianWeight => {
            let (p, mu, sig) = (ins[0], ins[1], ins[2]);
            if g.node(p).requires_grad {
                return Err(IrError::Unsupported(
                    "gradient w.r.t. gaussian pseudo-coordinates".into(),
                ));
            }
            if g.node(mu).requires_grad {
                let md = g.node(mu).dim;
                let gm = g.push_raw(
                    OpKind::GaussianBwdMu,
                    vec![p, node.id, grad, mu, sig],
                    Space::Param,
                    md,
                    "gaussian_bwd_mu",
                );
                add_contrib(g, contrib, mu, gm);
            }
            if g.node(sig).requires_grad {
                let sd = g.node(sig).dim;
                let gs = g.push_raw(
                    OpKind::GaussianBwdSigma,
                    vec![p, node.id, grad, mu, sig],
                    Space::Param,
                    sd,
                    "gaussian_bwd_sigma",
                );
                add_contrib(g, contrib, sig, gs);
            }
        }

        OpKind::SliceCols { start, end } => {
            let x = ins[0];
            let (xd, xs) = (g.node(x).dim, g.node(x).space);
            let gx = g.push_raw(
                OpKind::EmbedCols {
                    start,
                    end,
                    total: xd.feat,
                },
                vec![grad],
                xs,
                xd,
                "embed_cols",
            );
            add_contrib(g, contrib, x, gx);
        }

        OpKind::SliceRows { start, end } => {
            let x = ins[0];
            let xd = g.node(x).dim;
            let gx = g.push_raw(
                OpKind::EmbedRows {
                    start,
                    end,
                    total: xd.heads,
                },
                vec![grad],
                Space::Param,
                xd,
                "embed_rows",
            );
            add_contrib(g, contrib, x, gx);
        }

        OpKind::SetHeads { .. } => {
            let x = ins[0];
            let gx = g.set_heads(grad, g.node(x).dim.heads)?;
            add_contrib(g, contrib, x, gx);
        }

        OpKind::HeadReduce(f) => {
            let x = ins[0];
            let h = g.node(x).dim.heads;
            let gb = g.head_broadcast(grad, h)?;
            let gx = match f {
                ReduceFn::Mean => g.unary(UnaryFn::Scale(1.0 / h as f32), gb)?,
                _ => gb,
            };
            add_contrib(g, contrib, x, gx);
        }

        OpKind::HeadBroadcast { .. } => {
            let x = ins[0];
            let gx = g.head_reduce(ReduceFn::Sum, grad)?;
            add_contrib(g, contrib, x, gx);
        }

        OpKind::FeatSum => {
            let x = ins[0];
            let (xd, xs) = (g.node(x).dim, g.node(x).space);
            let gx = g.push_raw(
                OpKind::FeatBroadcast { feat: xd.feat },
                vec![grad],
                xs,
                xd,
                "feat_broadcast",
            );
            add_contrib(g, contrib, x, gx);
        }

        OpKind::FeatBroadcast { .. } => {
            let x = ins[0];
            let gx = g.feat_sum(grad)?;
            add_contrib(g, contrib, x, gx);
        }

        // Backward-only kinds are never differentiated.
        other => {
            return Err(IrError::Unsupported(format!(
                "second-order gradient through {other:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Dim;

    /// Builds a tiny GCN-like layer and checks the backward structure.
    #[test]
    fn backward_of_linear_aggregate() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 8);
        let hw = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, e).unwrap();
        g.mark_output(v);
        let bw = append_backward(&mut g, v).unwrap();
        assert_eq!(bw.param_grads.len(), 1);
        let (p, pg) = bw.param_grads[0];
        assert_eq!(p, w);
        assert_eq!(g.node(pg).kind, OpKind::LinearBwdWeight);
        // backward of Gather(Sum, ByDst) must be Scatter(CopyV)
        let grad_e = bw.grads[&e];
        assert_eq!(g.node(grad_e).kind, OpKind::Scatter(ScatterFn::CopyV));
        // backward of Scatter(CopyU) must be Gather(Sum, BySrc)
        let grad_hw = bw.grads[&hw];
        assert_eq!(
            g.node(grad_hw).kind,
            OpKind::Gather {
                reduce: ReduceFn::Sum,
                group: EdgeGroup::BySrc
            }
        );
    }

    #[test]
    fn no_params_is_an_error() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let e = g.scatter(ScatterFn::CopyU, h, h).unwrap();
        assert!(append_backward(&mut g, e).is_err());
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let y = g.linear(h, w).unwrap();
        // y used twice: y + y
        let z = g.binary(BinaryFn::Add, y, y).unwrap();
        let bw = append_backward(&mut g, z).unwrap();
        let gy = bw.grads[&y];
        // two contributions folded by one Add
        assert_eq!(g.node(gy).kind, OpKind::Binary(BinaryFn::Add));
    }

    #[test]
    fn softmax_backward_references_forward_output() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(1));
        let w = g.param("w", 1, 1);
        let hw = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let sm = g.edge_softmax(e).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, sm).unwrap();
        let bw = append_backward(&mut g, v).unwrap();
        // The grad *of* the softmax output comes from the gather backward…
        let gsm = bw.grads[&sm];
        assert_eq!(g.node(gsm).kind, OpKind::Scatter(ScatterFn::CopyV));
        // …and the grad of the softmax *input* is EdgeSoftmaxBwd, which
        // reads the forward output.
        let ge = bw.grads[&e];
        assert_eq!(g.node(ge).kind, OpKind::EdgeSoftmaxBwd);
        assert!(g.node(ge).inputs.contains(&sm));
    }

    #[test]
    fn gather_max_backward_points_at_forward() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(2));
        let w = g.param("w", 2, 2);
        let hw = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::CopyU, hw, hw).unwrap();
        let v = g.gather(ReduceFn::Max, EdgeGroup::ByDst, e).unwrap();
        let bw = append_backward(&mut g, v).unwrap();
        let ge = bw.grads[&e];
        assert_eq!(g.node(ge).kind, OpKind::GatherMaxBwd { fwd: v });
    }

    #[test]
    fn all_new_nodes_are_backward_phase() {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let y = g.linear(h, w).unwrap();
        let before = g.len();
        append_backward(&mut g, y).unwrap();
        for n in &g.nodes()[before..] {
            assert_eq!(n.phase, Phase::Backward, "node {} not backward", n.name);
        }
    }
}

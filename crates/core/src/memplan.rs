//! Static memory planning: liveness-driven arena layout for an
//! [`ExecutionPlan`] (ROADMAP item 2).
//!
//! The paper's thesis is that computation, IO and **memory** must be
//! coordinated; this pass closes the memory leg. Fusion (§5) and
//! recomputation (§6) decide *which* intermediates exist — the lowered
//! programs (total since PR 7) enumerate every tensor a step will ever
//! hold together with its storage class. This module walks those
//! programs in execution order, derives each tensor's
//! `[birth, death]` interval in *kernel positions* from the same
//! external-reader analysis the executor evicts by, and lays the
//! intervals out in one arena with a first-fit free-list allocator
//! (exact-size match first, then smallest fitting region, then extend —
//! a granted region is never split, so every region maps 1:1 onto a
//! reusable runtime buffer in `gnnopt_tensor::pool`).
//!
//! Storage classes partition the problem exactly as lowering defined
//! them:
//!
//! * [`Storage::Materialized`] values cross kernel boundaries and live
//!   in the session store — they get arena regions spanning birth to
//!   last external reader (model outputs, stashes, leaves and parameter
//!   gradients are *persistent*: their regions never free).
//! * [`Storage::Interior`] values exist only inside one fused launch —
//!   single-position regions.
//! * [`Storage::Scratch`] stays in the per-worker tile slabs the fused
//!   interpreter already sizes ([`KernelProgram::scratch_tile_bytes`])
//!   and [`Storage::Prelude`] tensors are launch-transient statistics;
//!   neither enters the store, so neither is offset-planned.
//!
//! The unfused reference executor materializes *every* kernel member
//! into the store, so `fused = false` plans one region per member node
//! instead of consulting storage classes. Recomputed values
//! re-materialize at each backward kernel that rebuilds them —
//! single-position regions at those kernels.
//!
//! Softmax max/denominator stashes and argmax tables are accounted in
//! [`MemoryPlan::aux_bytes`] but not offset-planned: they are a
//! different element type and orders of magnitude smaller than the
//! feature tensors.

use crate::ir::Phase;
use crate::lower::{StepExec, Storage};
use crate::op::{NodeId, OpKind, Space};
use crate::plan::ExecutionPlan;
use std::collections::{HashMap, HashSet};

/// Death marker for values that live until session reset.
pub const PERSISTENT: usize = usize::MAX;

/// The executor's liveness analysis, shared verbatim between
/// `gnnopt-exec`'s session (which evicts by it) and the memory planner
/// (which lays buffers out by it). One source of truth: a divergence
/// would let the planner alias a buffer the executor still reads.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Last kernel that reads each node from *outside* the kernel that
    /// computes it (recompute members count as internal readers).
    pub last_reader: HashMap<NodeId, usize>,
    /// Values that survive to session reset: model outputs, stashed
    /// tensors, leaves, parameter gradients.
    pub persistent: HashSet<NodeId>,
    /// Eviction lists: `kernel_deaths[k]` are the kernel-owned,
    /// non-persistent nodes whose last external reader is kernel `k`
    /// (or that nothing reads at all).
    pub kernel_deaths: Vec<Vec<NodeId>>,
}

/// Computes [`Liveness`] for a plan.
#[must_use]
pub fn liveness(plan: &ExecutionPlan) -> Liveness {
    let mut last_reader: HashMap<NodeId, usize> = HashMap::new();
    for k in &plan.kernels {
        let members: HashSet<NodeId> = k.nodes.iter().chain(&k.recompute).copied().collect();
        for &nid in k.nodes.iter().chain(&k.recompute) {
            for &i in &plan.ir.node(nid).inputs {
                if !members.contains(&i) {
                    let e = last_reader.entry(i).or_insert(k.id);
                    *e = (*e).max(k.id);
                }
            }
        }
    }

    let mut persistent: HashSet<NodeId> = plan.ir.outputs().iter().copied().collect();
    persistent.extend(plan.stash.iter().copied());
    for n in plan.ir.nodes() {
        if matches!(
            n.kind,
            OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed
        ) {
            persistent.insert(n.id);
        }
    }
    for &(_, g) in &plan.param_grads {
        persistent.insert(g);
    }

    let node_kernel = plan.node_kernel();
    let mut kernel_deaths: Vec<Vec<NodeId>> = vec![Vec::new(); plan.kernels.len()];
    for n in plan.ir.nodes() {
        if persistent.contains(&n.id) {
            continue;
        }
        let Some(&birth) = node_kernel.get(&n.id) else {
            continue;
        };
        let death = last_reader.get(&n.id).copied().unwrap_or(birth).max(birth);
        kernel_deaths[death].push(n.id);
    }

    Liveness {
        last_reader,
        persistent,
        kernel_deaths,
    }
}

/// The phase a kernel executes in: backward iff any member node is a
/// backward op (kernels never mix phases).
#[must_use]
pub fn kernel_phase(plan: &ExecutionPlan, kid: usize) -> Phase {
    if plan.kernels[kid]
        .nodes
        .iter()
        .any(|&n| plan.ir.node(n).phase == Phase::Backward)
    {
        Phase::Backward
    } else {
        Phase::Forward
    }
}

/// One planned arena region: a tensor's offset assignment plus the
/// lifetime interval that justified it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// The IR node whose value occupies the region.
    pub node: NodeId,
    /// Byte offset of the region in the arena.
    pub offset: u64,
    /// Size of the granted region in bytes (≥ `request`; regions are
    /// never split, so a reused region keeps its original size).
    pub bytes: u64,
    /// Bytes the tensor actually needs.
    pub request: u64,
    /// First execution position (kernel index in forward-then-backward
    /// order) at which the value exists. Leaves are born at position 0
    /// (the gradient seed at the first backward position).
    pub birth: usize,
    /// Last position at which the value is read ([`PERSISTENT`] for
    /// values that survive to reset). Inclusive.
    pub death: usize,
}

/// The planner's product: one arena, every store-resident tensor at a
/// fixed offset.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlan {
    /// Total arena size: the allocator's high-water mark.
    pub arena_bytes: u64,
    /// `(node, offset, bytes)` per planned tensor, in planning order.
    /// A node recomputed at several backward kernels appears once per
    /// re-materialization.
    pub offsets: Vec<(NodeId, u64, u64)>,
    /// Full per-region detail (lifetimes, granted sizes) for display
    /// and the invariant suites.
    pub regions: Vec<MemRegion>,
    /// Auxiliary-table bytes (softmax max/denominator stashes, argmax
    /// tables): accounted, not offset-planned.
    pub aux_bytes: u64,
    /// Number of execution positions the intervals index into.
    pub positions: usize,
    /// Whether the plan modeled the fused interpreter's storage classes
    /// or the reference executor's materialize-everything store.
    pub fused: bool,
}

impl MemoryPlan {
    /// The distinct physical buffers behind the regions, as element
    /// counts (`f32`s), one per unique offset. Sessions seed the buffer
    /// pool with exactly these so the first step already finds every
    /// store buffer.
    #[must_use]
    pub fn buffers(&self) -> Vec<usize> {
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for r in &self.regions {
            seen.entry(r.offset).or_insert(r.bytes);
        }
        let mut out: Vec<usize> = seen
            .values()
            .map(|&b| usize::try_from(b / 4).expect("region fits usize"))
            .collect();
        out.sort_unstable();
        out
    }

    /// The maximum over positions of the sum of live `request` bytes —
    /// the tightest arena any allocator could achieve. `arena_bytes` is
    /// always ≥ this (checked by the plan-invariant suite).
    #[must_use]
    pub fn peak_live_bytes(&self) -> u64 {
        (0..self.positions)
            .map(|p| {
                self.regions
                    .iter()
                    .filter(|r| r.birth <= p && (r.death == PERSISTENT || p <= r.death))
                    .map(|r| r.request)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

/// Bytes of a node's full value on a graph with `nv` vertices and `ne`
/// edges.
fn node_bytes(plan: &ExecutionPlan, nid: NodeId, nv: usize, ne: usize) -> u64 {
    let n = plan.ir.node(nid);
    let rows = match n.space {
        Space::Vertex => nv,
        Space::Edge => ne,
        Space::Param => 1,
    };
    4 * rows as u64 * n.dim.total() as u64
}

/// Plans the arena for `plan` executed on a graph of `nv` vertices and
/// `ne` edges, under the fused or reference storage discipline.
///
/// The result is advisory for correctness (the runtime pool degrades to
/// plain allocation on any miss) but exact for capacity: the planned
/// regions are precisely the buffers a steady-state step cycles
/// through, so `arena_bytes` bounds the store's working set and
/// [`MemoryPlan::buffers`] pre-seeds the pool.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn plan_memory(plan: &ExecutionPlan, nv: usize, ne: usize, fused: bool) -> MemoryPlan {
    let lv = liveness(plan);

    // Execution order: forward kernels in plan order, then backward.
    let mut order: Vec<usize> = Vec::new();
    for k in &plan.kernels {
        if kernel_phase(plan, k.id) == Phase::Forward {
            order.push(k.id);
        }
    }
    let fwd_count = order.len();
    for k in &plan.kernels {
        if kernel_phase(plan, k.id) == Phase::Backward {
            order.push(k.id);
        }
    }
    let positions = order.len().max(1);
    let pos_of: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &k)| (k, p)).collect();
    let last_fwd_pos = fwd_count.saturating_sub(1);

    // The store-resident intervals: (node, request bytes, birth, death).
    let mut intervals: Vec<(NodeId, u64, usize, usize)> = Vec::new();

    // Leaves are bound before the first kernel; the gradient seed
    // arrives at the start of the backward phase.
    for n in plan.ir.nodes() {
        match n.kind {
            OpKind::InputVertex | OpKind::InputEdge | OpKind::Param => {
                intervals.push((n.id, node_bytes(plan, n.id, nv, ne), 0, PERSISTENT));
            }
            OpKind::GradSeed if plan.training => {
                let birth = fwd_count.min(positions - 1);
                intervals.push((n.id, node_bytes(plan, n.id, nv, ne), birth, PERSISTENT));
            }
            _ => {}
        }
    }

    // The death position of a kernel-owned node born at position `p`.
    let death_pos = |nid: NodeId, kid: usize, p: usize| -> usize {
        if lv.persistent.contains(&nid) {
            return PERSISTENT;
        }
        let death_kid = lv.last_reader.get(&nid).copied().unwrap_or(kid).max(kid);
        let mut d = pos_of.get(&death_kid).copied().unwrap_or(p).max(p);
        // Training drops every non-persistent forward value at the
        // forward→backward boundary (recomputation rebuilds what the
        // backward phase needs), so no forward interval outlives it.
        if plan.training && plan.ir.node(nid).phase == Phase::Forward {
            d = d.min(last_fwd_pos.max(p));
        }
        d
    };

    for (p, &kid) in order.iter().enumerate() {
        let k = &plan.kernels[kid];
        if fused {
            for s in &plan.programs[kid].steps {
                match s.storage {
                    // Launch-transient statistics never enter the store;
                    // neither do tiled scratch steps (per-worker slabs).
                    // A *full-exec* scratch step does materialize for
                    // the duration of its launch: the interpreter runs
                    // it whole-graph and hands the result back to the
                    // store until the kernel's eviction pass.
                    Storage::Prelude => {}
                    Storage::Scratch if s.exec == StepExec::Tiled => {}
                    Storage::Scratch => {
                        let d = death_pos(s.node, kid, p);
                        intervals.push((s.node, node_bytes(plan, s.node, nv, ne), p, d));
                    }
                    _ if s.recompute => {
                        if !lv.persistent.contains(&s.node) {
                            intervals.push((s.node, node_bytes(plan, s.node, nv, ne), p, p));
                        }
                    }
                    Storage::Materialized => {
                        let d = death_pos(s.node, kid, p);
                        intervals.push((s.node, node_bytes(plan, s.node, nv, ne), p, d));
                    }
                    Storage::Interior => {
                        intervals.push((s.node, node_bytes(plan, s.node, nv, ne), p, p));
                    }
                }
            }
        } else {
            for &nid in &k.nodes {
                let d = death_pos(nid, kid, p);
                intervals.push((nid, node_bytes(plan, nid, nv, ne), p, d));
            }
            for &r in &k.recompute {
                if !lv.persistent.contains(&r) {
                    intervals.push((r, node_bytes(plan, r, nv, ne), p, p));
                }
            }
        }
    }

    // Auxiliary tables: per stashed node, two f32 stats tensors for a
    // softmax (per destination vertex × head), one u32 argmax entry per
    // gathered element for a max-gather.
    let mut aux_bytes = 0u64;
    for &a in &plan.aux_stash {
        let n = plan.ir.node(a);
        aux_bytes += match n.kind {
            OpKind::EdgeSoftmax => 2 * 4 * nv as u64 * n.dim.heads as u64,
            OpKind::Gather { .. } => 4 * nv as u64 * n.dim.total() as u64,
            _ => 0,
        };
    }

    // First-fit with exact-size preference over a free list of whole
    // regions, processed in execution order. Determinism: intervals are
    // visited in the order built above, and the free list is scanned
    // front to back.
    #[derive(Clone, Copy)]
    struct Free {
        offset: u64,
        bytes: u64,
    }
    let mut free: Vec<Free> = Vec::new();
    let mut active: Vec<(usize, Free)> = Vec::new(); // (death, region)
    let mut high = 0u64;
    let mut regions = Vec::with_capacity(intervals.len());

    // Group births by position (intervals are already birth-sorted per
    // construction except leaves first — sort stably to be safe).
    let mut idx: Vec<usize> = (0..intervals.len()).collect();
    idx.sort_by_key(|&i| intervals[i].2);

    let mut cursor = 0usize;
    for p in 0..positions {
        // Release regions whose last live position has passed.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 != PERSISTENT && active[i].0 < p {
                free.push(active.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        while cursor < idx.len() && intervals[idx[cursor]].2 == p {
            let (nid, request, birth, death) = intervals[idx[cursor]];
            cursor += 1;
            if request == 0 {
                continue;
            }
            let grant = if let Some(i) = free.iter().position(|r| r.bytes == request) {
                free.swap_remove(i)
            } else {
                let mut best: Option<usize> = None;
                for (i, r) in free.iter().enumerate() {
                    if r.bytes > request && best.is_none_or(|b: usize| free[b].bytes > r.bytes) {
                        best = Some(i);
                    }
                }
                if let Some(i) = best {
                    free.swap_remove(i)
                } else {
                    let g = Free {
                        offset: high,
                        bytes: request,
                    };
                    high += request;
                    g
                }
            };
            active.push((death, grant));
            regions.push(MemRegion {
                node: nid,
                offset: grant.offset,
                bytes: grant.bytes,
                request,
                birth,
                death,
            });
        }
    }

    MemoryPlan {
        arena_bytes: high,
        offsets: regions
            .iter()
            .map(|r| (r.node, r.offset, r.request))
            .collect(),
        regions,
        aux_bytes,
        positions,
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrGraph;
    use crate::op::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn};
    use crate::pipeline::{compile, CompileOptions};

    fn toy_plan(training: bool) -> ExecutionPlan {
        let mut g = IrGraph::new();
        let h = g.input_vertex("h", Dim::flat(4));
        let w = g.param("w", 4, 4);
        let p = g.linear(h, w).unwrap();
        let e = g.scatter(ScatterFn::Bin(BinaryFn::Sub), p, p).unwrap();
        let sm = g.edge_softmax(e).unwrap();
        let v = g.gather(ReduceFn::Sum, EdgeGroup::ByDst, sm).unwrap();
        g.mark_output(v);
        compile(&g, training, &CompileOptions::ours()).unwrap().plan
    }

    fn overlap(a: &MemRegion, b: &MemRegion) -> bool {
        let live =
            |r: &MemRegion, p: usize| r.birth <= p && (r.death == PERSISTENT || p <= r.death);
        (0..usize::MAX).take(64).any(|p| live(a, p) && live(b, p))
            && a.offset < b.offset + b.bytes
            && b.offset < a.offset + a.bytes
    }

    #[test]
    fn liveness_matches_kernel_count() {
        let plan = toy_plan(true);
        let lv = liveness(&plan);
        assert_eq!(lv.kernel_deaths.len(), plan.kernels.len());
        for deaths in &lv.kernel_deaths {
            for n in deaths {
                assert!(!lv.persistent.contains(n));
            }
        }
    }

    #[test]
    fn regions_never_alias_while_both_live() {
        for training in [false, true] {
            for fused in [false, true] {
                let plan = toy_plan(training);
                let mp = plan_memory(&plan, 16, 48, fused);
                assert!(mp.arena_bytes > 0);
                assert!(mp.arena_bytes >= mp.peak_live_bytes());
                for (i, a) in mp.regions.iter().enumerate() {
                    for b in &mp.regions[i + 1..] {
                        assert!(
                            !overlap(a, b),
                            "alias: {a:?} vs {b:?} (training={training} fused={fused})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn persistent_values_keep_dedicated_regions() {
        let plan = toy_plan(true);
        let mp = plan_memory(&plan, 16, 48, true);
        let out = plan.ir.outputs()[0];
        let r = mp
            .regions
            .iter()
            .find(|r| r.node == out)
            .expect("output planned");
        assert_eq!(r.death, PERSISTENT);
        // Nothing else may share bytes with a persistent region.
        for other in mp.regions.iter().filter(|o| o.offset == r.offset) {
            assert_eq!(other.node, r.node);
        }
    }

    #[test]
    fn buffers_cover_every_offset() {
        let plan = toy_plan(true);
        let mp = plan_memory(&plan, 16, 48, false);
        let bufs = mp.buffers();
        let distinct: std::collections::HashSet<u64> =
            mp.regions.iter().map(|r| r.offset).collect();
        assert_eq!(bufs.len(), distinct.len());
        let total: usize = bufs.iter().sum();
        assert_eq!(4 * total as u64, mp.arena_bytes);
    }
}

//! Property tests for reordering and grouping invariants.

use gnnopt_graph::{generators, EdgeList, Graph, GraphStats};
use gnnopt_reorder::{locality, strategies, NeighborGrouping, Permutation};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

/// A small random graph — with trailing isolated vertices appended, so
/// every strategy must produce a *total* permutation on disconnected
/// graphs (BFS/RCM have to cover unreachable vertices too).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..60, 0u64..1000, 1usize..6, 0usize..5).prop_map(|(n, seed, density, iso)| {
        let edges = (n * density).min(n * (n - 1));
        let el = generators::erdos_renyi(n, edges, seed);
        EdgeList::from_pairs(n + iso, el.edges())
    })
}

fn arb_permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(n).prop_perturb(|n, mut rng| {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        Permutation::from_order(&ids).expect("shuffled ids are a bijection")
    })
}

proptest! {
    /// Applying a permutation then its inverse restores the original graph.
    #[test]
    fn permutation_roundtrip(el in arb_graph()) {
        let n = el.num_vertices();
        let run = |p: Permutation| {
            let there = p.apply_to_edges(&el);
            let back = p.inverse().apply_to_edges(&there);
            prop_assert_eq!(&back, &el);
            Ok(())
        };
        run(Permutation::identity(n))?;
    }

    /// Random permutations preserve edge count and the degree multiset.
    #[test]
    fn random_permutation_is_isomorphism(
        (el, p) in arb_graph().prop_flat_map(|el| {
            let n = el.num_vertices();
            (Just(el), arb_permutation(n))
        })
    ) {
        let out = p.apply_to_edges(&el);
        prop_assert_eq!(out.num_edges(), el.num_edges());
        let degrees = |e: &EdgeList| {
            let mut d = vec![0u32; e.num_vertices()];
            for &(_, dst) in e.edges() {
                d[dst as usize] += 1;
            }
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degrees(&out), degrees(&el));
        // Roundtrip through the inverse.
        prop_assert_eq!(p.inverse().apply_to_edges(&out), el);
    }

    /// Every strategy yields a valid *total* permutation — length |V|,
    /// bijective (the constructors validate this), covering isolated and
    /// unreachable vertices — whose application preserves the graph up to
    /// isomorphism.
    #[test]
    fn strategies_are_total_bijections(el in arb_graph()) {
        for p in [
            strategies::degree_sort(&el),
            strategies::bfs(&el, 0),
            strategies::rcm(&el),
            strategies::cluster(&el, 3),
        ] {
            prop_assert_eq!(p.len(), el.num_vertices());
            // Totality: every vertex id appears exactly once as a target.
            let mut seen = vec![false; p.len()];
            for old in 0..p.len() as u32 {
                let new = p.new_id(old) as usize;
                prop_assert!(!std::mem::replace(&mut seen[new], true));
            }
            let out = p.apply_to_edges(&el);
            prop_assert_eq!(out.num_edges(), el.num_edges());
        }
    }

    /// `inverse ∘ apply = id` and `(p⁻¹)⁻¹ = p` for arbitrary
    /// permutations, and composition is associative.
    #[test]
    fn permutation_algebra(
        (a, b, c) in (4usize..40).prop_flat_map(|n| {
            (arb_permutation(n), arb_permutation(n), arb_permutation(n))
        })
    ) {
        let n = a.len();
        prop_assert_eq!(a.compose(&a.inverse()), Permutation::identity(n));
        prop_assert_eq!(a.inverse().compose(&a), Permutation::identity(n));
        prop_assert_eq!(a.inverse().inverse(), a.clone());
        prop_assert_eq!(
            a.compose(&b).compose(&c),
            a.compose(&b.compose(&c)),
            "composition must associate"
        );
    }

    /// `apply_to_edges` preserves the edge multiset (under relabeling)
    /// and both degree sequences.
    #[test]
    fn apply_preserves_edge_multiset_and_degrees(
        (el, p) in arb_graph().prop_flat_map(|el| {
            let n = el.num_vertices();
            (Just(el), arb_permutation(n))
        })
    ) {
        let out = p.apply_to_edges(&el);
        // Multiset: relabeling every original edge reproduces the output
        // edge set exactly.
        let mut relabeled: Vec<(u32, u32)> = el
            .edges()
            .iter()
            .map(|&(s, d)| (p.new_id(s), p.new_id(d)))
            .collect();
        relabeled.sort_unstable();
        let mut got: Vec<(u32, u32)> = out.edges().to_vec();
        got.sort_unstable();
        prop_assert_eq!(relabeled, got);
        // Degree sequences (in and out) are invariant.
        let degrees = |e: &EdgeList, by_src: bool| {
            let mut d = vec![0u32; e.num_vertices()];
            for &(s, dst) in e.edges() {
                d[if by_src { s } else { dst } as usize] += 1;
            }
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degrees(&out, false), degrees(&el, false));
        prop_assert_eq!(degrees(&out, true), degrees(&el, true));
    }

    /// `apply_to_graph` is a stable CSR relabeling: the edge map is a
    /// bijection, every endpoint relabels consistently, and each new
    /// destination group lists its sources in the old group's order —
    /// the contract that keeps `ByDst` reductions bit-identical.
    #[test]
    fn apply_to_graph_is_stable(
        (el, p) in arb_graph().prop_flat_map(|el| {
            let n = el.num_vertices();
            (Just(el), arb_permutation(n))
        })
    ) {
        let g = Graph::from_edge_list(&el);
        let (pg, emap) = p.apply_to_graph(&g);
        prop_assert_eq!(pg.num_vertices(), g.num_vertices());
        prop_assert_eq!(pg.num_edges(), g.num_edges());
        let mut seen = vec![false; emap.len()];
        for (old, &new) in emap.iter().enumerate() {
            prop_assert!(!std::mem::replace(&mut seen[new as usize], true));
            prop_assert_eq!(pg.src(new as usize) as u32, p.new_id(g.src(old) as u32));
            prop_assert_eq!(pg.dst(new as usize) as u32, p.new_id(g.dst(old) as u32));
        }
        for v in 0..g.num_vertices() {
            let relabeled: Vec<u32> = g
                .in_adj()
                .neighbors(v)
                .iter()
                .map(|&u| p.new_id(u))
                .collect();
            prop_assert_eq!(
                pg.in_adj().neighbors(p.new_id(v as u32) as usize),
                relabeled.as_slice()
            );
        }
    }

    /// Tensor row permutes invert each other and move rows with their
    /// vertices.
    #[test]
    fn tensor_rows_follow_vertices(
        (p, cols) in (1usize..32).prop_flat_map(|n| (arb_permutation(n), 1usize..5))
    ) {
        let n = p.len();
        let t = Tensor::from_fn(&[n, cols], |i| i as f32);
        let moved = p.permute_tensor_rows(&t);
        for old in 0..n {
            prop_assert_eq!(moved.row(p.new_id(old as u32) as usize), t.row(old));
        }
        let back = p.unpermute_tensor_rows(&moved);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// LRU hit rate is monotone non-decreasing in cache capacity.
    #[test]
    fn hit_rate_monotone(el in arb_graph(), caps in proptest::collection::vec(1usize..256, 2..5)) {
        let mut sorted = caps;
        sorted.sort_unstable();
        let mut prev = -1.0f64;
        for c in sorted {
            let r = locality::lru_hit_rate(&el, c);
            prop_assert!(r >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
    }

    /// Grouping preserves the edge count, bounds every group's size, and
    /// produces max-degree ≤ group_size stats.
    #[test]
    fn grouping_invariants(
        degrees in proptest::collection::vec(0u32..200, 1..80),
        group_size in 1usize..64,
    ) {
        let stats = GraphStats::from_in_degrees(degrees);
        let g = NeighborGrouping::build(&stats, group_size);
        let gs = g.grouped_stats();
        prop_assert_eq!(gs.num_edges(), stats.num_edges());
        prop_assert!(gs.in_degrees().iter().all(|&d| d as usize <= group_size));
        prop_assert_eq!(gs.num_vertices(), g.num_groups());
        // Merge ops = groups − vertices-with-edges.
        let nonzero = stats.in_degrees().iter().filter(|&&d| d > 0).count();
        prop_assert_eq!(g.merge_ops(), g.num_groups() - nonzero);
    }

    /// Grouped imbalance obeys the dealing-model bound: every worker gets
    /// at most `ceil(G/W)` groups of at most `group_size` edges, so the
    /// max/mean ratio is at most `1 + group_size·(V + W)/E`. On skewed
    /// graphs this is far below the ungrouped imbalance (see the unit
    /// test `grouping_flattens_imbalance` for the directional claim).
    #[test]
    fn grouped_imbalance_is_bounded(
        n in 16usize..512,
        avg in 2.0f64..24.0,
        skew in 0.0f64..1.6,
        group_size in 4usize..64,
    ) {
        let stats = GraphStats::synthesize_power_law(n, avg, skew);
        let workers = 64usize;
        let after = NeighborGrouping::build(&stats, group_size)
            .grouped_stats()
            .vertex_balanced_imbalance(workers);
        let e = stats.num_edges() as f64;
        let bound = 1.0 + group_size as f64 * (n + workers) as f64 / e;
        prop_assert!(after <= bound + 1e-9, "imbalance {after} exceeds bound {bound}");
    }
}

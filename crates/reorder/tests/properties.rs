//! Property tests for reordering and grouping invariants.

use gnnopt_graph::{generators, EdgeList, GraphStats};
use gnnopt_reorder::{locality, strategies, NeighborGrouping, Permutation};
use proptest::prelude::*;

/// A small random graph: vertex count and an edge-pair seed.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..60, 0u64..1000, 1usize..6).prop_map(|(n, seed, density)| {
        let edges = (n * density).min(n * (n - 1));
        generators::erdos_renyi(n, edges, seed)
    })
}

fn arb_permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(n).prop_perturb(|n, mut rng| {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        Permutation::from_order(&ids).expect("shuffled ids are a bijection")
    })
}

proptest! {
    /// Applying a permutation then its inverse restores the original graph.
    #[test]
    fn permutation_roundtrip(el in arb_graph()) {
        let n = el.num_vertices();
        let run = |p: Permutation| {
            let there = p.apply_to_edges(&el);
            let back = p.inverse().apply_to_edges(&there);
            prop_assert_eq!(&back, &el);
            Ok(())
        };
        run(Permutation::identity(n))?;
    }

    /// Random permutations preserve edge count and the degree multiset.
    #[test]
    fn random_permutation_is_isomorphism(
        (el, p) in arb_graph().prop_flat_map(|el| {
            let n = el.num_vertices();
            (Just(el), arb_permutation(n))
        })
    ) {
        let out = p.apply_to_edges(&el);
        prop_assert_eq!(out.num_edges(), el.num_edges());
        let degrees = |e: &EdgeList| {
            let mut d = vec![0u32; e.num_vertices()];
            for &(_, dst) in e.edges() {
                d[dst as usize] += 1;
            }
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degrees(&out), degrees(&el));
        // Roundtrip through the inverse.
        prop_assert_eq!(p.inverse().apply_to_edges(&out), el);
    }

    /// Every strategy yields a valid permutation whose application
    /// preserves the graph up to isomorphism.
    #[test]
    fn strategies_are_bijections(el in arb_graph()) {
        for p in [
            strategies::degree_sort(&el),
            strategies::bfs(&el, 0),
            strategies::rcm(&el),
            strategies::cluster(&el, 3),
        ] {
            prop_assert_eq!(p.len(), el.num_vertices());
            let out = p.apply_to_edges(&el);
            prop_assert_eq!(out.num_edges(), el.num_edges());
        }
    }

    /// LRU hit rate is monotone non-decreasing in cache capacity.
    #[test]
    fn hit_rate_monotone(el in arb_graph(), caps in proptest::collection::vec(1usize..256, 2..5)) {
        let mut sorted = caps;
        sorted.sort_unstable();
        let mut prev = -1.0f64;
        for c in sorted {
            let r = locality::lru_hit_rate(&el, c);
            prop_assert!(r >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
    }

    /// Grouping preserves the edge count, bounds every group's size, and
    /// produces max-degree ≤ group_size stats.
    #[test]
    fn grouping_invariants(
        degrees in proptest::collection::vec(0u32..200, 1..80),
        group_size in 1usize..64,
    ) {
        let stats = GraphStats::from_in_degrees(degrees);
        let g = NeighborGrouping::build(&stats, group_size);
        let gs = g.grouped_stats();
        prop_assert_eq!(gs.num_edges(), stats.num_edges());
        prop_assert!(gs.in_degrees().iter().all(|&d| d as usize <= group_size));
        prop_assert_eq!(gs.num_vertices(), g.num_groups());
        // Merge ops = groups − vertices-with-edges.
        let nonzero = stats.in_degrees().iter().filter(|&&d| d > 0).count();
        prop_assert_eq!(g.merge_ops(), g.num_groups() - nonzero);
    }

    /// Grouped imbalance obeys the dealing-model bound: every worker gets
    /// at most `ceil(G/W)` groups of at most `group_size` edges, so the
    /// max/mean ratio is at most `1 + group_size·(V + W)/E`. On skewed
    /// graphs this is far below the ungrouped imbalance (see the unit
    /// test `grouping_flattens_imbalance` for the directional claim).
    #[test]
    fn grouped_imbalance_is_bounded(
        n in 16usize..512,
        avg in 2.0f64..24.0,
        skew in 0.0f64..1.6,
        group_size in 4usize..64,
    ) {
        let stats = GraphStats::synthesize_power_law(n, avg, skew);
        let workers = 64usize;
        let after = NeighborGrouping::build(&stats, group_size)
            .grouped_stats()
            .vertex_balanced_imbalance(workers);
        let e = stats.num_edges() as f64;
        let bound = 1.0 + group_size as f64 * (n + workers) as f64 / e;
        prop_assert!(after <= bound + 1e-9, "imbalance {after} exceeds bound {bound}");
    }
}

//! Reordering strategies: degree sort, BFS, reverse Cuthill–McKee and a
//! Rabbit-inspired clustered order.
//!
//! Every strategy returns a [`Permutation`]; all operate on the
//! *undirected* view of the input (locality of `Gather` reads depends on
//! proximity of neighbors regardless of edge direction).

use crate::Permutation;
use gnnopt_graph::EdgeList;

/// Undirected CSR adjacency used internally by the strategies.
struct UndirectedAdj {
    indptr: Vec<usize>,
    neighbors: Vec<u32>,
}

impl UndirectedAdj {
    fn build(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let mut degree = vec![0usize; n];
        for &(s, d) in el.edges() {
            degree[s as usize] += 1;
            degree[d as usize] += 1;
        }
        let mut indptr = vec![0usize; n + 1];
        for v in 0..n {
            indptr[v + 1] = indptr[v] + degree[v];
        }
        let mut cursor = indptr.clone();
        let mut neighbors = vec![0u32; indptr[n]];
        for &(s, d) in el.edges() {
            neighbors[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
            neighbors[cursor[d as usize]] = s;
            cursor[d as usize] += 1;
        }
        Self { indptr, neighbors }
    }

    fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.indptr[v]..self.indptr[v + 1]]
    }

    fn len(&self) -> usize {
        self.indptr.len() - 1
    }
}

/// Orders vertices by descending (undirected) degree, ties by id.
///
/// High-degree vertices land on adjacent ids, so the hot rows of a
/// `Gather` share cache lines — the simplest locality booster, and the
/// standard baseline in the reordering literature.
pub fn degree_sort(el: &EdgeList) -> Permutation {
    let adj = UndirectedAdj::build(el);
    let mut order: Vec<u32> = (0..adj.len() as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(adj.degree(v as usize)), v));
    Permutation::from_order(&order).expect("sorted ids form a bijection")
}

/// Breadth-first order from `root`; unreached components are appended in
/// ascending id order, each traversed breadth-first as encountered.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs(el: &EdgeList, root: u32) -> Permutation {
    let adj = UndirectedAdj::build(el);
    assert!((root as usize) < adj.len(), "BFS root out of range");
    let order = bfs_order(&adj, root, |neigh, _| neigh.to_vec());
    Permutation::from_order(&order).expect("BFS visits every vertex once")
}

/// Reverse Cuthill–McKee: BFS from a pseudo-peripheral low-degree vertex,
/// expanding neighbors in ascending degree order, with the final order
/// reversed. The classic bandwidth-minimizing reordering; on mesh-like
/// graphs it concentrates each vertex's neighbors into a narrow id window.
pub fn rcm(el: &EdgeList) -> Permutation {
    let adj = UndirectedAdj::build(el);
    if adj.len() == 0 {
        return Permutation::identity(0);
    }
    let start = pseudo_peripheral(&adj);
    let mut order = bfs_order(&adj, start, |neigh, adj| {
        let mut sorted = neigh.to_vec();
        sorted.sort_by_key(|&u| (adj.degree(u as usize), u));
        sorted
    });
    order.reverse();
    Permutation::from_order(&order).expect("RCM visits every vertex once")
}

/// Rabbit-inspired clustered order: a few rounds of label propagation
/// group vertices into communities, then communities are laid out
/// contiguously (largest first), members ordered by descending degree.
///
/// This is the lightweight stand-in for Rabbit Reordering's hierarchical
/// community merging — same effect (neighbors land in the same id block,
/// improving gather locality), a fraction of the implementation.
pub fn cluster(el: &EdgeList, sweeps: usize) -> Permutation {
    let adj = UndirectedAdj::build(el);
    let n = adj.len();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut counts: Vec<u32> = Vec::new();
    for _ in 0..sweeps.max(1) {
        let mut changed = false;
        for v in 0..n {
            let neigh = adj.neighbors(v);
            if neigh.is_empty() {
                continue;
            }
            // Most frequent neighbor label; ties to the smallest label so
            // the process is deterministic and tends to coalesce.
            counts.clear();
            let mut best = label[v];
            let mut best_count = 0u32;
            let mut sorted: Vec<u32> = neigh.iter().map(|&u| label[u as usize]).collect();
            sorted.sort_unstable();
            let mut i = 0;
            while i < sorted.len() {
                let mut j = i;
                while j < sorted.len() && sorted[j] == sorted[i] {
                    j += 1;
                }
                let c = (j - i) as u32;
                if c > best_count || (c == best_count && sorted[i] < best) {
                    best = sorted[i];
                    best_count = c;
                }
                i = j;
            }
            if best != label[v] {
                label[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Community sizes → layout order: big communities first.
    let mut size = vec![0u32; n];
    for &l in &label {
        size[l as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let adj_ref = &adj;
    order.sort_by_key(|&v| {
        (
            std::cmp::Reverse(size[label[v as usize] as usize]),
            label[v as usize],
            std::cmp::Reverse(adj_ref.degree(v as usize)),
            v,
        )
    });
    Permutation::from_order(&order).expect("cluster layout is a bijection")
}

/// BFS skeleton shared by [`bfs`] and [`rcm`]; `expand` controls neighbor
/// visit order.
fn bfs_order(
    adj: &UndirectedAdj,
    root: u32,
    expand: impl Fn(&[u32], &UndirectedAdj) -> Vec<u32>,
) -> Vec<u32> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut roots = std::iter::once(root).chain(0..n as u32);
    while order.len() < n {
        let r = roots
            .by_ref()
            .find(|&r| !seen[r as usize])
            .expect("an unseen vertex must exist");
        seen[r as usize] = true;
        queue.push_back(r);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for u in expand(adj.neighbors(v as usize), adj) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order
}

/// Finds a pseudo-peripheral vertex: start from the minimum-degree vertex
/// and bounce to the farthest vertex of the BFS tree while eccentricity
/// grows (the standard George–Liu heuristic, bounded to 4 bounces).
fn pseudo_peripheral(adj: &UndirectedAdj) -> u32 {
    let n = adj.len();
    let mut v = (0..n).min_by_key(|&v| (adj.degree(v), v)).unwrap_or(0) as u32;
    let mut ecc = 0usize;
    for _ in 0..4 {
        let (far, far_ecc) = bfs_farthest(adj, v);
        if far_ecc <= ecc {
            break;
        }
        ecc = far_ecc;
        v = far;
    }
    v
}

/// Farthest vertex (lowest degree among the last BFS level) and its
/// distance from `root`.
fn bfs_farthest(adj: &UndirectedAdj, root: u32) -> (u32, usize) {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    dist[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut last = root;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &u in adj.neighbors(v as usize) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    let ecc = dist[last as usize];
    // Among the last level, prefer the lowest-degree vertex.
    let best = (0..n)
        .filter(|&v| dist[v] == ecc)
        .min_by_key(|&v| (adj.degree(v), v))
        .unwrap_or(last as usize);
    (best as u32, ecc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality;
    use gnnopt_graph::generators;

    #[test]
    fn degree_sort_places_hubs_first() {
        // Star: vertex 0 is the hub.
        let el = generators::star(16).to_undirected();
        let p = degree_sort(&el);
        assert_eq!(p.new_id(0), 0, "the hub must get id 0");
    }

    #[test]
    fn bfs_is_a_bijection_on_disconnected_graphs() {
        let el = EdgeList::from_pairs(6, &[(0, 1), (1, 2), (4, 5)]);
        let p = bfs(&el, 0);
        // from_order already validated bijectivity; spot-check components.
        assert!(p.new_id(4) > p.new_id(2), "second component comes later");
    }

    #[test]
    fn rcm_reduces_grid_bandwidth() {
        // Random-permute a grid, then RCM must narrow the max |src - dst| gap.
        let grid = generators::grid(12, 12).to_undirected();
        let scramble = Permutation::from_order(&scrambled_ids(grid.num_vertices())).unwrap();
        let scrambled = scramble.apply_to_edges(&grid);
        let before = locality::report(&scrambled).max_gap;
        let after = locality::report(&rcm(&scrambled).apply_to_edges(&scrambled)).max_gap;
        assert!(
            after < before / 2,
            "RCM should at least halve grid bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn cluster_improves_rmat_hit_rate() {
        let el = generators::rmat(9, 8, 0.57, 0.19, 0.19, 11).to_undirected();
        let scramble = Permutation::from_order(&scrambled_ids(el.num_vertices())).unwrap();
        let scrambled = scramble.apply_to_edges(&el);
        let before = locality::lru_hit_rate(&scrambled, 32);
        let after = locality::lru_hit_rate(&cluster(&scrambled, 4).apply_to_edges(&scrambled), 32);
        assert!(
            after > before,
            "clustered order should raise the 32-row LRU hit rate: {before} -> {after}"
        );
    }

    #[test]
    fn strategies_yield_isomorphic_graphs() {
        let el = generators::erdos_renyi(64, 256, 3);
        for p in [degree_sort(&el), bfs(&el, 0), rcm(&el), cluster(&el, 3)] {
            let out = p.apply_to_edges(&el);
            assert_eq!(out.num_edges(), el.num_edges());
        }
    }

    /// On a planted-partition graph, label-propagation clustering must
    /// recover enough of the ground-truth communities that the reordered
    /// gather locality approaches the ideal block-sorted layout.
    #[test]
    fn cluster_recovers_planted_partitions() {
        let el = generators::planted_partition(512, 8, 10.0, 1.0, 5).to_undirected();
        let scramble = Permutation::from_order(&scrambled_ids(el.num_vertices())).unwrap();
        let scrambled = scramble.apply_to_edges(&el);
        let cache = 80; // a bit more than one 64-vertex block
        let baseline = locality::lru_hit_rate(&scrambled, cache);
        let clustered =
            locality::lru_hit_rate(&cluster(&scrambled, 6).apply_to_edges(&scrambled), cache);
        // The ideal layout: the original (block-contiguous) ids.
        let ideal = locality::lru_hit_rate(&el, cache);
        assert!(
            clustered > baseline + 0.5 * (ideal - baseline),
            "clustering should close most of the gap: scrambled {baseline:.2}, \
             clustered {clustered:.2}, ideal {ideal:.2}"
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = EdgeList::from_pairs(0, &[]);
        assert_eq!(rcm(&empty).len(), 0);
        let lone = EdgeList::from_pairs(1, &[]);
        assert_eq!(degree_sort(&lone).new_id(0), 0);
        assert_eq!(cluster(&lone, 2).new_id(0), 0);
    }

    /// Deterministic scramble: multiplicative shuffle by a unit mod n.
    fn scrambled_ids(n: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates with a tiny LCG, fixed seed.
        let mut state = 0x2545_f491_u64;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        ids
    }
}

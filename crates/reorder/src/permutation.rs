//! Vertex permutations: the output of every reordering strategy.

use gnnopt_graph::{EdgeList, Graph};
use gnnopt_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// A bijective relabeling of the vertices `0..n`.
///
/// Stored as `new_of_old`: `new_of_old[old] = new`. Apply it to an
/// [`EdgeList`] with [`Permutation::apply_to_edges`] and to per-vertex
/// row data with [`Permutation::permute_rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<u32>,
}

/// Error building a permutation from user data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationError {
    /// An id appears twice (or an id is missing).
    NotBijective {
        /// The first duplicated/out-of-range id found.
        id: u32,
    },
    /// An id is `>= n`.
    OutOfRange {
        /// The offending id.
        id: u32,
        /// The permutation length.
        len: usize,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::NotBijective { id } => {
                write!(
                    f,
                    "permutation is not bijective: id {id} repeated or missing"
                )
            }
            PermutationError::OutOfRange { id, len } => {
                write!(f, "permutation id {id} out of range for length {len}")
            }
        }
    }
}

impl Error for PermutationError {}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as u32).collect(),
        }
    }

    /// Builds from a `new_of_old` map (`v[old] = new`).
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError`] if the map is not a bijection on
    /// `0..v.len()`.
    pub fn from_new_of_old(v: Vec<u32>) -> Result<Self, PermutationError> {
        let n = v.len();
        let mut seen = vec![false; n];
        for &id in &v {
            if id as usize >= n {
                return Err(PermutationError::OutOfRange { id, len: n });
            }
            if seen[id as usize] {
                return Err(PermutationError::NotBijective { id });
            }
            seen[id as usize] = true;
        }
        Ok(Self { new_of_old: v })
    }

    /// Builds from a visiting order: `order[k]` is the old id placed at new
    /// position `k` (the form BFS-style strategies naturally produce).
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError`] if `order` is not a bijection.
    pub fn from_order(order: &[u32]) -> Result<Self, PermutationError> {
        let n = order.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            if old as usize >= n {
                return Err(PermutationError::OutOfRange { id: old, len: n });
            }
            if new_of_old[old as usize] != u32::MAX {
                return Err(PermutationError::NotBijective { id: old });
            }
            new_of_old[old as usize] = new as u32;
        }
        Ok(Self { new_of_old })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The new id of `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    pub fn new_id(&self, old: u32) -> u32 {
        self.new_of_old[old as usize]
    }

    /// The underlying `new_of_old` slice.
    pub fn as_new_of_old(&self) -> &[u32] {
        &self.new_of_old
    }

    /// The inverse permutation (`old_of_new`).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Self { new_of_old: inv }
    }

    /// Composition: applies `self` first, `then` second.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compose(&self, then: &Self) -> Self {
        assert_eq!(
            self.len(),
            then.len(),
            "cannot compose permutations of different lengths"
        );
        Self {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&mid| then.new_of_old[mid as usize])
                .collect(),
        }
    }

    /// Relabels every edge endpoint, producing an isomorphic graph.
    ///
    /// # Panics
    ///
    /// Panics if the edge list has a different vertex count.
    pub fn apply_to_edges(&self, el: &EdgeList) -> EdgeList {
        assert_eq!(
            el.num_vertices(),
            self.len(),
            "permutation length must match the vertex count"
        );
        let pairs: Vec<(u32, u32)> = el
            .edges()
            .iter()
            .map(|&(s, d)| (self.new_id(s), self.new_id(d)))
            .collect();
        EdgeList::from_pairs(el.num_vertices(), &pairs)
    }

    /// Reorders per-vertex row data into the new vertex order: output row
    /// `new` holds the input row `old_of_new[new]`.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` differs from the permutation length.
    pub fn permute_rows<T: Clone>(&self, rows: &[T]) -> Vec<T> {
        assert_eq!(rows.len(), self.len(), "row count must match");
        let mut out = rows.to_vec();
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[new as usize] = rows[old].clone();
        }
        out
    }

    /// Relabels a CSR [`Graph`] through this permutation, returning the
    /// isomorphic graph plus the induced canonical-edge-id map
    /// (`new_eid_of_old`). Delegates to [`Graph::permute_vertices`], which
    /// keeps per-destination in-neighbor *sequences* stable so `ByDst`
    /// reductions on the relabeled graph are bit-identical to the
    /// original.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a different vertex count.
    pub fn apply_to_graph(&self, g: &Graph) -> (Graph, Vec<u32>) {
        assert_eq!(
            g.num_vertices(),
            self.len(),
            "permutation length must match the vertex count"
        );
        g.permute_vertices(&self.new_of_old)
    }

    /// Moves per-vertex tensor rows into the new vertex order: output row
    /// `new_id(old)` holds input row `old`. The inverse of
    /// [`Permutation::unpermute_tensor_rows`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor's row count differs from the permutation
    /// length.
    pub fn permute_tensor_rows(&self, t: &Tensor) -> Tensor {
        assert_eq!(t.rows(), self.len(), "tensor row count must match");
        let cols = t.cols();
        // Single output-order pass (no zero prefill): output row `new`
        // holds input row `old_of_new[new]`. The O(rows) inverse-index
        // build is far cheaper than an O(rows·cols) memset.
        let mut old_of_new = vec![0u32; t.rows()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            old_of_new[new as usize] = old as u32;
        }
        let mut data = Vec::with_capacity(t.rows() * cols);
        for &old in &old_of_new {
            data.extend_from_slice(t.row(old as usize));
        }
        Tensor::new(&[t.rows(), cols], data).expect("row copies fill the shape exactly")
    }

    /// Restores permuted tensor rows to the original vertex order: output
    /// row `old` holds input row `new_id(old)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor's row count differs from the permutation
    /// length.
    pub fn unpermute_tensor_rows(&self, t: &Tensor) -> Tensor {
        assert_eq!(t.rows(), self.len(), "tensor row count must match");
        let cols = t.cols();
        // Single output-order pass: output row `old` holds input row
        // `new_of_old[old]`, which is exactly iteration order here.
        let mut data = Vec::with_capacity(t.rows() * cols);
        for &new in &self.new_of_old {
            data.extend_from_slice(t.row(new as usize));
        }
        Tensor::new(&[t.rows(), cols], data).expect("row copies fill the shape exactly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let el = EdgeList::from_pairs(4, &[(0, 1), (2, 3)]);
        let p = Permutation::identity(4);
        assert_eq!(p.apply_to_edges(&el), el);
        assert_eq!(p.permute_rows(&[10, 20, 30, 40]), vec![10, 20, 30, 40]);
    }

    #[test]
    fn inverse_roundtrips() {
        let p = Permutation::from_new_of_old(vec![2, 0, 3, 1]).unwrap();
        let id = p.compose(&p.inverse());
        assert_eq!(id, Permutation::identity(4));
    }

    #[test]
    fn from_order_matches_new_of_old() {
        // Visit order [2, 0, 1]: old 2 becomes new 0, old 0 new 1, old 1 new 2.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.as_new_of_old(), &[1, 2, 0]);
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        assert!(matches!(
            Permutation::from_new_of_old(vec![0, 0, 1]),
            Err(PermutationError::NotBijective { id: 0 })
        ));
        assert!(matches!(
            Permutation::from_new_of_old(vec![0, 5]),
            Err(PermutationError::OutOfRange { id: 5, len: 2 })
        ));
        assert!(Permutation::from_order(&[1, 1, 0]).is_err());
    }

    #[test]
    fn relabeling_preserves_edge_count_and_degrees() {
        let el = EdgeList::from_pairs(5, &[(0, 1), (0, 2), (3, 2), (4, 0)]);
        let p = Permutation::from_new_of_old(vec![4, 3, 2, 1, 0]).unwrap();
        let out = p.apply_to_edges(&el);
        assert_eq!(out.num_edges(), el.num_edges());
        // Degree multiset is invariant under relabeling.
        let degrees = |e: &EdgeList| {
            let mut d = vec![0u32; e.num_vertices()];
            for &(_, dst) in e.edges() {
                d[dst as usize] += 1;
            }
            d.sort_unstable();
            d
        };
        assert_eq!(degrees(&el), degrees(&out));
    }

    #[test]
    fn permute_rows_moves_data_with_vertices() {
        let p = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        // Vertex 0 moves to slot 1, 1 → 2, 2 → 0.
        assert_eq!(p.permute_rows(&["a", "b", "c"]), vec!["c", "a", "b"]);
    }

    #[test]
    fn tensor_rows_roundtrip() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let t = Tensor::new(&[3, 2], vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1]).unwrap();
        let moved = p.permute_tensor_rows(&t);
        // Vertex 0's row lands at slot 2.
        assert_eq!(moved.row(2), t.row(0));
        assert_eq!(moved.row(0), t.row(1));
        let back = p.unpermute_tensor_rows(&moved);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn apply_to_graph_matches_apply_to_edges() {
        let el = EdgeList::from_pairs(5, &[(0, 1), (0, 2), (3, 2), (4, 0)]);
        let g = Graph::from_edge_list(&el);
        let p = Permutation::from_new_of_old(vec![4, 3, 2, 1, 0]).unwrap();
        let (pg, emap) = p.apply_to_graph(&g);
        // Same edge multiset as the canonical EdgeList relabeling.
        assert_eq!(pg.edge_list(), p.apply_to_edges(&el));
        // The edge map is a bijection tracking each relabeled endpoint.
        let mut seen = vec![false; emap.len()];
        for (old, &new) in emap.iter().enumerate() {
            assert!(!std::mem::replace(&mut seen[new as usize], true));
            assert_eq!(pg.src(new as usize) as u32, p.new_id(g.src(old) as u32));
            assert_eq!(pg.dst(new as usize) as u32, p.new_id(g.dst(old) as u32));
        }
    }

    #[test]
    fn display_messages_nonempty() {
        let e = PermutationError::NotBijective { id: 3 };
        assert!(!e.to_string().is_empty());
        let e = PermutationError::OutOfRange { id: 9, len: 4 };
        assert!(e.to_string().contains('9'));
    }
}

//! GNNAdvisor-style neighbor grouping.
//!
//! A vertex-balanced fused kernel (§5 of the paper) binds one thread
//! group per destination vertex, so a 50 000-degree Reddit hub keeps one
//! group busy while thousands idle. Neighbor grouping splits each
//! vertex's incoming edge set into groups of at most `group_size` edges
//! and binds thread groups to *groups*: the per-worker upper bound drops
//! from `max_degree` to `group_size`, at the price of one extra partial
//! reduction merge per additional group.

use gnnopt_graph::GraphStats;

/// The neighbor-grouping decision for one graph: how many bounded-size
/// work items each vertex's in-edge set splits into.
///
/// ```
/// use gnnopt_graph::GraphStats;
/// use gnnopt_reorder::NeighborGrouping;
///
/// let skewed = GraphStats::synthesize_power_law(4096, 16.0, 1.4);
/// let grouping = NeighborGrouping::build(&skewed, 32);
/// let flattened = grouping.grouped_stats().vertex_balanced_imbalance(256);
/// assert!(flattened < skewed.vertex_balanced_imbalance(256));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborGrouping {
    group_size: usize,
    in_degrees: Vec<u32>,
    num_edges: usize,
}

impl NeighborGrouping {
    /// Splits every vertex's in-edge set into groups of at most
    /// `group_size` edges.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn build(stats: &GraphStats, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        Self {
            group_size,
            in_degrees: stats.in_degrees().to_vec(),
            num_edges: stats.num_edges(),
        }
    }

    /// The configured maximum edges per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total number of groups (work items of the grouped kernel).
    pub fn num_groups(&self) -> usize {
        self.in_degrees
            .iter()
            .map(|&d| (d as usize).div_ceil(self.group_size))
            .sum()
    }

    /// Number of groups assigned to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn groups_of(&self, v: usize) -> usize {
        (self.in_degrees[v] as usize).div_ceil(self.group_size)
    }

    /// Cross-group merges: each vertex with `g > 1` groups needs `g − 1`
    /// partial-result combinations (atomic adds or a second-stage kernel).
    pub fn merge_ops(&self) -> usize {
        self.in_degrees
            .iter()
            .map(|&d| (d as usize).div_ceil(self.group_size).saturating_sub(1))
            .sum()
    }

    /// Degree statistics of the *grouped* work items: one entry per group,
    /// each holding at most `group_size` edges. Feeding this to the
    /// simulator's imbalance model yields the balanced-workload effect
    /// (zero-degree vertices contribute no groups).
    pub fn grouped_stats(&self) -> GraphStats {
        let mut degrees = Vec::with_capacity(self.num_groups());
        for &d in &self.in_degrees {
            let mut left = d as usize;
            while left > 0 {
                let take = left.min(self.group_size);
                degrees.push(take as u32);
                left -= take;
            }
        }
        GraphStats::from_in_degrees(degrees)
    }

    /// Preprocessing cost in bytes touched: one pass over the edge index
    /// (read) plus the group table (write) — what GNNAdvisor amortizes
    /// over training epochs.
    pub fn preprocessing_bytes(&self) -> u64 {
        (self.num_edges as u64) * 4 + (self.num_groups() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> GraphStats {
        GraphStats::from_in_degrees(vec![100, 1, 1, 1, 1, 0, 0, 16])
    }

    #[test]
    fn group_counts() {
        let g = NeighborGrouping::build(&skewed(), 16);
        // 100/16 → 7 groups, four degree-1 vertices → 1 each, 16 → 1.
        assert_eq!(g.num_groups(), 7 + 4 + 1);
        assert_eq!(g.merge_ops(), 6);
        assert_eq!(g.group_size(), 16);
        assert_eq!(g.groups_of(0), 7);
        assert_eq!(g.groups_of(5), 0);
    }

    #[test]
    fn grouped_stats_preserve_edges_and_bound_degree() {
        let s = skewed();
        let g = NeighborGrouping::build(&s, 16);
        let gs = g.grouped_stats();
        assert_eq!(gs.num_edges(), s.num_edges());
        assert!(gs.in_degrees().iter().all(|&d| d <= 16 && d > 0));
        assert_eq!(gs.num_vertices(), g.num_groups());
    }

    #[test]
    fn grouping_flattens_imbalance() {
        let s = GraphStats::synthesize_power_law(4096, 16.0, 1.4);
        let before = s.vertex_balanced_imbalance(256);
        let after = NeighborGrouping::build(&s, 32)
            .grouped_stats()
            .vertex_balanced_imbalance(256);
        assert!(
            after < before,
            "grouping must reduce imbalance: {before} -> {after}"
        );
    }

    #[test]
    fn tighter_groups_never_hurt_balance() {
        let s = GraphStats::synthesize_power_law(1024, 32.0, 1.2);
        let imb = |gs: usize| {
            NeighborGrouping::build(&s, gs)
                .grouped_stats()
                .vertex_balanced_imbalance(128)
        };
        assert!(imb(8) <= imb(64) + 1e-9);
        assert!(imb(64) <= imb(4096) + 1e-9);
    }

    #[test]
    fn group_size_one_is_edge_balanced() {
        let s = skewed();
        let gs = NeighborGrouping::build(&s, 1).grouped_stats();
        assert_eq!(gs.num_vertices(), s.num_edges());
        assert!(gs.in_degrees().iter().all(|&d| d == 1));
    }

    #[test]
    fn preprocessing_cost_scales_with_edges() {
        let small = NeighborGrouping::build(&GraphStats::from_in_degrees(vec![4; 8]), 4);
        let large = NeighborGrouping::build(&GraphStats::from_in_degrees(vec![4; 800]), 4);
        assert!(large.preprocessing_bytes() > small.preprocessing_bytes());
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_size_panics() {
        let _ = NeighborGrouping::build(&skewed(), 0);
    }
}

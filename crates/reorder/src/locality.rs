//! Locality metrics for gather/scatter access patterns.
//!
//! A `Gather` kernel scans edges in destination-major order and reads the
//! source vertex's feature row per edge. How often that row is still
//! cached decides the kernel's effective bandwidth. Two metrics capture
//! it: index-gap statistics ([`report`]) and an exact LRU stack-distance
//! hit rate ([`lru_hit_rate`]) for a given cache capacity in rows.

use gnnopt_graph::EdgeList;

/// Index-distance statistics of an edge list's gather reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityReport {
    /// Mean `|src − dst|` over edges (0 for an empty graph).
    pub mean_gap: f64,
    /// Max `|src − dst|` over edges — the matrix bandwidth.
    pub max_gap: usize,
    /// Number of edges measured.
    pub num_edges: usize,
}

/// Computes index-gap statistics of `el`.
pub fn report(el: &EdgeList) -> LocalityReport {
    let mut sum = 0u64;
    let mut max = 0usize;
    for &(s, d) in el.edges() {
        let gap = s.abs_diff(d) as usize;
        sum += gap as u64;
        max = max.max(gap);
    }
    let n = el.num_edges();
    LocalityReport {
        mean_gap: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
        max_gap: max,
        num_edges: n,
    }
}

/// Exact LRU hit rate of the source-row reads of a destination-major edge
/// scan, for a fully-associative cache holding `cache_rows` feature rows.
///
/// Uses the classic stack-distance algorithm: a Fenwick tree marks the
/// most recent access position of every row; a read hits iff the number
/// of *distinct* rows touched since its previous access is below
/// `cache_rows`. Runs in `O(|E| log |E|)`.
///
/// Returns 0 for graphs with no edges or a zero-capacity cache.
pub fn lru_hit_rate(el: &EdgeList, cache_rows: usize) -> f64 {
    let edges = el.edges();
    if edges.is_empty() || cache_rows == 0 {
        return 0.0;
    }
    let mut bit = Fenwick::new(edges.len() + 1);
    let mut last_pos = vec![usize::MAX; el.num_vertices()];
    let mut hits = 0usize;
    for (pos, &(src, _)) in edges.iter().enumerate() {
        let row = src as usize;
        if last_pos[row] != usize::MAX {
            let prev = last_pos[row];
            // Distinct rows touched strictly after `prev`: count of marked
            // positions in (prev, pos). The row itself still occupies one
            // cache slot, hence `<` (distance 0 = consecutive reuse).
            let distance = bit.range_sum(prev + 1, pos);
            if distance < cache_rows {
                hits += 1;
            }
            bit.add(prev, -1);
        }
        bit.add(pos, 1);
        last_pos[row] = pos;
    }
    hits as f64 / edges.len() as f64
}

/// Fenwick tree over i64 counts.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `[0, i)`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of positions `[lo, hi)` — the count of marked slots in range.
    fn range_sum(&self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return 0;
        }
        (self.prefix(hi) - self.prefix(lo)).max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_graph::generators;

    #[test]
    fn report_on_ring() {
        // Ring edges connect i → i+1 (gap 1) plus the wrap edge (gap n−1).
        let el = generators::ring(8);
        let r = report(&el);
        assert_eq!(r.num_edges, 8);
        assert_eq!(r.max_gap, 7);
        assert!((r.mean_gap - (7.0 + 7.0) / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_degenerate() {
        let el = EdgeList::from_pairs(4, &[]);
        assert_eq!(report(&el).mean_gap, 0.0);
        assert_eq!(lru_hit_rate(&el, 16), 0.0);
    }

    #[test]
    fn repeated_source_hits_in_any_cache() {
        // Star reversed: every edge reads source 0's row → all but the first
        // read hit even with a single-row cache.
        let pairs: Vec<(u32, u32)> = (1..9u32).map(|d| (0, d)).collect();
        let el = EdgeList::from_pairs(9, &pairs);
        let rate = lru_hit_rate(&el, 1);
        assert!((rate - 7.0 / 8.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn capacity_one_misses_alternating_rows() {
        // Reads alternate between rows 0 and 1: with capacity 1 every read
        // evicts the other row, so nothing ever hits.
        let el = EdgeList::from_pairs(4, &[(0, 2), (1, 2), (0, 3), (1, 3)]);
        assert_eq!(lru_hit_rate(&el, 1), 0.0);
        // Capacity 2 holds both rows: the last two reads hit.
        assert!((lru_hit_rate(&el, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let el = generators::rmat(8, 8, 0.57, 0.19, 0.19, 5);
        let mut prev = 0.0;
        for cap in [1usize, 4, 16, 64, 256, 1024] {
            let r = lru_hit_rate(&el, cap);
            assert!(r >= prev, "hit rate must be monotone in capacity");
            prev = r;
        }
        // An infinite cache only misses compulsory (first-touch) reads.
        let infinite = lru_hit_rate(&el, usize::MAX);
        let distinct_sources: std::collections::HashSet<u32> =
            el.edges().iter().map(|&(s, _)| s).collect();
        let expected = 1.0 - distinct_sources.len() as f64 / el.num_edges() as f64;
        assert!((infinite - expected).abs() < 1e-9);
    }
}

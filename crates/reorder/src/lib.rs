//! Runtime optimizations for GNN kernels: vertex reordering and
//! neighbor grouping.
//!
//! The paper's §8 separates *computational-graph* optimization (its own
//! contribution, `gnnopt-core`) from *runtime* optimization — scheduling
//! workload assignment and memory layout with a preprocessing pass, as
//! GNNAdvisor (Wang et al., OSDI'21) does with neighbor grouping and
//! Rabbit Reordering (Arai et al., IPDPS'16). The two levels compose: a
//! fused vertex-balanced kernel (§5) still suffers load imbalance and poor
//! gather locality on skewed graphs, which is precisely what this crate's
//! two techniques address:
//!
//! * **Vertex reordering** ([`strategies`]): a [`Permutation`] relabels
//!   vertices so neighbors get nearby ids, improving the cache behaviour
//!   of `Gather`/`Scatter` reads. Provided strategies: degree sort, BFS,
//!   reverse Cuthill–McKee, and a Rabbit-inspired clustered order.
//!   [`locality`] quantifies the effect (LRU hit rate, index span).
//! * **Neighbor grouping** ([`grouping`]): splits high-degree vertices
//!   into bounded-size edge groups so a vertex-balanced mapping binds
//!   thread groups to *groups* instead of vertices, flattening the
//!   degree skew at the cost of a small cross-group merge.
//!
//! Both are preprocessing passes whose costs are surfaced explicitly
//! (amortized over training epochs in the paper's setting); the
//! `reorder_ablation` bench binary reports the trade-off on the paper's
//! datasets.
//!
//! Both techniques run **on real hardware** through `gnnopt-exec`: a
//! session whose `ExecPolicy` names a `ReorderPolicy` (or the
//! `GNNOPT_REORDER` override) relabels its CSR graph once at build via
//! [`Permutation::apply_to_graph`] — a *stable* permutation that keeps
//! per-destination reduction order, so results match the identity
//! ordering — and the fused interpreter can bind workers to bounded
//! edge groups (`ExecPolicy::group_workers`), realizing the
//! neighbor-grouping load-balance on CPU workers.
//!
//! ```
//! use gnnopt_graph::{generators, Graph};
//! use gnnopt_reorder::{locality, strategies};
//!
//! let el = generators::rmat(8, 8, 0.57, 0.19, 0.19, 7);
//! let perm = strategies::rcm(&el);
//! let reordered = perm.apply_to_edges(&el);
//! let before = locality::lru_hit_rate(&el, 64);
//! let after = locality::lru_hit_rate(&reordered, 64);
//! assert!(after >= before * 0.9); // typically strictly better
//! ```

pub mod grouping;
pub mod locality;
mod permutation;
pub mod strategies;

pub use grouping::NeighborGrouping;
pub use locality::LocalityReport;
pub use permutation::{Permutation, PermutationError};

//! Classification loss and metrics.

use gnnopt_tensor::Tensor;

/// Mean softmax cross-entropy over rows, with the gradient w.r.t. the
/// logits — the seed of the backward pass.
///
/// Returns `(loss, grad)` where `grad[i, c] = (softmax(x_i)[c] − 1[c ==
/// label_i]) / N`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let n = logits.rows().max(1) as f32;
    let probs = logits
        .softmax_rows()
        .expect("logits must have at least one class column");
    let mut grad = probs.clone();
    let mut loss = 0.0;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        loss -= probs.at(i, label).max(1e-12).ln();
        let row = grad.row_mut(i);
        row[label] -= 1.0;
        for x in row.iter_mut() {
            *x /= n;
        }
    }
    (loss / n, grad)
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(labels.len(), logits.rows());
    if labels.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_cols().expect("at least one class column");
    let hits = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn uniform_logits_loss_is_ln_c() {
        let logits = Tensor::zeros(&[4, 3]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 0]);
        assert!((loss - 3.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..4 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[&[0.5, -0.2, 0.1], &[-0.3, 0.8, 0.0]]).unwrap();
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.at(r, c) + h);
                let mut lm = logits.clone();
                lm.set(r, c, logits.at(r, c) - h);
                let (fp, _) = softmax_cross_entropy(&lp, &labels);
                let (fm, _) = softmax_cross_entropy(&lm, &labels);
                let num = (fp - fm) / (2.0 * h);
                assert!(
                    (num - grad.at(r, c)).abs() < 1e-3,
                    "[{r},{c}]: {num} vs {}",
                    grad.at(r, c)
                );
            }
        }
    }
}

/// Masked variant of [`softmax_cross_entropy`]: only rows with
/// `mask[i] == true` contribute to the loss and receive gradient — the
/// standard semi-supervised node-classification setting (train on the
/// labeled subset, evaluate on the rest).
///
/// Returns `(loss, grad)` normalized by the number of masked rows; a
/// fully-false mask yields zero loss and zero gradient.
///
/// # Panics
///
/// Panics if `labels` or `mask` length differs from the row count, or a
/// masked label is out of range.
pub fn softmax_cross_entropy_masked(
    logits: &Tensor,
    labels: &[usize],
    mask: &[bool],
) -> (f32, Tensor) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    assert_eq!(mask.len(), logits.rows(), "one mask bit per row");
    let n = mask.iter().filter(|&&m| m).count();
    let mut grad = Tensor::zeros(logits.shape());
    if n == 0 {
        return (0.0, grad);
    }
    let probs = logits
        .softmax_rows()
        .expect("logits must have at least one class column");
    let mut loss = 0.0;
    for (i, (&label, &m)) in labels.iter().zip(mask).enumerate() {
        if !m {
            continue;
        }
        assert!(label < logits.cols(), "label {label} out of range");
        loss -= probs.at(i, label).max(1e-12).ln();
        let row = grad.row_mut(i);
        row.copy_from_slice(probs.row(i));
        row[label] -= 1.0;
        for x in row.iter_mut() {
            *x /= n as f32;
        }
    }
    (loss / n as f32, grad)
}

/// Accuracy over the masked rows only (0 when the mask is empty).
///
/// # Panics
///
/// Panics if `labels` or `mask` length differs from the row count.
pub fn accuracy_masked(logits: &Tensor, labels: &[usize], mask: &[bool]) -> f32 {
    assert_eq!(labels.len(), logits.rows());
    assert_eq!(mask.len(), logits.rows());
    let pred = logits.argmax_cols().expect("at least one class column");
    let (mut hits, mut total) = (0usize, 0usize);
    for ((p, l), &m) in pred.iter().zip(labels).zip(mask) {
        if m {
            total += 1;
            hits += usize::from(p == l);
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f32 / total as f32
    }
}

#[cfg(test)]
mod masked_tests {
    use super::*;

    #[test]
    fn full_mask_matches_unmasked() {
        let logits = Tensor::from_rows(&[&[0.5, -0.2], &[-0.3, 0.8]]).unwrap();
        let labels = [0usize, 1];
        let (l1, g1) = softmax_cross_entropy(&logits, &labels);
        let (l2, g2) = softmax_cross_entropy_masked(&logits, &labels, &[true, true]);
        assert!((l1 - l2).abs() < 1e-6);
        assert!(g1.allclose(&g2));
    }

    #[test]
    fn unmasked_rows_get_zero_gradient() {
        let logits = Tensor::from_rows(&[&[0.5, -0.2], &[-0.3, 0.8]]).unwrap();
        let (_, g) = softmax_cross_entropy_masked(&logits, &[0, 1], &[true, false]);
        assert!(g.row(1).iter().all(|&x| x == 0.0));
        assert!(g.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_mask_is_zero() {
        let logits = Tensor::zeros(&[3, 2]);
        let (l, g) = softmax_cross_entropy_masked(&logits, &[0, 1, 0], &[false; 3]);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(accuracy_masked(&logits, &[0, 1, 0], &[false; 3]), 0.0);
    }

    #[test]
    fn masked_accuracy_counts_subset() {
        let logits = Tensor::from_rows(&[&[5.0, 0.0], &[5.0, 0.0], &[0.0, 5.0]]).unwrap();
        let labels = [0usize, 1, 1];
        // Overall: 2/3; over mask {0, 2}: 2/2.
        assert!((accuracy(&logits, &labels) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy_masked(&logits, &labels, &[true, false, true]), 1.0);
    }
}

//! Learning-rate schedules and early stopping.

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate to use for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// A fixed learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Multiplies the rate by `gamma` every `every` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base: f32,
    /// Decay multiplier.
    pub gamma: f32,
    /// Epochs between decays.
    pub every: usize,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.every.max(1)) as i32)
    }
}

/// Cosine annealing from `base` to `min` over `total` epochs, then `min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    /// Initial learning rate.
    pub base: f32,
    /// Final learning rate.
    pub min: f32,
    /// Annealing horizon in epochs.
    pub total: usize,
}

impl LrSchedule for CosineAnnealing {
    fn lr_at(&self, epoch: usize) -> f32 {
        if self.total == 0 || epoch >= self.total {
            return self.min;
        }
        let progress = epoch as f32 / self.total as f32;
        self.min + 0.5 * (self.base - self.min) * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

/// Linear warmup over the first `warmup` epochs, then the inner schedule
/// (queried with the post-warmup epoch index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Warmup<S> {
    /// Schedule after warmup.
    pub inner: S,
    /// Warmup length in epochs.
    pub warmup: usize,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn lr_at(&self, epoch: usize) -> f32 {
        if epoch < self.warmup {
            let target = self.inner.lr_at(0);
            target * (epoch + 1) as f32 / self.warmup as f32
        } else {
            self.inner.lr_at(epoch - self.warmup)
        }
    }
}

/// Early stopping on a monitored loss: stops when the loss has not
/// improved by at least `min_delta` for `patience` consecutive checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopping {
    /// Checks without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum decrease that counts as improvement.
    pub min_delta: f32,
    best: f32,
    stale: usize,
}

impl EarlyStopping {
    /// A stopper with the given patience and delta.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        Self {
            patience,
            min_delta,
            best: f32::INFINITY,
            stale: 0,
        }
    }

    /// Records a new loss; returns `true` when training should stop.
    pub fn should_stop(&mut self, loss: f32) -> bool {
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.stale = 0;
            false
        } else {
            self.stale += 1;
            self.stale > self.patience
        }
    }

    /// Best loss observed so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.1);
        assert_eq!(s.lr_at(0), s.lr_at(1000));
    }

    #[test]
    fn step_decay_steps() {
        let s = StepDecay {
            base: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = CosineAnnealing {
            base: 1.0,
            min: 0.1,
            total: 100,
        };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(50) - 0.55).abs() < 1e-6);
        // Monotone decreasing over the horizon.
        let mut prev = f32::INFINITY;
        for e in 0..=100 {
            let lr = s.lr_at(e);
            assert!(lr <= prev + 1e-6);
            prev = lr;
        }
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup {
            inner: ConstantLr(0.8),
            warmup: 4,
        };
        assert!((s.lr_at(0) - 0.2).abs() < 1e-6);
        assert!((s.lr_at(1) - 0.4).abs() < 1e-6);
        assert!((s.lr_at(3) - 0.8).abs() < 1e-6);
        assert_eq!(s.lr_at(10), 0.8);
    }

    #[test]
    fn early_stopping_fires_after_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.9)); // improvement
        assert!(!es.should_stop(0.95)); // stale 1
        assert!(!es.should_stop(0.91)); // stale 2
        assert!(es.should_stop(0.92)); // stale 3 > patience
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut es = EarlyStopping::new(0, 0.1);
        assert!(!es.should_stop(1.0));
        // 0.95 improves by < 0.1 → counts as stale → stops immediately
        // with patience 0.
        assert!(es.should_stop(0.95));
    }
}

//! First-order optimizers and gradient utilities.

use gnnopt_tensor::Tensor;
use std::collections::HashMap;

/// A parameter-update rule.
pub trait Optimizer {
    /// Applies one update step: `params[k] ← update(params[k], grads[k])`
    /// for every key present in `grads`.
    fn step(&mut self, params: &mut HashMap<String, Tensor>, grads: &HashMap<String, Tensor>);

    /// Overrides the learning rate (used by LR schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Rescales all gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm. Standard protection against the
/// exploding gradients of deep propagation chains (e.g. APPNP with many
/// hops).
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(grads: &mut HashMap<String, Tensor>, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let sq: f32 = grads
        .values()
        .map(|g| g.as_slice().iter().map(|x| x * x).sum::<f32>())
        .sum();
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.values_mut() {
            for x in g.as_mut_slice() {
                *x *= scale;
            }
        }
    }
    norm
}

/// Stochastic gradient descent with optional momentum and L2 weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient added to every gradient.
    pub weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            momentum,
            ..Self::new(lr)
        }
    }

    /// SGD with L2 weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self {
            weight_decay,
            ..Self::new(lr)
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut HashMap<String, Tensor>, grads: &HashMap<String, Tensor>) {
        for (k, g) in grads {
            let Some(p) = params.get_mut(k) else { continue };
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(k.clone())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                for ((vi, &gi), &pi) in v
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(p.as_slice().iter())
                {
                    *vi = self.momentum * *vi + gi + self.weight_decay * pi;
                }
                for (pi, &vi) in p.as_mut_slice().iter_mut().zip(
                    self.velocity
                        .get(k)
                        .expect("velocity inserted above")
                        .as_slice(),
                ) {
                    *pi -= self.lr * vi;
                }
            } else {
                for (pi, &gi) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *pi -= self.lr * (gi + self.weight_decay * *pi);
                }
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015), with optional *decoupled* weight decay
/// (AdamW, Loshchilov & Hutter, 2019).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient (0 = plain Adam).
    pub weight_decay: f32,
    t: i32,
    m: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// AdamW: Adam with decoupled weight decay.
    pub fn adamw(lr: f32, weight_decay: f32) -> Self {
        Self {
            weight_decay,
            ..Self::new(lr)
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut HashMap<String, Tensor>, grads: &HashMap<String, Tensor>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (k, g) in grads {
            let Some(p) = params.get_mut(k) else { continue };
            let m = self
                .m
                .entry(k.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self
                .v
                .entry(k.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            for ((pi, mi), (vi, &gi)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice().iter_mut().zip(g.as_slice()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                // Decoupled decay: shrink the weight directly, not via the
                // moment estimates.
                *pi -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *pi);
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_setup() -> (HashMap<String, Tensor>, HashMap<String, Tensor>) {
        let mut params = HashMap::new();
        params.insert("w".to_owned(), Tensor::from_vec(vec![10.0]));
        let grads = HashMap::new();
        (params, grads)
    }

    /// Minimize f(w) = w² with analytic gradient 2w.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let (mut params, _) = quad_setup();
        for _ in 0..steps {
            let w = params["w"].as_slice()[0];
            let mut grads = HashMap::new();
            grads.insert("w".to_owned(), Tensor::from_vec(vec![2.0 * w]));
            opt.step(&mut params, &grads);
        }
        params["w"].as_slice()[0].abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(optimize(&mut Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(optimize(&mut Sgd::with_momentum(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(optimize(&mut Adam::new(0.3), 300) < 1e-2);
    }

    #[test]
    fn missing_param_is_skipped() {
        let mut params = HashMap::new();
        params.insert("w".to_owned(), Tensor::from_vec(vec![1.0]));
        let mut grads = HashMap::new();
        grads.insert("ghost".to_owned(), Tensor::from_vec(vec![1.0]));
        Sgd::new(0.1).step(&mut params, &grads);
        assert_eq!(params["w"].as_slice(), &[1.0]);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut params = HashMap::new();
        params.insert("w".to_owned(), Tensor::from_vec(vec![1.0]));
        let mut grads = HashMap::new();
        grads.insert("w".to_owned(), Tensor::from_vec(vec![0.0]));
        let mut sgd = Sgd::with_weight_decay(0.1, 0.5);
        sgd.step(&mut params, &grads);
        // w ← w − lr·wd·w = 1 − 0.05.
        assert!((params["w"].as_slice()[0] - 0.95).abs() < 1e-6);

        let mut params = HashMap::new();
        params.insert("w".to_owned(), Tensor::from_vec(vec![1.0]));
        let mut adamw = Adam::adamw(0.1, 0.5);
        adamw.step(&mut params, &grads);
        assert!((params["w"].as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut params = HashMap::new();
        params.insert("w".to_owned(), Tensor::from_vec(vec![1.0]));
        let mut grads = HashMap::new();
        grads.insert("w".to_owned(), Tensor::from_vec(vec![1.0]));
        let mut sgd = Sgd::new(0.1);
        sgd.set_lr(0.0);
        sgd.step(&mut params, &grads);
        assert_eq!(params["w"].as_slice(), &[1.0]);
    }

    #[test]
    fn clip_grad_norm_rescales_only_above_threshold() {
        let mut grads = HashMap::new();
        grads.insert("a".to_owned(), Tensor::from_vec(vec![3.0]));
        grads.insert("b".to_owned(), Tensor::from_vec(vec![4.0]));
        // Global norm 5, clipped to 1: components scale by 1/5.
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((grads["a"].as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((grads["b"].as_slice()[0] - 0.8).abs() < 1e-6);
        // Below the threshold nothing changes.
        let norm2 = clip_grad_norm(&mut grads, 10.0);
        assert!((norm2 - 1.0).abs() < 1e-6);
        assert!((grads["a"].as_slice()[0] - 0.6).abs() < 1e-6);
    }
}

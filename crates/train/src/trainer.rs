//! The epoch driver: forward → loss → backward → update.

use crate::optim::clip_grad_norm;
use crate::schedule::{EarlyStopping, LrSchedule};
use crate::{accuracy_masked, softmax_cross_entropy_masked, Optimizer, Result};
use gnnopt_core::ExecutionPlan;
use gnnopt_exec::{Bindings, ExecError, RunStats, Session};
use gnnopt_graph::Graph;
use gnnopt_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Metrics of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Training accuracy of this step's predictions.
    pub accuracy: f32,
    /// Measured executor statistics.
    pub run: RunStats,
}

/// Drives training of one compiled plan over a fixed graph.
///
/// Holds the parameter/input values; each [`Trainer::step`] runs a full
/// forward + backward and applies the optimizer to the parameters.
///
/// The trainer builds its [`Session`] **once** and reuses it for every
/// step and evaluation, so one-time session preprocessing — in
/// particular the plan's vertex reordering (`ExecPolicy::reorder` /
/// `GNNOPT_REORDER`) — amortizes over the whole run instead of being
/// paid per step ([`RunStats::reorder_seconds`] reports the same
/// build-time figure on every report).
pub struct Trainer<'a, O: Optimizer> {
    sess: Session<'a>,
    values: HashMap<String, Tensor>,
    param_names: HashSet<String>,
    optimizer: O,
    clip_norm: Option<f32>,
    nonfinite_retries: u32,
}

impl<'a, O: Optimizer> Trainer<'a, O> {
    /// Creates a trainer. `values` must bind every input and parameter;
    /// `param_names` selects which of them the optimizer updates.
    ///
    /// # Errors
    ///
    /// Propagates session-construction errors (duplicate leaf names, or
    /// an invalid `GNNOPT_THREADS`/`GNNOPT_FUSED`/`GNNOPT_REORDER`
    /// override).
    pub fn new(
        plan: &'a ExecutionPlan,
        graph: &'a Graph,
        values: HashMap<String, Tensor>,
        param_names: impl IntoIterator<Item = String>,
        optimizer: O,
    ) -> Result<Self> {
        Ok(Self {
            sess: Session::builder(plan, graph).build()?,
            values,
            param_names: param_names.into_iter().collect(),
            optimizer,
            clip_norm: None,
            nonfinite_retries: 0,
        })
    }

    /// Enables global-norm gradient clipping before every update.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Enables the bounded skip-and-retry policy on non-finite
    /// gradients: when the executor's numeric guard
    /// ([`gnnopt_core::ExecPolicy::guard`] / `GNNOPT_GUARD=1`) rejects a
    /// step with `ExecError::NonFinite`, the step is discarded — no
    /// parameter was updated — and re-run, up to `retries` times per
    /// [`Trainer::step`] call before the error propagates. The retry
    /// count of the step that finally succeeded is reported in
    /// [`RunStats::nonfinite_retries`].
    ///
    /// This targets *transient* faults (an injected fault, a flaky
    /// device): the executor is deterministic, so a NaN rooted in the
    /// parameters themselves recurs every attempt and still fails after
    /// the bound.
    pub fn with_nonfinite_retry(mut self, retries: u32) -> Self {
        self.nonfinite_retries = retries;
        self
    }

    /// Current value of a parameter or input.
    pub fn value(&self, name: &str) -> Option<&Tensor> {
        self.values.get(name)
    }

    /// One supervised step on per-vertex `labels`.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn step(&mut self, labels: &[usize]) -> Result<StepReport> {
        self.step_masked(labels, &vec![true; labels.len()])
    }

    /// One supervised step restricted to the rows with `mask[i] == true`
    /// (the semi-supervised split: train on the labeled subset). The
    /// report's loss/accuracy cover the masked rows only.
    ///
    /// # Errors
    ///
    /// Propagates executor errors. With
    /// [`Trainer::with_nonfinite_retry`] enabled, `NonFinite` guard
    /// rejections are retried up to the bound before propagating.
    pub fn step_masked(&mut self, labels: &[usize], mask: &[bool]) -> Result<StepReport> {
        let mut retries = 0u64;
        loop {
            match self.try_step_masked(labels, mask) {
                Err(ExecError::NonFinite { .. }) if retries < u64::from(self.nonfinite_retries) => {
                    retries += 1;
                }
                Err(e) => return Err(e),
                Ok(mut report) => {
                    report.run.nonfinite_retries = retries;
                    return Ok(report);
                }
            }
        }
    }

    /// One attempt of a masked step: forward, loss, backward, update.
    fn try_step_masked(&mut self, labels: &[usize], mask: &[bool]) -> Result<StepReport> {
        let mut bindings = Bindings::new();
        for (k, v) in &self.values {
            bindings.insert(k, v.clone());
        }
        let outputs = self.sess.forward(&bindings)?;
        let logits = &outputs[0];
        let (loss, grad) = softmax_cross_entropy_masked(logits, labels, mask);
        let acc = accuracy_masked(logits, labels, mask);
        let mut grads = self.sess.backward(grad)?;
        let run = self.sess.stats();

        if let Some(max_norm) = self.clip_norm {
            clip_grad_norm(&mut grads, max_norm);
        }
        let mut params: HashMap<String, Tensor> = HashMap::new();
        for name in &self.param_names {
            if let Some(v) = self.values.remove(name) {
                params.insert(name.clone(), v);
            }
        }
        self.optimizer.step(&mut params, &grads);
        self.values.extend(params);

        Ok(StepReport {
            loss,
            accuracy: acc,
            run,
        })
    }

    /// Evaluates loss/accuracy on `mask` without updating parameters
    /// (the validation half of a train/val split). Runs a forward pass
    /// through the shared session, so it resets any in-flight
    /// forward/backward state but never touches the values.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn evaluate(&mut self, labels: &[usize], mask: &[bool]) -> Result<(f32, f32)> {
        let mut bindings = Bindings::new();
        for (k, v) in &self.values {
            bindings.insert(k, v.clone());
        }
        let outputs = self.sess.forward(&bindings)?;
        let (loss, _) = softmax_cross_entropy_masked(&outputs[0], labels, mask);
        Ok((loss, accuracy_masked(&outputs[0], labels, mask)))
    }

    /// Runs `epochs` steps, returning the per-epoch reports.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn fit(&mut self, labels: &[usize], epochs: usize) -> Result<Vec<StepReport>> {
        (0..epochs).map(|_| self.step(labels)).collect()
    }

    /// Runs up to `epochs` steps with a learning-rate schedule, stopping
    /// early when `stopper` (if any) fires on the training loss.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn fit_scheduled(
        &mut self,
        labels: &[usize],
        epochs: usize,
        schedule: &dyn LrSchedule,
        mut stopper: Option<&mut EarlyStopping>,
    ) -> Result<Vec<StepReport>> {
        let mut reports = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            self.optimizer.set_lr(schedule.lr_at(epoch));
            let report = self.step(labels)?;
            let loss = report.loss;
            reports.push(report);
            if let Some(es) = stopper.as_deref_mut() {
                if es.should_stop(loss) {
                    break;
                }
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use gnnopt_core::{compile, CompileOptions};
    use gnnopt_graph::{generators, Graph};
    use gnnopt_models::{gcn, GcnConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Training a 2-layer GCN on a small synthetic task must reduce loss.
    #[test]
    fn gcn_loss_decreases() {
        let g = Graph::from_edge_list(&generators::erdos_renyi(24, 96, 5));
        let spec = gcn(&GcnConfig::two_layer(8, 16, 3)).unwrap();
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let mut values = spec.init_values(&g, 11);
        // Normalized edge weights 1/deg(dst).
        let ew: Vec<f32> = (0..g.num_edges())
            .map(|e| 1.0 / g.in_degree(g.dst(e)).max(1) as f32)
            .collect();
        values.insert(
            "edge_weight".into(),
            Tensor::new(&[g.num_edges(), 1], ew).unwrap(),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let labels: Vec<usize> = (0..24).map(|_| rng.gen_range(0..3)).collect();
        let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
        let mut trainer = Trainer::new(&compiled.plan, &g, values, params, Sgd::new(1.5)).unwrap();
        let reports = trainer.fit(&labels, 150).unwrap();
        let first = reports.first().unwrap().loss;
        let last = reports.last().unwrap().loss;
        assert!(last < first * 0.8, "loss should decrease: {first} → {last}");
    }

    fn gcn_fixture() -> (
        Graph,
        gnnopt_models::ModelSpec,
        std::collections::HashMap<String, gnnopt_tensor::Tensor>,
        Vec<usize>,
    ) {
        let g = Graph::from_edge_list(&generators::erdos_renyi(24, 96, 5));
        let spec = gcn(&GcnConfig::two_layer(8, 16, 3)).unwrap();
        let mut values = spec.init_values(&g, 11);
        let ew: Vec<f32> = (0..g.num_edges())
            .map(|e| 1.0 / g.in_degree(g.dst(e)).max(1) as f32)
            .collect();
        values.insert(
            "edge_weight".into(),
            Tensor::new(&[g.num_edges(), 1], ew).unwrap(),
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let labels: Vec<usize> = (0..24).map(|_| rng.gen_range(0..3)).collect();
        (g, spec, values, labels)
    }

    /// Masked training only fits the train split; evaluate() reports the
    /// held-out split without touching parameters.
    #[test]
    fn masked_training_and_evaluation() {
        let (g, spec, values, labels) = gcn_fixture();
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
        let mut trainer = Trainer::new(&compiled.plan, &g, values, params, Sgd::new(1.0)).unwrap();
        let train_mask: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let val_mask: Vec<bool> = train_mask.iter().map(|&m| !m).collect();
        let before = trainer.evaluate(&labels, &val_mask).unwrap();
        let mut first_train = f32::NAN;
        for i in 0..120 {
            let r = trainer.step_masked(&labels, &train_mask).unwrap();
            if i == 0 {
                first_train = r.loss;
            }
        }
        let last_train = trainer.step_masked(&labels, &train_mask).unwrap().loss;
        assert!(
            last_train < first_train * 0.8,
            "train loss should decrease: {first_train} → {last_train}"
        );
        // evaluate() is side-effect free: calling it twice agrees.
        let after1 = trainer.evaluate(&labels, &val_mask).unwrap();
        let after2 = trainer.evaluate(&labels, &val_mask).unwrap();
        assert_eq!(after1, after2);
        // Random labels on a random graph: val loss moves, but must stay
        // finite and be *different* from the untrained state.
        assert!(after1.0.is_finite() && after1.0 != before.0);
    }

    /// The trainer's single shared session pays reordering once: every
    /// step reports the identical build-time `reorder_seconds` (per-step
    /// sessions would re-measure and re-pay it), and training still
    /// converges on the relabeled graph.
    #[test]
    fn reordering_amortizes_across_steps_and_still_learns() {
        let (g, spec, values, labels) = gcn_fixture();
        let opts = CompileOptions {
            exec: gnnopt_core::ExecPolicy::auto().reordered(gnnopt_core::ReorderPolicy::Cluster),
            ..CompileOptions::ours()
        };
        let compiled = compile(&spec.ir, true, &opts).unwrap();
        let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
        let mut trainer = Trainer::new(&compiled.plan, &g, values, params, Sgd::new(1.5)).unwrap();
        let reports = trainer.fit(&labels, 150).unwrap();
        let first = &reports[0].run;
        // The plan asked for Cluster; a GNNOPT_REORDER env leg may pin a
        // different strategy or switch reordering off entirely (both are
        // the tested contract of Session::new), so only assert the
        // session reordered when nothing disabled it.
        let env_off = matches!(
            std::env::var("GNNOPT_REORDER")
                .ok()
                .as_deref()
                .map(str::trim),
            Some("0" | "none" | "off")
        );
        if !env_off {
            assert_ne!(first.reorder, gnnopt_core::ReorderPolicy::None);
            assert!(first.reorder_seconds > 0.0, "cost must be reported");
        }
        assert!(
            reports
                .iter()
                .all(|r| r.run.reorder_seconds == first.reorder_seconds),
            "one-time preprocessing must repeat the same figure each step"
        );
        let last = reports.last().unwrap().loss;
        assert!(
            last < reports[0].loss * 0.8,
            "reordered training should still converge: {} → {last}",
            reports[0].loss
        );
    }

    /// The cosine schedule reaches its floor and early stopping truncates
    /// the epoch budget.
    #[test]
    fn scheduled_fit_stops_early() {
        let (g, spec, values, labels) = gcn_fixture();
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let params: Vec<String> = spec.params.iter().map(|(n, _, _)| n.clone()).collect();
        let mut trainer = Trainer::new(&compiled.plan, &g, values, params, Sgd::new(1.0))
            .unwrap()
            .with_clip_norm(5.0);
        let schedule = crate::CosineAnnealing {
            base: 1.0,
            min: 0.01,
            total: 200,
        };
        // Zero patience + a huge min_delta: stops after epoch 2 at the
        // latest (first epoch sets best, second cannot beat it by 1e3).
        let mut stopper = crate::EarlyStopping::new(0, 1e3);
        let reports = trainer
            .fit_scheduled(&labels, 200, &schedule, Some(&mut stopper))
            .unwrap();
        assert!(
            reports.len() <= 2,
            "stopper must truncate: {}",
            reports.len()
        );
    }
}

//! Training substrate: losses, optimizers and an epoch driver.
//!
//! The paper's end-to-end numbers (Figure 7) are *training* iterations —
//! forward, loss, backward, parameter update — so this crate closes the
//! loop around `gnnopt-exec`: [`softmax_cross_entropy`] produces the
//! `∂L/∂output` seed the backward pass needs, and [`Trainer`] drives
//! `forward → loss → backward → optimizer` epochs over any compiled plan.

mod loss;
mod metrics;
mod optim;
mod schedule;
mod trainer;

pub use loss::{accuracy, accuracy_masked, softmax_cross_entropy, softmax_cross_entropy_masked};
pub use metrics::ConfusionMatrix;
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use schedule::{ConstantLr, CosineAnnealing, EarlyStopping, LrSchedule, StepDecay, Warmup};
pub use trainer::{StepReport, Trainer};

/// Crate-wide result alias (training reuses the executor's error type).
pub type Result<T> = std::result::Result<T, gnnopt_exec::ExecError>;

//! Classification metrics beyond plain accuracy.

use gnnopt_tensor::Tensor;

/// A `C × C` confusion matrix: `m[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from logits and labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of
    /// range for the logit columns.
    pub fn from_logits(logits: &Tensor, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), logits.rows(), "one label per row");
        let c = logits.cols();
        let mut counts = vec![vec![0usize; c]; c];
        let preds = logits.argmax_cols().expect("at least one class column");
        for (&pred, &actual) in preds.iter().zip(labels) {
            assert!(actual < c, "label {actual} out of range");
            counts[actual][pred] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of rows with `actual` label predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.num_classes()).map(|i| self.counts[i][i]).sum();
        diag as f32 / total as f32
    }

    /// Precision of one class: `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self, class: usize) -> f32 {
        let tp = self.counts[class][class];
        let predicted: usize = (0..self.num_classes()).map(|a| self.counts[a][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f32 / predicted as f32
        }
    }

    /// Recall of one class: `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self, class: usize) -> f32 {
        let tp = self.counts[class][class];
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f32 / actual as f32
        }
    }

    /// F1 of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f32 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over classes.
    pub fn macro_f1(&self) -> f32 {
        let c = self.num_classes();
        if c == 0 {
            return 0.0;
        }
        (0..c).map(|i| self.f1(i)).sum::<f32>() / c as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[usize], classes: usize) -> Tensor {
        let mut t = Tensor::zeros(&[preds.len(), classes]);
        for (i, &p) in preds.iter().enumerate() {
            t.set(i, p, 5.0);
        }
        t
    }

    #[test]
    fn perfect_predictions() {
        let labels = [0usize, 1, 2, 1];
        let m = ConfusionMatrix::from_logits(&logits_for(&labels, 3), &labels);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(m.precision(c), 1.0);
            assert_eq!(m.recall(c), 1.0);
        }
    }

    #[test]
    fn counts_land_in_cells() {
        // actual 0 predicted 1, actual 1 predicted 1.
        let m = ConfusionMatrix::from_logits(&logits_for(&[1, 1], 2), &[0, 1]);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.count(0, 0), 0);
        assert_eq!(m.accuracy(), 0.5);
        // Class 1: tp=1, fp=1, fn=0 → precision .5, recall 1.
        assert_eq!(m.precision(1), 0.5);
        assert_eq!(m.recall(1), 1.0);
        // Class 0: tp=0 → f1 = 0.
        assert_eq!(m.f1(0), 0.0);
        let expected_f1_1 = 2.0 * 0.5 * 1.0 / 1.5;
        assert!((m.macro_f1() - expected_f1_1 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn absent_class_scores_zero_not_nan() {
        // Class 2 never appears and is never predicted.
        let m = ConfusionMatrix::from_logits(&logits_for(&[0, 1], 3), &[0, 1]);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert!(m.macro_f1().is_finite());
    }
}

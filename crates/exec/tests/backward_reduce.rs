//! Thread-count invariance of the parallelized backward reductions and
//! the degree-binned heavy-row dispatch.
//!
//! The engine's determinism contract (see `gnnopt_exec::kernels`) has
//! two tiers: most kernels keep the serial accumulation order exactly,
//! while the cross-row parameter reductions (`head_dot_bwd_param`,
//! `gaussian_bwd_mu`, `gaussian_bwd_sigma`) re-associate on a fixed
//! chunk grid. Both tiers promise the *same bits at every thread
//! count*, which is what these tests pin — across threads {1, 2, 4},
//! both execution paths (reference and fused), graphs with isolated
//! vertices, and an extreme-hub graph whose heavy destination row takes
//! the chunked split path.

use gnnopt_core::{compile, CompileOptions, EdgeGroup, ExecPolicy, ReduceFn};
use gnnopt_exec::{kernels, Bindings, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gat, GatConfig};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

/// Forces the partitioning on arbitrarily small reductions.
fn pol(threads: usize) -> ExecPolicy {
    ExecPolicy {
        threads,
        parallel_threshold: 0,
        ..ExecPolicy::auto()
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(name: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{name}: shapes differ");
    assert_eq!(bits(a), bits(b), "{name}: bits differ");
}

fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        (((i as u64 + seed) * 2654435761 % 103) as f32 - 51.0) / 17.0
    })
}

/// Random multigraphs with guaranteed trailing isolated vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 1usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..96)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

/// An extreme hub: vertex 0 receives `hub_deg` edges (well past the
/// pinned heavy threshold), the rest of the graph is sparse, and the
/// last vertex is isolated.
fn hub_graph(hub_deg: usize) -> Graph {
    let n = 12u32;
    let mut pairs: Vec<(u32, u32)> = (0..hub_deg)
        .map(|i| ((i % (n as usize - 2)) as u32 + 1, 0))
        .collect();
    pairs.extend((1..n - 2).map(|v| (v, v + 1)));
    Graph::from_edge_list(&EdgeList::from_pairs(n as usize + 1, &pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fixed-grid parameter reductions: same bits for 1, 2, and 4
    /// worker threads (the chunk grid depends on the row count only).
    #[test]
    fn param_reductions_are_thread_count_invariant(
        rows in 1usize..300,
        heads in 1usize..4,
        feat in 1usize..5,
        seed in 0u64..1000,
    ) {
        let x = pseudo(rows, heads * feat, seed);
        let gr = pseudo(rows, heads, seed + 1);
        let base = kernels::head_dot_bwd_param(&pol(1), &x, &gr, heads, feat);
        for t in [2usize, 4] {
            assert_bit_identical(
                "head_dot_bwd_param",
                &base,
                &kernels::head_dot_bwd_param(&pol(t), &x, &gr, heads, feat),
            );
        }

        let p = pseudo(rows, feat, seed + 2);
        let mu = pseudo(heads, feat, seed + 3);
        let sig = pseudo(heads, feat, seed + 4);
        let w = kernels::gaussian_weight(&pol(1), &p, &mu, &sig);
        let g2 = pseudo(rows, heads, seed + 5);
        let bmu = kernels::gaussian_bwd_mu(&pol(1), &p, &w, &g2, &mu, &sig);
        let bsig = kernels::gaussian_bwd_sigma(&pol(1), &p, &w, &g2, &mu, &sig);
        for t in [2usize, 4] {
            assert_bit_identical(
                "gaussian_bwd_mu",
                &bmu,
                &kernels::gaussian_bwd_mu(&pol(t), &p, &w, &g2, &mu, &sig),
            );
            assert_bit_identical(
                "gaussian_bwd_sigma",
                &bsig,
                &kernels::gaussian_bwd_sigma(&pol(t), &p, &w, &g2, &mu, &sig),
            );
        }
    }

    /// The edge-inverted `gather_max_bwd`: each output element has at
    /// most one writer, so any row partition produces the same bits —
    /// over graphs with isolated vertices (`NO_ARGMAX` rows) and both
    /// edge groupings.
    #[test]
    fn gather_max_bwd_is_bit_identical_across_threads(
        g in arb_graph(),
        seed in 0u64..1000,
        d in 1usize..4,
    ) {
        let (n, m) = (g.num_vertices(), g.num_edges());
        for group in [EdgeGroup::ByDst, EdgeGroup::BySrc] {
            let e = pseudo(m, d, seed);
            let (_, am) = kernels::gather(&pol(1), &g, ReduceFn::Max, group, &e);
            let am = am.unwrap();
            let grad = pseudo(n, d, seed + 1);
            let base = kernels::gather_max_bwd(&pol(1), &g, group, &grad, &am);
            for t in [2usize, 4] {
                assert_bit_identical(
                    "gather_max_bwd",
                    &base,
                    &kernels::gather_max_bwd(&pol(t), &g, group, &grad, &am),
                );
            }
        }
    }
}

/// The heavy-row split: a destination row whose degree crosses the
/// policy threshold reduces as fixed 1024-edge chunk partials at every
/// thread count — serial (inline chunking), 2 and 4 workers (phase-2
/// hub split) all produce the same bits, and they agree with the plain
/// unchunked reduction up to reassociation.
#[test]
fn heavy_row_split_is_thread_count_invariant() {
    // Degree 2500 > 1024: the hub row spans three chunks, so the
    // phase-2 task list really distributes one row over several workers.
    let g = hub_graph(2500);
    let e = pseudo(g.num_edges(), 6, 3);
    for reduce in [ReduceFn::Sum, ReduceFn::Mean] {
        let heavy = |threads: usize| {
            let p = pol(threads).with_heavy_row_degree(16);
            kernels::gather(&p, &g, reduce, EdgeGroup::ByDst, &e).0
        };
        let base = heavy(1);
        for t in [2usize, 4] {
            assert_bit_identical("heavy-row gather", &base, &heavy(t));
        }
        // Sanity: chunking only reassociates, it doesn't change the sum.
        let plain = kernels::gather(
            &pol(1).with_heavy_row_degree(usize::MAX),
            &g,
            reduce,
            EdgeGroup::ByDst,
            &e,
        )
        .0;
        assert!(base.allclose(&plain), "{reduce:?}: chunked vs plain");
    }
    // Max rows are never chunked: first-wins argmax is already
    // scheduling-independent, so the threshold must not change bits.
    let (mx_small, am_small) = kernels::gather(
        &pol(4).with_heavy_row_degree(16),
        &g,
        ReduceFn::Max,
        EdgeGroup::ByDst,
        &e,
    );
    let (mx_plain, am_plain) = kernels::gather(&pol(1), &g, ReduceFn::Max, EdgeGroup::ByDst, &e);
    assert_bit_identical("heavy-row gather max", &mx_small, &mx_plain);
    assert_eq!(am_small, am_plain, "argmax tables differ");
}

/// End-to-end on the extreme-hub graph: a full GAT training step is
/// bit-identical across threads {1, 2, 4} × fused {off, on} with the
/// heavy-row split engaged (tiny pinned threshold).
#[test]
fn session_invariant_across_threads_and_fused_on_hub_graph() {
    let g = hub_graph(600);
    let spec = gat(&GatConfig {
        in_dim: 5,
        layers: vec![(2, 4)],
        negative_slope: 0.2,
        reorganized: true,
    })
    .expect("gat builds");
    let vals = spec.init_values(&g, 11);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let run = |threads: usize, fused: bool| {
        let policy = pol(threads).with_heavy_row_degree(8);
        let mut sess = Session::builder(&compiled.plan, &g)
            .policy(policy)
            .fused(fused)
            .env(gnnopt_exec::EnvOverrides::Off)
            .build()
            .expect("session");
        let mut b = Bindings::new();
        for (k, v) in &vals {
            b.insert(k, v.clone());
        }
        let out = sess.forward(&b).expect("forward");
        let grads = sess
            .backward(Tensor::ones(out[0].shape()))
            .expect("backward");
        (out, grads)
    };

    let (out_base, grads_base) = run(1, false);
    for fused in [false, true] {
        for threads in [1usize, 2, 4] {
            if threads == 1 && !fused {
                continue;
            }
            let (out, grads) = run(threads, fused);
            assert_eq!(out_base.len(), out.len());
            for (a, b) in out_base.iter().zip(&out) {
                assert_bit_identical(&format!("output (t={threads}, fused={fused})"), a, b);
            }
            assert_eq!(grads_base.len(), grads.len());
            for (k, gb) in &grads_base {
                assert_bit_identical(
                    &format!("grad '{k}' (t={threads}, fused={fused})"),
                    gb,
                    &grads[k],
                );
            }
        }
    }
}

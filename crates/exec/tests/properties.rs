//! Property-based tests of the executor kernels: the scatter/gather
//! adjointness that underlies the Appendix B backward rules, and
//! softmax/recompute invariants on arbitrary graphs.

use gnnopt_core::{Dim, EdgeGroup, ExecPolicy, ReduceFn, ScatterFn};
use gnnopt_exec::Session;
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

/// Random graphs with `iso` guaranteed isolated trailing vertices (edges
/// only touch the first `n`), so the empty-group reduce contract is
/// always exercised alongside arbitrary multigraph topology.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..80)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

fn serial() -> ExecPolicy {
    ExecPolicy::serial()
}

fn vertex_tensor(g: &Graph, seed: u64, d: usize) -> Tensor {
    Tensor::from_fn(&[g.num_vertices(), d], |i| {
        (((i as u64 + seed) * 2654435761 % 101) as f32 - 50.0) / 25.0
    })
}

fn edge_tensor(g: &Graph, seed: u64, d: usize) -> Tensor {
    Tensor::from_fn(&[g.num_edges(), d], |i| {
        (((i as u64 + seed) * 40503 % 97) as f32 - 48.0) / 24.0
    })
}

use gnnopt_exec::ExecError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ⟨scatter_u(x), m⟩ over edges = ⟨x, gather_src(m)⟩ over vertices —
    /// the adjointness that makes `Gather(BySrc)` the backward of
    /// `Scatter(CopyU)` (Appendix B).
    #[test]
    fn scatter_gather_are_adjoint(g in arb_graph(), seed in 0u64..100, d in 1usize..5) {
        use gnnopt_exec::kernels::{gather, scatter};
        let x = vertex_tensor(&g, seed, d);
        let m = edge_tensor(&g, seed + 1, d);
        let sx = scatter(&serial(), &g, ScatterFn::CopyU, &x, &x, Dim::flat(d));
        let lhs: f32 = sx
            .as_slice()
            .iter()
            .zip(m.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let (gm, _) = gather(&serial(), &g, ReduceFn::Sum, EdgeGroup::BySrc, &m);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gm.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// The dual adjointness for the destination direction.
    #[test]
    fn scatter_v_gather_dst_adjoint(g in arb_graph(), seed in 0u64..100, d in 1usize..5) {
        use gnnopt_exec::kernels::{gather, scatter};
        let y = vertex_tensor(&g, seed, d);
        let m = edge_tensor(&g, seed + 2, d);
        let sy = scatter(&serial(), &g, ScatterFn::CopyV, &y, &y, Dim::flat(d));
        let lhs: f32 = sy.as_slice().iter().zip(m.as_slice()).map(|(a, b)| a * b).sum();
        let (gm, _) = gather(&serial(), &g, ReduceFn::Sum, EdgeGroup::ByDst, &m);
        let rhs: f32 = y.as_slice().iter().zip(gm.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Softmax groups always sum to 1 on non-empty groups, and the aux
    /// recompute path is exact.
    #[test]
    fn softmax_invariants(g in arb_graph(), seed in 0u64..100) {
        use gnnopt_exec::kernels::{edge_softmax, edge_softmax_from_aux};
        let x = edge_tensor(&g, seed, 1);
        let (y, maxes, denom) = edge_softmax(&serial(), &g, &x);
        for v in 0..g.num_vertices() {
            let ids = g.in_adj().edge_ids(v);
            if ids.is_empty() {
                continue;
            }
            let s: f32 = ids.iter().map(|&e| y.at(e as usize, 0)).sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "group {v} sums to {s}");
        }
        let y2 = edge_softmax_from_aux(&serial(), &g, &x, &maxes, &denom);
        prop_assert!(y.allclose(&y2));
    }

    /// Gather(Max) backward routes exactly the vertex gradient mass.
    #[test]
    fn gather_max_bwd_conserves_mass(g in arb_graph(), seed in 0u64..100, d in 1usize..4) {
        use gnnopt_exec::kernels::{gather, gather_max_bwd};
        let m = edge_tensor(&g, seed, d);
        let (_, am) = gather(&serial(), &g, ReduceFn::Max, EdgeGroup::ByDst, &m);
        let am = am.unwrap();
        let grad = vertex_tensor(&g, seed + 3, d);
        let eg = gather_max_bwd(&serial(), &g, EdgeGroup::ByDst, &grad, &am);
        // Total mass routed = sum of grads over vertices with ≥1 in-edge.
        let expected: f32 = (0..g.num_vertices())
            .filter(|&v| g.in_degree(v) > 0)
            .map(|v| grad.row(v).iter().sum::<f32>())
            .sum();
        let got = eg.sum_all();
        prop_assert!((expected - got).abs() < 1e-2 * (1.0 + expected.abs()));
    }
}

#[test]
fn session_protocol_errors() {
    use gnnopt_core::{compile, CompileOptions};
    let mut ir = gnnopt_core::IrGraph::new();
    let h = ir.input_vertex("h", Dim::flat(2));
    let w = ir.param("w", 2, 2);
    let y = ir.linear(h, w).unwrap();
    ir.mark_output(y);
    let g = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1)]));

    // Inference plan: backward() must be a protocol error.
    let inf = compile(&ir, false, &CompileOptions::ours()).unwrap();
    let mut sess = Session::builder(&inf.plan, &g).build().unwrap();
    assert!(matches!(
        sess.backward(Tensor::zeros(&[3, 2])),
        Err(ExecError::Protocol(_))
    ));

    // Missing binding.
    let mut sess = Session::builder(&inf.plan, &g).build().unwrap();
    let err = sess.forward(&gnnopt_exec::Bindings::new()).unwrap_err();
    assert!(matches!(err, ExecError::MissingBinding(_)));

    // Wrong shape.
    let b = gnnopt_exec::Bindings::new()
        .with("h", Tensor::zeros(&[3, 5]))
        .with("w", Tensor::zeros(&[2, 2]));
    let mut sess = Session::builder(&inf.plan, &g).build().unwrap();
    assert!(matches!(
        sess.forward(&b).unwrap_err(),
        ExecError::BindingShape { .. }
    ));

    // Training plan: backward before forward is a protocol error.
    let tr = compile(&ir, true, &CompileOptions::ours()).unwrap();
    let mut sess = Session::builder(&tr.plan, &g).build().unwrap();
    assert!(matches!(
        sess.backward(Tensor::zeros(&[3, 2])),
        Err(ExecError::Protocol(_))
    ));
}

//! The `GNNOPT_REORDER` contract of `Session::new`, isolated in its own
//! test binary: `std::env::set_var` races `getenv` from *any* concurrent
//! thread (glibc UB), and the executor reads the environment on every
//! auto-threaded kernel — so the one test that writes the variable runs
//! alone in its process.

use gnnopt_core::{compile, CompileOptions, ReorderPolicy};
use gnnopt_exec::Session;
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gcn, GcnConfig};

/// Garbage is a loud policy error, a valid strategy overrides a plan
/// that asked for identity, and `0` turns a requested reordering off.
#[test]
fn gnnopt_reorder_env_contract() {
    let spec = gcn(&GcnConfig {
        in_dim: 3,
        layer_dims: vec![2],
    })
    .expect("gcn builds");
    // A path graph: RCM genuinely permutes it.
    let pairs: Vec<(u32, u32)> = (0..9u32).map(|v| (v, v + 1)).collect();
    let graph = Graph::from_edge_list(&EdgeList::from_pairs(10, &pairs));
    let compiled = compile(&spec.ir, false, &CompileOptions::ours()).expect("compiles");
    let saved = std::env::var("GNNOPT_REORDER").ok();

    std::env::set_var("GNNOPT_REORDER", "sideways");
    let garbage = Session::builder(&compiled.plan, &graph).build();

    std::env::set_var("GNNOPT_REORDER", "rcm");
    let on = Session::builder(&compiled.plan, &graph)
        .build()
        .map(|s| s.reorder());

    std::env::set_var("GNNOPT_REORDER", "0");
    let off = Session::builder(&compiled.plan, &graph)
        .build()
        .map(|s| s.reorder());

    match saved {
        Some(v) => std::env::set_var("GNNOPT_REORDER", v),
        None => std::env::remove_var("GNNOPT_REORDER"),
    }

    match garbage {
        Err(gnnopt_exec::ExecError::Policy(msg)) => {
            assert!(msg.contains("GNNOPT_REORDER") && msg.contains("sideways"));
        }
        other => panic!("expected a policy error, got {other:?}"),
    }
    let on = on.expect("rcm session builds");
    assert_eq!(on.0, ReorderPolicy::Rcm);
    assert!(on.1 >= 0.0);
    assert_eq!(
        off.expect("identity session builds"),
        (ReorderPolicy::None, 0.0)
    );
}

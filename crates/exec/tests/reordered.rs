//! Permutation-transparency contract of reordered sessions: for any
//! graph (isolated vertices included), any strategy, any thread count,
//! and either executor path, a session that relabels the graph at build
//! time returns the *same* user-facing results as the identity-ordering
//! reference — vertex/edge-space outputs bit-identical (the stable CSR
//! permutation preserves every per-destination reduction order), and
//! parameter gradients equal up to floating-point reassociation (their
//! cross-row sums run in the relabeled row order).

use gnnopt_core::{compile, CompileOptions, ExecPolicy, ReorderPolicy};
use gnnopt_exec::{Bindings, EnvOverrides, RunStats, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{edgeconv, gat, gcn, EdgeConvConfig, GatConfig, GcnConfig, ModelSpec};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;

/// The full strategy × threads × fused matrix every case runs through.
const STRATEGIES: [ReorderPolicy; 5] = [
    ReorderPolicy::DegreeSort,
    ReorderPolicy::Bfs,
    ReorderPolicy::Rcm,
    ReorderPolicy::Cluster,
    ReorderPolicy::Auto,
];
const THREADS: [usize; 2] = [1, 4];
const FUSED: [bool; 2] = [false, true];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Random multigraphs with guaranteed trailing isolated vertices, so
/// BFS/RCM must cover unreachable vertices and empty reduction groups
/// cross the reordered/reference comparison too.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 1usize..5).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..96)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

/// One training step under an explicit policy, returning
/// `(outputs, param grads, stats)`.
fn step(
    spec: &ModelSpec,
    graph: &Graph,
    vals: &HashMap<String, Tensor>,
    policy: ExecPolicy,
    fused: bool,
) -> (Vec<Tensor>, HashMap<String, Tensor>, RunStats) {
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let mut sess = Session::builder(&compiled.plan, graph)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out, grads, sess.stats())
}

/// Runs the reference (identity order, serial, node-by-node) against the
/// whole strategy × threads × fused matrix.
fn compare_matrix(spec: &ModelSpec, graph: &Graph) {
    let vals = spec.init_values(graph, 29);
    let (ref_out, ref_grads, _) = step(spec, graph, &vals, ExecPolicy::serial(), false);
    for strategy in STRATEGIES {
        for threads in THREADS {
            for fused in FUSED {
                let policy = ExecPolicy {
                    threads,
                    parallel_threshold: 0,
                    ..ExecPolicy::serial()
                }
                .reordered(strategy);
                let (out, grads, stats) = step(spec, graph, &vals, policy, fused);
                let label = format!("{strategy:?}/t{threads}/fused={fused}");

                assert_eq!(ref_out.len(), out.len());
                for (a, b) in ref_out.iter().zip(&out) {
                    assert_eq!(a.shape(), b.shape(), "{label}: output shapes differ");
                    assert_eq!(
                        bits(a),
                        bits(b),
                        "{label}: vertex-space output must be bit-identical \
                         after the session's inverse permutation"
                    );
                }
                assert_eq!(ref_grads.len(), grads.len());
                for (k, g) in &ref_grads {
                    let r = &grads[k];
                    assert_eq!(g.shape(), r.shape(), "{label}: grad '{k}' shape");
                    assert!(
                        g.allclose_with(r, 1e-5, 1e-4),
                        "{label}: grad '{k}' diverged beyond FP reassociation: \
                         max |Δ| = {}",
                        g.max_abs_diff(r)
                    );
                }
                // Auto may legitimately resolve to identity; a concrete
                // strategy must be reported as itself.
                if strategy != ReorderPolicy::Auto {
                    assert_eq!(
                        stats.reorder, strategy,
                        "{label}: stats record the strategy"
                    );
                    assert!(stats.reorder_seconds >= 0.0);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GAT training (softmax + ByDst/BySrc gathers, multi-head).
    #[test]
    fn gat_reordered_matches_reference(g in arb_graph(), heads in 1usize..3) {
        let spec = gat(&GatConfig {
            in_dim: 5,
            layers: vec![(heads, 4), (1, 3)],
            negative_slope: 0.2,
            reorganized: false,
        }).expect("gat builds");
        compare_matrix(&spec, &g);
    }

    /// EdgeConv training (max-gather with argmax tables living in the
    /// relabeled edge numbering).
    #[test]
    fn edgeconv_reordered_matches_reference(g in arb_graph()) {
        let spec = edgeconv(&EdgeConvConfig { in_dim: 4, layer_dims: vec![3] })
            .expect("edgeconv builds");
        compare_matrix(&spec, &g);
    }

    /// GCN training (gSpMM with an edge-space input, exercising the
    /// canonical-edge-id permutation of bindings).
    #[test]
    fn gcn_reordered_matches_reference(g in arb_graph()) {
        let spec = gcn(&GcnConfig { in_dim: 4, layer_dims: vec![4, 2] }).expect("gcn builds");
        compare_matrix(&spec, &g);
    }

    /// Grouped worker binding is a pure scheduling choice: fused
    /// execution with `group_workers` is bit-identical to the reference,
    /// gradients included, for any thread count and tile budget.
    #[test]
    fn grouped_workers_are_bit_identical(
        g in arb_graph(),
        threads in 1usize..6,
        tile_edges in prop_oneof![Just(1usize), Just(8), Just(4096)],
    ) {
        let spec = gat(&GatConfig {
            in_dim: 5,
            layers: vec![(2, 4)],
            negative_slope: 0.2,
            reorganized: false,
        }).expect("gat builds");
        let vals = spec.init_values(&g, 31);
        let (ref_out, ref_grads, _) = step(&spec, &g, &vals, ExecPolicy::serial(), false);
        let policy = ExecPolicy {
            threads,
            parallel_threshold: 0,
            tile_edges,
            ..ExecPolicy::serial()
        }
        .grouped();
        let (out, grads, _) = step(&spec, &g, &vals, policy, true);
        for (a, b) in ref_out.iter().zip(&out) {
            prop_assert_eq!(bits(a), bits(b), "grouped fused output differs");
        }
        for (k, gr) in &ref_grads {
            prop_assert_eq!(bits(gr), bits(&grads[k]), "grouped fused grad '{}' differs", k);
        }
    }
}

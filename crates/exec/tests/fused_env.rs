//! The `GNNOPT_FUSED` contract across the builder's [`EnvOverrides`]
//! modes, isolated in its own test binary: `std::env::set_var` races
//! `getenv` from *any* concurrent thread (glibc UB), and the executor
//! reads the environment on every loud/ignore session build — so the
//! one test that writes the variable runs alone in its process.
//!
//! This pins the historically *divergent* semantics as an explicit
//! choice: `Session::new` (= `EnvOverrides::Loud`) errors on an invalid
//! value, while `Session::with_policy` (lenient, like thread
//! auto-detection) silently falls back to the plan's default — now
//! spelled `EnvOverrides::Ignore`.

use gnnopt_core::{compile, CompileOptions, ExecPolicy};
use gnnopt_exec::{EnvOverrides, ExecError, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gcn, GcnConfig};

#[test]
fn gnnopt_fused_env_contract() {
    let spec = gcn(&GcnConfig {
        in_dim: 3,
        layer_dims: vec![2],
    })
    .expect("gcn builds");
    let pairs: Vec<(u32, u32)> = (0..9u32).map(|v| (v, v + 1)).collect();
    let graph = Graph::from_edge_list(&EdgeList::from_pairs(10, &pairs));
    // The Ours preset keeps fused execution on by default.
    let compiled = compile(&spec.ir, false, &CompileOptions::ours()).expect("compiles");
    let plan = &compiled.plan;
    assert!(plan.exec.fused, "ours preset enables fused execution");
    let saved = std::env::var("GNNOPT_FUSED").ok();

    std::env::set_var("GNNOPT_FUSED", "maybe");
    let loud = Session::builder(plan, &graph).build().map(|s| s.fused());
    // Deliberately exercises the deprecated shim: this test pins its
    // lenient env contract until the shim is removed.
    #[allow(deprecated)]
    let lenient = Session::with_policy(plan, &graph, ExecPolicy::serial()).map(|s| s.fused());
    let ignore = Session::builder(plan, &graph)
        .env(EnvOverrides::Ignore)
        .build()
        .map(|s| s.fused());

    std::env::set_var("GNNOPT_FUSED", "0");
    let loud_off = Session::builder(plan, &graph).build().map(|s| s.fused());
    let ignore_off = Session::builder(plan, &graph)
        .env(EnvOverrides::Ignore)
        .build()
        .map(|s| s.fused());
    let env_off = Session::builder(plan, &graph)
        .env(EnvOverrides::Off)
        .build()
        .map(|s| s.fused());
    let pinned = Session::builder(plan, &graph)
        .fused(true)
        .build()
        .map(|s| s.fused());

    match saved {
        Some(v) => std::env::set_var("GNNOPT_FUSED", v),
        None => std::env::remove_var("GNNOPT_FUSED"),
    }

    match loud {
        Err(ExecError::Policy(msg)) => {
            assert!(msg.contains("GNNOPT_FUSED") && msg.contains("maybe"));
        }
        other => panic!("expected a policy error, got {other:?}"),
    }
    assert!(
        lenient.expect("lenient session builds"),
        "with_policy swallows the invalid override and keeps the plan default"
    );
    assert!(
        ignore.expect("ignore session builds"),
        "EnvOverrides::Ignore skips the invalid value silently"
    );

    assert!(!loud_off.expect("loud session builds"));
    assert!(!ignore_off.expect("ignore session builds"));
    assert!(
        env_off.expect("off session builds"),
        "EnvOverrides::Off consults no override: the policy's choice stands"
    );
    assert!(
        pinned.expect("pinned session builds"),
        "an explicit .fused(..) pin outranks a valid env override"
    );
}

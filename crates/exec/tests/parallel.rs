//! The determinism contract of the thread-parallel backend: for every
//! kernel and every `ExecPolicy`, parallel results are **bit-identical**
//! to the serial reference (not merely `allclose`) — chunk boundaries
//! never change what arithmetic is performed, only who performs it.
//!
//! Random graphs include isolated vertices on purpose, so the empty-group
//! identity rows are covered by the bitwise comparison too.

use gnnopt_core::{
    compile, BinaryFn, CompileOptions, Dim, EdgeGroup, ExecPolicy, ReduceFn, ScatterFn, UnaryFn,
};
use gnnopt_exec::{kernels, Bindings, EnvOverrides, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gat, GatConfig};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

/// Forces the row/vertex partitioning on arbitrarily small kernels.
fn par(threads: usize) -> ExecPolicy {
    ExecPolicy {
        threads,
        parallel_threshold: 0,
        ..ExecPolicy::auto()
    }
}

fn serial() -> ExecPolicy {
    ExecPolicy::serial()
}

/// Bitwise equality — `==` would already distinguish `0.0`/`-0.0` less
/// strictly and conflate NaNs; the backend promises the exact same bits.
fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(name: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{name}: shapes differ");
    assert_eq!(bits(a), bits(b), "{name}: bits differ");
}

/// Random multigraphs with guaranteed trailing isolated vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..96)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        (((i as u64 + seed) * 2654435761 % 103) as f32 - 51.0) / 17.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every parallelized kernel, bit-compared against the serial path
    /// over random graphs, feature widths, head counts, and thread
    /// counts (including more threads than rows).
    #[test]
    fn kernels_are_bit_identical_under_any_thread_count(
        g in arb_graph(),
        seed in 0u64..1000,
        heads in 1usize..4,
        feat in 1usize..5,
        threads in 2usize..7,
    ) {
        let (n, m) = (g.num_vertices(), g.num_edges());
        let total = heads * feat;
        let s = serial();
        let p = par(threads);
        let x = pseudo_tensor(n, total, seed);
        let e = pseudo_tensor(m, total, seed + 1);

        for f in [ScatterFn::CopyU, ScatterFn::CopyV, ScatterFn::Bin(BinaryFn::Sub), ScatterFn::ConcatUV] {
            let dim = if matches!(f, ScatterFn::ConcatUV) {
                Dim::multi(heads, 2 * feat)
            } else {
                Dim::multi(heads, feat)
            };
            let a = kernels::scatter(&s, &g, f, &x, &x, dim);
            let b = kernels::scatter(&p, &g, f, &x, &x, dim);
            assert_bit_identical("scatter", &a, &b);
        }

        for group in [EdgeGroup::ByDst, EdgeGroup::BySrc] {
            for reduce in [ReduceFn::Sum, ReduceFn::Mean, ReduceFn::Max] {
                let (a, am_a) = kernels::gather(&s, &g, reduce, group, &e);
                let (b, am_b) = kernels::gather(&p, &g, reduce, group, &e);
                assert_bit_identical("gather", &a, &b);
                prop_assert_eq!(am_a, am_b, "argmax tables differ");
            }
            let vg = pseudo_tensor(n, total, seed + 2);
            let a = kernels::gather_mean_bwd(&s, &g, group, &vg);
            let b = kernels::gather_mean_bwd(&p, &g, group, &vg);
            assert_bit_identical("gather_mean_bwd", &a, &b);
        }

        let (ys, ms, ds) = kernels::edge_softmax(&s, &g, &e);
        let (yp, mp, dp) = kernels::edge_softmax(&p, &g, &e);
        assert_bit_identical("edge_softmax y", &ys, &yp);
        assert_bit_identical("edge_softmax max", &ms, &mp);
        assert_bit_identical("edge_softmax denom", &ds, &dp);
        assert_bit_identical(
            "edge_softmax_from_aux",
            &kernels::edge_softmax_from_aux(&s, &g, &e, &ms, &ds),
            &kernels::edge_softmax_from_aux(&p, &g, &e, &ms, &ds),
        );
        let eg = pseudo_tensor(m, total, seed + 3);
        assert_bit_identical(
            "edge_softmax_bwd",
            &kernels::edge_softmax_bwd(&s, &g, &eg, &ys),
            &kernels::edge_softmax_bwd(&p, &g, &eg, &ys),
        );

        let b2 = pseudo_tensor(n, heads, seed + 4);
        assert_bit_identical(
            "binary_broadcast (equal feat)",
            &kernels::binary_broadcast(&s, BinaryFn::Add, &x, Dim::multi(heads, feat), &x, Dim::multi(heads, feat)),
            &kernels::binary_broadcast(&p, BinaryFn::Add, &x, Dim::multi(heads, feat), &x, Dim::multi(heads, feat)),
        );
        assert_bit_identical(
            "binary_broadcast (feat-1 broadcast)",
            &kernels::binary_broadcast(&s, BinaryFn::Mul, &x, Dim::multi(heads, feat), &b2, Dim::multi(heads, 1)),
            &kernels::binary_broadcast(&p, BinaryFn::Mul, &x, Dim::multi(heads, feat), &b2, Dim::multi(heads, 1)),
        );

        let f = UnaryFn::LeakyRelu(0.2);
        assert_bit_identical("unary", &kernels::unary(&s, f, &x), &kernels::unary(&p, f, &x));
        let gx = pseudo_tensor(n, total, seed + 5);
        assert_bit_identical(
            "unary_bwd",
            &kernels::unary_bwd(&s, f, &gx, &x),
            &kernels::unary_bwd(&p, f, &gx, &x),
        );

        let a_param = pseudo_tensor(heads, feat, seed + 6);
        assert_bit_identical(
            "head_dot",
            &kernels::head_dot(&s, &x, &a_param, heads, feat),
            &kernels::head_dot(&p, &x, &a_param, heads, feat),
        );
        let gh = pseudo_tensor(n, heads, seed + 7);
        assert_bit_identical(
            "head_dot_bwd_input",
            &kernels::head_dot_bwd_input(&s, &gh, &a_param, heads, feat),
            &kernels::head_dot_bwd_input(&p, &gh, &a_param, heads, feat),
        );

        assert_bit_identical(
            "head_reduce",
            &kernels::head_reduce(&s, &x, heads, feat, true),
            &kernels::head_reduce(&p, &x, heads, feat, true),
        );
        let flat = pseudo_tensor(n, feat, seed + 8);
        assert_bit_identical(
            "head_broadcast",
            &kernels::head_broadcast(&s, &flat, heads),
            &kernels::head_broadcast(&p, &flat, heads),
        );
        assert_bit_identical(
            "feat_sum",
            &kernels::feat_sum(&s, &x, heads, feat),
            &kernels::feat_sum(&p, &x, heads, feat),
        );
        assert_bit_identical(
            "feat_broadcast",
            &kernels::feat_broadcast(&s, &gh, heads, feat),
            &kernels::feat_broadcast(&p, &gh, heads, feat),
        );

        assert_bit_identical(
            "slice_cols",
            &kernels::slice_cols(&s, &x, heads, feat, 0, feat.div_ceil(2)),
            &kernels::slice_cols(&p, &x, heads, feat, 0, feat.div_ceil(2)),
        );
        let sliced = kernels::slice_cols(&s, &x, heads, feat, 0, feat.div_ceil(2));
        assert_bit_identical(
            "embed_cols",
            &kernels::embed_cols(&s, &sliced, heads, feat, 0, feat.div_ceil(2)),
            &kernels::embed_cols(&p, &sliced, heads, feat, 0, feat.div_ceil(2)),
        );

        let mu = pseudo_tensor(heads, feat, seed + 9);
        let sig = pseudo_tensor(heads, feat, seed + 10);
        let ps = pseudo_tensor(m, feat, seed + 11);
        assert_bit_identical(
            "gaussian_weight",
            &kernels::gaussian_weight(&s, &ps, &mu, &sig),
            &kernels::gaussian_weight(&p, &ps, &mu, &sig),
        );
    }
}

/// End-to-end: a full GAT training step under a parallel session matches
/// the serial session bit-for-bit — outputs, every parameter gradient,
/// and the peak-memory accounting (parallelism must not change what the
/// session materializes).
#[test]
fn session_parallel_matches_serial_bitwise_including_peak_memory() {
    let g = Graph::from_edge_list(&EdgeList::from_pairs(
        40,
        &(0..180)
            .map(|i| ((i * 7 % 37) as u32, (i * 13 % 40) as u32))
            .collect::<Vec<_>>(),
    ));
    let spec = gat(&GatConfig {
        in_dim: 6,
        layers: vec![(2, 5), (1, 3)],
        negative_slope: 0.2,
        reorganized: false,
    })
    .expect("gat builds");
    let vals = spec.init_values(&g, 17);
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");

    let run = |policy: ExecPolicy| {
        let mut sess = Session::builder(&compiled.plan, &g)
            .policy(policy)
            .env(EnvOverrides::Ignore)
            .build()
            .expect("session");
        let mut b = Bindings::new();
        for (k, v) in &vals {
            b.insert(k, v.clone());
        }
        let out = sess.forward(&b).expect("forward");
        let grads = sess
            .backward(Tensor::ones(out[0].shape()))
            .expect("backward");
        (out, grads, sess.stats())
    };

    let (out_s, grads_s, stats_s) = run(ExecPolicy::serial());
    for threads in [2, 4, 5] {
        let (out_p, grads_p, stats_p) = run(ExecPolicy {
            threads,
            parallel_threshold: 0,
            ..ExecPolicy::auto()
        });
        assert_eq!(out_s.len(), out_p.len());
        for (a, b) in out_s.iter().zip(&out_p) {
            assert_bit_identical("session output", a, b);
        }
        assert_eq!(grads_s.len(), grads_p.len());
        for (k, gs) in &grads_s {
            assert_bit_identical(&format!("grad '{k}'"), gs, &grads_p[k]);
        }
        assert_eq!(
            stats_s.peak_value_bytes, stats_p.peak_value_bytes,
            "peak-memory accounting must not change under parallelism"
        );
        assert_eq!(
            stats_s.boundary_bytes, stats_p.boundary_bytes,
            "boundary accounting must not change under parallelism"
        );
        assert_eq!(stats_p.threads, threads, "RunStats records the pool size");
    }
    assert_eq!(stats_s.threads, 1);
}

//! Determinism contract of the GEMM engine at the session level: a full
//! GNN training step produces **bit-identical** forward outputs *and*
//! parameter gradients whether the `Linear`-family kernels run on the
//! naive reference loops or the register-tiled blocked engine — blocking
//! changes where operands live, never what arithmetic is performed. The
//! fused tiled interpreter stays bit-identical to the reference path with
//! the blocked engine pinned (the `GNNOPT_GEMM=blocked` rerun of the
//! fused equivalence contract).

use gnnopt_core::{compile, CompileOptions, ExecPolicy, GemmKernel};
use gnnopt_exec::{Bindings, EnvOverrides, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gat, gcn, GatConfig, GcnConfig, ModelSpec};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(name: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{name}: shapes differ");
    assert_eq!(bits(a), bits(b), "{name}: bits differ");
}

/// Random multigraphs with guaranteed trailing isolated vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20, 0usize..3).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..72)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

/// One training step under a pinned policy and fused choice.
fn step(
    spec: &ModelSpec,
    graph: &Graph,
    vals: &HashMap<String, Tensor>,
    policy: ExecPolicy,
    fused: bool,
) -> (Vec<Tensor>, HashMap<String, Tensor>) {
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let mut sess = Session::builder(&compiled.plan, graph)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out, grads)
}

/// Runs a step under both GEMM kernels (same threads, same fused choice)
/// and demands bitwise-equal outputs and gradients.
fn compare_kernels(spec: &ModelSpec, graph: &Graph, threads: usize, fused: bool) {
    let vals = spec.init_values(graph, 31);
    let base = ExecPolicy {
        threads,
        parallel_threshold: 0,
        ..ExecPolicy::serial()
    };
    let naive = step(spec, graph, &vals, base.with_gemm(GemmKernel::Naive), fused);
    let blocked = step(
        spec,
        graph,
        &vals,
        base.with_gemm(GemmKernel::Blocked),
        fused,
    );
    assert_eq!(naive.0.len(), blocked.0.len());
    for (a, b) in naive.0.iter().zip(&blocked.0) {
        assert_bit_identical("output", a, b);
    }
    assert_eq!(naive.1.len(), blocked.1.len());
    for (k, g) in &naive.1 {
        assert_bit_identical(&format!("grad '{k}'"), g, &blocked.1[k]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GAT training (attention softmax, multi-head linear projections,
    /// `matmul_tn` weight grads) over random graphs: bit-identical
    /// naive-vs-blocked for every thread count, on both the reference
    /// and the fused executor.
    #[test]
    fn gat_step_is_bit_identical_across_gemm_kernels(
        g in arb_graph(),
        threads in 1usize..5,
        fused in 0usize..2,
        heads in 1usize..3,
    ) {
        let spec = gat(&GatConfig {
            in_dim: 5,
            layers: vec![(heads, 4), (1, 3)],
            negative_slope: 0.2,
            reorganized: false,
        }).expect("gat builds");
        compare_kernels(&spec, &g, threads, fused == 1);
    }

    /// GCN training (the plainest Linear → gather pipeline, ReLU zeros
    /// feeding the zero-skip decision) over random graphs.
    #[test]
    fn gcn_step_is_bit_identical_across_gemm_kernels(
        g in arb_graph(),
        threads in 1usize..5,
        fused in 0usize..2,
    ) {
        let spec = gcn(&GcnConfig {
            in_dim: 6,
            layer_dims: vec![5, 3],
        }).expect("gcn builds");
        compare_kernels(&spec, &g, threads, fused == 1);
    }

    /// The fused-vs-reference bit-identity contract of PR 3, rerun with
    /// the blocked engine pinned on both sides: the compute-engine swap
    /// must not open any gap between the two execution paths.
    #[test]
    fn fused_matches_reference_under_blocked_gemm(
        g in arb_graph(),
        threads in 1usize..5,
        tile_edges in prop_oneof![Just(1usize), Just(16), Just(4096)],
    ) {
        let spec = gat(&GatConfig {
            in_dim: 4,
            layers: vec![(2, 3)],
            negative_slope: 0.2,
            reorganized: false,
        }).expect("gat builds");
        let vals = spec.init_values(&g, 17);
        let policy = ExecPolicy {
            threads,
            parallel_threshold: 0,
            tile_edges,
            ..ExecPolicy::serial()
        }.with_gemm(GemmKernel::Blocked);
        let reference = step(&spec, &g, &vals, policy, false);
        let fused = step(&spec, &g, &vals, policy, true);
        for (a, b) in reference.0.iter().zip(&fused.0) {
            assert_bit_identical("output", a, b);
        }
        for (k, gr) in &reference.1 {
            assert_bit_identical(&format!("grad '{k}'"), gr, &fused.1[k]);
        }
    }
}

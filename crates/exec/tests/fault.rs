//! Failpoint containment suite: every injected fault in the session
//! runtime surfaces as a **typed error**, never an abort and never
//! silently wrong data.
//!
//! Covered here, site by site:
//!
//! - `refexec` / `fused.launch` / `worker` panics are contained at
//!   kernel dispatch ([`ExecError::KernelPanic`]), poison the session
//!   (subsequent steps refuse with [`ExecError::Poisoned`]), leave the
//!   buffer pool consistent (trim succeeds), and a session rebuilt from
//!   the same plan reproduces the clean run **bit-for-bit**.
//! - injected typed errors ([`ExecError::Injected`]) do *not* poison:
//!   the same session recovers on the next step.
//! - the numeric guard (`ExecPolicy::guard` / `GNNOPT_GUARD=1`)
//!   localizes an injected NaN to `(kernel, node, row, col)`; with the
//!   guard off the same fault sails through (control), and with no
//!   fault installed the guard changes no output bit.
//! - `pool.take` exhaustion degrades to counted heap fallbacks
//!   ([`gnnopt_exec::RunStats::fallback_allocs`]) with identical bits.
//! - sharded halo exchanges reject corrupted staging buffers
//!   ([`ExecError::Exchange`]) via the row-count and checksum checks.
//! - satellite regressions: corrupt CSR graphs are refused at session
//!   build ([`ExecError::Graph`]), backward on an inference plan is a
//!   typed [`ExecError::Protocol`], and a garbage `GNNOPT_FAILPOINTS`
//!   spec is a loud [`ExecError::Policy`] build error.
//!
//! Fault state is process-global, so every test serializes on one
//! mutex and builds its sessions with [`EnvOverrides::Off`].

use gnnopt_core::fault::{self, FaultGuard};
use gnnopt_core::{compile, CompileOptions, ExecPolicy, ExecutionPlan};
use gnnopt_exec::{Bindings, EnvOverrides, ExecError, Session, ShardedSession};
use gnnopt_graph::{generators, Graph};
use gnnopt_models::{gcn, GcnConfig, ModelSpec};
use gnnopt_tensor::Tensor;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the process-global failpoint plan.
static FAULT_TESTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FAULT_TESTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn fixture() -> (Graph, ModelSpec) {
    let g = Graph::from_edge_list(&generators::erdos_renyi(18, 64, 7));
    let spec = gcn(&GcnConfig::two_layer(5, 6, 3)).unwrap();
    (g, spec)
}

fn bindings(spec: &ModelSpec, g: &Graph) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in spec.init_values(g, 11) {
        b.insert(&k, v.clone());
    }
    b
}

fn session<'a>(
    plan: &'a ExecutionPlan,
    g: &'a Graph,
    policy: ExecPolicy,
    fused: bool,
) -> Session<'a> {
    Session::builder(plan, g)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session builds")
}

/// One clean forward+backward: `(output bits, sorted grad bits)`.
type RunBits = (Vec<Vec<u32>>, Vec<(String, Vec<u32>)>);

fn run_bits(sess: &mut Session<'_>, b: &Bindings) -> RunBits {
    let out = sess.forward(b).expect("clean forward");
    let seed = Tensor::ones(out[0].shape());
    let grads = sess.backward(seed).expect("clean backward");
    bits_of(&out, &grads)
}

fn bits_of(out: &[Tensor], grads: &HashMap<String, Tensor>) -> RunBits {
    let o = out
        .iter()
        .map(|t| t.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect();
    let mut g: Vec<(String, Vec<u32>)> = grads
        .iter()
        .map(|(k, t)| {
            (
                k.clone(),
                t.as_slice().iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect();
    g.sort_by(|a, b| a.0.cmp(&b.0));
    (o, g)
}

#[test]
fn refexec_panic_is_contained_poisons_and_rebuild_matches() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);
    let baseline = run_bits(
        &mut session(&compiled.plan, &g, ExecPolicy::serial(), false),
        &b,
    );

    let _guard = FaultGuard::install("refexec:panic@2").unwrap();
    let mut sess = session(&compiled.plan, &g, ExecPolicy::serial(), false);
    let err = sess.forward(&b).expect_err("injected panic must surface");
    match &err {
        ExecError::KernelPanic { kernel, payload } => {
            assert_eq!(payload, &fault::injected_panic_message("refexec"));
            assert!(!kernel.is_empty(), "panic must name the kernel");
        }
        other => panic!("expected KernelPanic, got {other}"),
    }
    assert!(sess.poisoned(), "a contained panic must poison the session");
    assert!(
        matches!(sess.forward(&b), Err(ExecError::Poisoned(_))),
        "a poisoned session must refuse further steps"
    );
    // The pool survived the unwind in a consistent state.
    sess.pool().trim();
    assert_eq!(sess.pool().resident_bytes(), 0, "trim must drain the pool");
    drop(sess);
    drop(_guard);

    let rebuilt = run_bits(
        &mut session(&compiled.plan, &g, ExecPolicy::serial(), false),
        &b,
    );
    assert_eq!(rebuilt, baseline, "rebuilt session must be bit-identical");
}

#[test]
fn fused_launch_panic_is_contained() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);

    let _guard = FaultGuard::install("fused.launch:panic@1").unwrap();
    let mut sess = session(&compiled.plan, &g, ExecPolicy::serial(), true);
    let err = sess.forward(&b).expect_err("fused launch panic surfaces");
    match &err {
        ExecError::KernelPanic { payload, .. } => {
            assert_eq!(payload, &fault::injected_panic_message("fused.launch"));
        }
        other => panic!("expected KernelPanic, got {other}"),
    }
    assert!(sess.poisoned());
    assert!(matches!(
        sess.backward(Tensor::ones(&[g.num_vertices(), 3])),
        Err(ExecError::Poisoned(_))
    ));
}

#[test]
fn worker_panic_is_contained() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);

    // Force real worker spawns: two threads, no serial-work threshold.
    let policy = ExecPolicy {
        threads: 2,
        parallel_threshold: 0,
        ..ExecPolicy::serial()
    };
    let _guard = FaultGuard::install("worker:panic@1").unwrap();
    let mut sess = session(&compiled.plan, &g, policy, false);
    let err = sess.forward(&b).expect_err("worker panic surfaces");
    match &err {
        ExecError::KernelPanic { payload, .. } => {
            assert_eq!(payload, &fault::injected_panic_message("worker"));
        }
        other => panic!("expected KernelPanic, got {other}"),
    }
    assert!(sess.poisoned());
}

#[test]
fn injected_error_is_typed_and_does_not_poison() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);
    let baseline = run_bits(
        &mut session(&compiled.plan, &g, ExecPolicy::serial(), false),
        &b,
    );

    let guard = FaultGuard::install("refexec:error@1").unwrap();
    let mut sess = session(&compiled.plan, &g, ExecPolicy::serial(), false);
    assert!(matches!(
        sess.forward(&b),
        Err(ExecError::Injected { ref site }) if site == "refexec"
    ));
    assert!(!sess.poisoned(), "typed injected errors must not poison");
    drop(guard);

    // The *same* session recovers once the plan is cleared.
    assert_eq!(run_bits(&mut sess, &b), baseline);
}

#[test]
fn guard_localizes_injected_nan_and_is_bit_transparent() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);
    let guarded = ExecPolicy::serial().with_guard(true);
    let baseline = run_bits(
        &mut session(&compiled.plan, &g, ExecPolicy::serial(), false),
        &b,
    );

    // No fault installed: the guard is bit-transparent.
    assert_eq!(
        run_bits(&mut session(&compiled.plan, &g, guarded, false), &b),
        baseline,
        "guard on must not change a single output bit"
    );

    // Guard on: the injected NaN is localized to its first element.
    {
        let _guard = FaultGuard::install("refexec:nan@1").unwrap();
        let mut sess = session(&compiled.plan, &g, guarded, false);
        match sess.forward(&b).expect_err("guard must reject the NaN") {
            ExecError::NonFinite {
                kernel,
                node,
                row,
                col,
            } => {
                assert!(!kernel.is_empty() && !node.is_empty());
                assert_eq!((row, col), (0, 0), "fault stamps the first element");
            }
            other => panic!("expected NonFinite, got {other}"),
        }
        assert!(!sess.poisoned(), "guard rejections must not poison");
    }

    // Control: guard off, the same fault sails through as data.
    {
        let _guard = FaultGuard::install("refexec:nan@1").unwrap();
        let mut sess = session(&compiled.plan, &g, ExecPolicy::serial(), false);
        sess.forward(&b)
            .expect("without the guard the NaN is ordinary data");
    }
}

#[test]
fn pool_exhaustion_degrades_to_counted_heap_fallbacks() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);

    let mut clean = Session::builder(&compiled.plan, &g)
        .arena(true)
        .env(EnvOverrides::Off)
        .build()
        .unwrap();
    let baseline = run_bits(&mut clean, &b);
    let clean_fallbacks = clean.stats().fallback_allocs;

    let _guard = FaultGuard::install("pool.take:exhaust").unwrap();
    let mut sess = Session::builder(&compiled.plan, &g)
        .arena(true)
        .env(EnvOverrides::Off)
        .build()
        .unwrap();
    let got = run_bits(&mut sess, &b);
    assert_eq!(got, baseline, "degraded allocation must not change bits");
    let stats = sess.stats();
    assert!(
        stats.fallback_allocs > clean_fallbacks,
        "every pool take must degrade to a counted heap miss: {} vs clean {}",
        stats.fallback_allocs,
        clean_fallbacks
    );
}

#[test]
fn exchange_guards_reject_corruption_nan_and_injected_errors() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);

    let sharded = |fused: bool| {
        ShardedSession::builder(&compiled.plan, &g)
            .shards(2)
            .policy(ExecPolicy::serial())
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
            .expect("sharded session builds")
    };

    // The fixture must actually exercise halo exchanges.
    let mut clean = sharded(false);
    clean.forward(&b).unwrap();
    assert!(
        clean.stats().halo_exchanges > 0,
        "fixture graph must have cut edges"
    );

    for (spec_str, check) in [
        (
            "exchange:corrupt@1",
            (&|e: &ExecError| matches!(e, ExecError::Exchange(_))) as &dyn Fn(&ExecError) -> bool,
        ),
        // The NaN stamp lands after staging, so the checksum re-check
        // catches it as corruption.
        ("exchange:nan@1", &|e| matches!(e, ExecError::Exchange(_))),
        (
            "exchange:error@1",
            &|e| matches!(e, ExecError::Injected { site } if site == "exchange"),
        ),
    ] {
        let _guard = FaultGuard::install(spec_str).unwrap();
        let err = sharded(false)
            .forward(&b)
            .expect_err("corrupted exchange must be rejected");
        assert!(check(&err), "spec '{spec_str}' produced {err}");
    }
}

#[test]
fn sharded_panic_is_contained_and_poisons_the_driver() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);

    let _guard = FaultGuard::install("refexec:panic@1").unwrap();
    let mut sess = ShardedSession::builder(&compiled.plan, &g)
        .shards(2)
        .policy(ExecPolicy::serial())
        .env(EnvOverrides::Off)
        .build()
        .unwrap();
    assert!(matches!(
        sess.forward(&b),
        Err(ExecError::KernelPanic { .. })
    ));
    assert!(sess.poisoned());
    assert!(matches!(sess.forward(&b), Err(ExecError::Poisoned(_))));
}

#[test]
fn corrupt_csr_graphs_are_refused_at_session_build() {
    let _l = lock();
    fault::clear();
    let (_, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();

    // One edge 0→1, but the in-CSR cites neighbor 5 of a 2-vertex graph.
    let bad = Graph::from_raw_parts_unchecked(
        2,
        vec![0, 0, 1],
        vec![5],
        vec![0],
        vec![0, 1, 1],
        vec![1],
        vec![0],
        vec![0],
        vec![1],
    );
    assert!(matches!(
        Session::builder(&compiled.plan, &bad)
            .env(EnvOverrides::Off)
            .build(),
        Err(ExecError::Graph(_))
    ));
    assert!(matches!(
        ShardedSession::builder(&compiled.plan, &bad)
            .shards(2)
            .env(EnvOverrides::Off)
            .build(),
        Err(ExecError::Graph(_))
    ));
}

#[test]
fn backward_protocol_violations_are_typed_errors() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let b = bindings(&spec, &g);

    // Backward on an inference plan.
    let inference = compile(&spec.ir, false, &CompileOptions::ours()).unwrap();
    let mut sess = session(&inference.plan, &g, ExecPolicy::serial(), false);
    sess.forward(&b).unwrap();
    assert!(matches!(
        sess.backward(Tensor::ones(&[g.num_vertices(), 3])),
        Err(ExecError::Protocol(_))
    ));

    // Backward before forward on a training plan.
    let training = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let mut sess = session(&training.plan, &g, ExecPolicy::serial(), false);
    assert!(matches!(
        sess.backward(Tensor::ones(&[g.num_vertices(), 3])),
        Err(ExecError::Protocol(_))
    ));
}

#[test]
fn garbage_failpoint_env_is_a_loud_build_error() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();

    let saved = std::env::var(fault::FAILPOINTS_ENV_VAR).ok();
    std::env::set_var(fault::FAILPOINTS_ENV_VAR, "refexec:explode");
    let got = Session::builder(&compiled.plan, &g).build();
    match saved {
        Some(v) => std::env::set_var(fault::FAILPOINTS_ENV_VAR, v),
        None => std::env::remove_var(fault::FAILPOINTS_ENV_VAR),
    }
    fault::clear();
    assert!(
        matches!(got, Err(ExecError::Policy(_))),
        "a bad GNNOPT_FAILPOINTS spec must fail the build loudly"
    );
}

/// CI chaos-leg hook: when the ambient `GNNOPT_FAILPOINTS` is set (the
/// chaos workflow leg pins a plan), honor it against a guarded session
/// and require containment — the step either errors or reproduces the
/// clean bits exactly. A no-op when the variable is unset.
#[test]
fn ambient_failpoint_plan_is_contained() {
    let _l = lock();
    fault::clear();
    let (g, spec) = fixture();
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let b = bindings(&spec, &g);
    let guarded = ExecPolicy::serial().with_guard(true);
    let baseline = run_bits(&mut session(&compiled.plan, &g, guarded, false), &b);

    if !fault::install_from_env().expect("ambient GNNOPT_FAILPOINTS must parse") {
        return;
    }
    for fused in [false, true] {
        let mut sess = session(&compiled.plan, &g, guarded, fused);
        let out = sess.forward(&b);
        let res = out.and_then(|o| {
            let seed = Tensor::ones(o[0].shape());
            sess.backward(seed).map(|gr| bits_of(&o, &gr))
        });
        match res {
            Ok(bits) => assert_eq!(
                bits, baseline,
                "ambient plan let wrong bits through (fused={fused})"
            ),
            Err(e) => {
                // Any typed error is acceptable containment.
                let _ = e.to_string();
            }
        }
    }
    fault::clear();
}

//! Arena ↔ heap equivalence properties: serving the value store from
//! the planner-seeded buffer pool must be a pure allocation-policy
//! change. Outputs and gradients are **bit-identical** to the plain
//! heap path across the model zoo, thread counts, and both executor
//! paths, on adversarial topologies (isolated vertices, extreme hubs),
//! and the measured live-set peak never exceeds what the planner
//! promised at build.

use gnnopt_core::{compile, CompileOptions, ExecPolicy};
use gnnopt_exec::{Bindings, EnvOverrides, Session};
use gnnopt_graph::{generators, EdgeList, Graph};
use gnnopt_models::{
    edgeconv, gat, gcn, sage, EdgeConvConfig, GatConfig, GcnConfig, ModelSpec, SageConfig,
};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

fn zoo() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "gat",
            gat(&GatConfig {
                in_dim: 6,
                layers: vec![(2, 4)],
                negative_slope: 0.2,
                reorganized: false,
            })
            .unwrap(),
        ),
        ("gcn", gcn(&GcnConfig::two_layer(6, 8, 3)).unwrap()),
        ("sage", sage(&SageConfig::mean(6, vec![5])).unwrap()),
        (
            "sage-pool",
            sage(&SageConfig::max_pool(6, vec![5])).unwrap(),
        ),
        (
            "edgeconv",
            edgeconv(&EdgeConvConfig {
                in_dim: 6,
                layer_dims: vec![4],
            })
            .unwrap(),
        ),
    ]
}

/// Random multigraphs with `iso` guaranteed-isolated trailing vertices
/// (empty reduce groups) and an extreme hub: vertex 0 additionally
/// sources and sinks up to `hub` edges, so one liveness interval's
/// buffer dwarfs its neighbours and first-fit reuse is stressed.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..16, 0usize..4, 0usize..48).prop_flat_map(|(n, iso, hub)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..48).prop_map(move |mut pairs| {
            for k in 0..hub {
                let other = (k % n) as u32;
                if k % 2 == 0 {
                    pairs.push((0, other));
                } else {
                    pairs.push((other, 0));
                }
            }
            Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs))
        })
    })
}

fn bindings(spec: &ModelSpec, g: &Graph, seed: u64) -> Bindings {
    let mut b = Bindings::new();
    for (k, v) in spec.init_values(g, seed) {
        b.insert(&k, v.clone());
    }
    b
}

/// Runs one forward+backward in a fresh session and returns
/// `(outputs, grads, measured peak, planned peak)`.
#[allow(clippy::type_complexity)]
fn run(
    spec: &ModelSpec,
    g: &Graph,
    b: &Bindings,
    threads: usize,
    fused: bool,
    arena: bool,
) -> (Vec<Tensor>, Vec<(String, Tensor)>, u64, u64) {
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
    let policy = if threads == 1 {
        ExecPolicy::serial()
    } else {
        ExecPolicy::with_threads(threads)
    };
    let mut sess = Session::builder(&compiled.plan, g)
        .policy(policy)
        .fused(fused)
        .arena(arena)
        .env(EnvOverrides::Off)
        .build()
        .unwrap();
    assert_eq!(sess.arena(), arena, "builder pin must stick");
    let out = sess.forward(b).unwrap();
    let seed = Tensor::ones(out[0].shape());
    let mut grads: Vec<(String, Tensor)> = sess.backward(seed).unwrap().into_iter().collect();
    grads.sort_by(|a, b| a.0.cmp(&b.0));
    let stats = sess.stats();
    (out, grads, stats.peak_value_bytes, stats.planned_peak_bytes)
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena on vs off: same bits out, for every model × thread count ×
    /// executor path, on hub/isolated-vertex topologies.
    #[test]
    fn arena_is_bit_identical_to_heap(
        g in arb_graph(),
        model in 0usize..5,
        seed in 0u64..50,
    ) {
        let (name, spec) = zoo().swap_remove(model);
        let b = bindings(&spec, &g, seed);
        for threads in [1usize, 4] {
            for fused in [false, true] {
                let (out_a, gr_a, peak_a, planned) =
                    run(&spec, &g, &b, threads, fused, true);
                let (out_h, gr_h, peak_h, _) =
                    run(&spec, &g, &b, threads, fused, false);
                prop_assert_eq!(out_a.len(), out_h.len());
                for (i, (a, h)) in out_a.iter().zip(&out_h).enumerate() {
                    prop_assert!(
                        bits_equal(a, h),
                        "{}: output {} diverges (threads={}, fused={})",
                        name, i, threads, fused
                    );
                }
                prop_assert_eq!(gr_a.len(), gr_h.len());
                for ((ka, a), (kh, h)) in gr_a.iter().zip(&gr_h) {
                    prop_assert_eq!(ka, kh);
                    prop_assert!(
                        bits_equal(a, h),
                        "{}: grad '{}' diverges (threads={}, fused={})",
                        name, ka, threads, fused
                    );
                }
                // The arena evicts at node granularity (and reuses
                // buffers in place), so its measured peak may only ever
                // *improve* on the heap path's kernel-granular figure —
                // and must stay within the planner's promise.
                prop_assert!(
                    peak_a <= peak_h,
                    "{}: arena peak {} worse than heap peak {}",
                    name, peak_a, peak_h
                );
                prop_assert!(
                    peak_a <= planned,
                    "{}: measured peak {} exceeds planned {} (threads={}, fused={})",
                    name, peak_a, planned, threads, fused
                );
            }
        }
    }
}

/// Deterministic peak check on a denser fixed graph: the planner's
/// `planned_peak_bytes` is an upper bound on the executor's measured
/// `peak_value_bytes`, on both executor paths, warm and cold.
#[test]
fn measured_peak_never_exceeds_planned() {
    let g = Graph::from_edge_list(&generators::erdos_renyi(128, 1280, 9));
    for (name, spec) in zoo() {
        let compiled = compile(&spec.ir, true, &CompileOptions::ours()).unwrap();
        let b = bindings(&spec, &g, 13);
        for fused in [false, true] {
            let mut sess = Session::builder(&compiled.plan, &g)
                .policy(ExecPolicy::serial())
                .fused(fused)
                .arena(true)
                .env(EnvOverrides::Off)
                .build()
                .unwrap();
            let out = sess.forward(&b).unwrap();
            let seed = Tensor::ones(out[0].shape());
            for _ in 0..3 {
                sess.step(&b, &seed).unwrap();
                let stats = sess.stats();
                assert!(stats.arena);
                assert!(
                    stats.peak_value_bytes <= stats.planned_peak_bytes,
                    "{name}: measured {} > planned {} (fused={fused})",
                    stats.peak_value_bytes,
                    stats.planned_peak_bytes,
                );
            }
        }
    }
}

//! The `GNNOPT_GEMM` contract of `Session::new`, isolated in its own
//! test binary: `std::env::set_var` races `getenv` from *any* concurrent
//! thread (glibc UB), and the executor reads the environment on every
//! auto-threaded kernel — so the one test that writes the variable runs
//! alone in its process.

use gnnopt_core::{compile, CompileOptions, GemmKernel};
use gnnopt_exec::Session;
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{gcn, GcnConfig};

/// Garbage is a loud policy error; `naive` overrides a plan that carries
/// the blocked default; `blocked` spells the default explicitly.
#[test]
fn gnnopt_gemm_env_contract() {
    let spec = gcn(&GcnConfig {
        in_dim: 3,
        layer_dims: vec![2],
    })
    .expect("gcn builds");
    let pairs: Vec<(u32, u32)> = (0..9u32).map(|v| (v, v + 1)).collect();
    let graph = Graph::from_edge_list(&EdgeList::from_pairs(10, &pairs));
    let compiled = compile(&spec.ir, false, &CompileOptions::ours()).expect("compiles");
    let saved = std::env::var("GNNOPT_GEMM").ok();

    std::env::set_var("GNNOPT_GEMM", "turbo");
    let garbage = Session::builder(&compiled.plan, &graph).build();

    std::env::set_var("GNNOPT_GEMM", "naive");
    let naive = Session::builder(&compiled.plan, &graph)
        .build()
        .map(|s| s.policy().gemm);

    std::env::set_var("GNNOPT_GEMM", "blocked");
    let blocked = Session::builder(&compiled.plan, &graph)
        .build()
        .map(|s| s.policy().gemm);

    match saved {
        Some(v) => std::env::set_var("GNNOPT_GEMM", v),
        None => std::env::remove_var("GNNOPT_GEMM"),
    }

    match garbage {
        Err(gnnopt_exec::ExecError::Policy(msg)) => {
            assert!(msg.contains("GNNOPT_GEMM") && msg.contains("turbo"));
        }
        other => panic!("expected a policy error, got {other:?}"),
    }
    assert_eq!(naive.expect("naive session builds"), GemmKernel::Naive);
    assert_eq!(
        blocked.expect("blocked session builds"),
        GemmKernel::Blocked
    );
}

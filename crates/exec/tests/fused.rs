//! Determinism contract of the fused tiled interpreter: for any graph
//! (isolated vertices included), any tile budget, and any thread count,
//! fused execution of ByDst kernels is **bit-identical** to the reference
//! node-by-node path — tiling changes where intermediates live, never
//! what arithmetic is performed — while the measured peak of the value
//! store can only shrink.

use gnnopt_core::{compile, CompileOptions, ExecPolicy};
use gnnopt_exec::{Bindings, EnvOverrides, Session};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_models::{edgeconv, gat, gcn, EdgeConvConfig, GatConfig, GcnConfig, ModelSpec};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(name: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{name}: shapes differ");
    assert_eq!(bits(a), bits(b), "{name}: bits differ");
}

/// Random multigraphs with guaranteed trailing isolated vertices, so
/// empty reduction groups cross the fused/reference comparison too.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0usize..4).prop_flat_map(|(n, iso)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..96)
            .prop_map(move |pairs| Graph::from_edge_list(&EdgeList::from_pairs(n + iso, &pairs)))
    })
}

/// One training step, returning `(output, grads, stats)`.
fn step(
    spec: &ModelSpec,
    graph: &Graph,
    vals: &HashMap<String, Tensor>,
    policy: ExecPolicy,
    fused: bool,
) -> (Vec<Tensor>, HashMap<String, Tensor>, gnnopt_exec::RunStats) {
    let compiled = compile(&spec.ir, true, &CompileOptions::ours()).expect("compiles");
    let mut sess = Session::builder(&compiled.plan, graph)
        .policy(policy)
        .fused(fused)
        .env(EnvOverrides::Off)
        .build()
        .expect("session");
    let mut b = Bindings::new();
    for (k, v) in vals {
        b.insert(k, v.clone());
    }
    let out = sess.forward(&b).expect("forward");
    let grads = sess
        .backward(Tensor::ones(out[0].shape()))
        .expect("backward");
    (out, grads, sess.stats())
}

fn compare_fused_vs_reference(spec: &ModelSpec, graph: &Graph, threads: usize, tile_edges: usize) {
    let vals = spec.init_values(graph, 23);
    let reference = step(spec, graph, &vals, ExecPolicy::serial(), false);
    let policy = ExecPolicy {
        threads,
        parallel_threshold: 0,
        tile_edges,
        ..ExecPolicy::serial()
    };
    let fused = step(spec, graph, &vals, policy, true);
    assert_eq!(reference.0.len(), fused.0.len());
    for (a, b) in reference.0.iter().zip(&fused.0) {
        assert_bit_identical("output", a, b);
    }
    assert_eq!(reference.1.len(), fused.1.len());
    for (k, g) in &reference.1 {
        assert_bit_identical(&format!("grad '{k}'"), g, &fused.1[k]);
    }
    assert!(
        fused.2.peak_value_bytes <= reference.2.peak_value_bytes,
        "fused peak {} exceeds reference peak {}",
        fused.2.peak_value_bytes,
        reference.2.peak_value_bytes
    );
    assert_eq!(
        reference.2.boundary_bytes, fused.2.boundary_bytes,
        "the forward→backward boundary is identical by construction"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GAT training (softmax + ByDst/BySrc gathers, multi-head) over
    /// random graphs with isolated vertices: bit-identical fused vs
    /// reference for every thread count and tile budget, including
    /// single-edge tiles.
    #[test]
    fn gat_step_fused_is_bit_identical(
        g in arb_graph(),
        threads in 1usize..6,
        tile_edges in prop_oneof![Just(1usize), Just(3), Just(16), Just(4096)],
        heads in 1usize..3,
    ) {
        let spec = gat(&GatConfig {
            in_dim: 5,
            layers: vec![(heads, 4), (1, 3)],
            negative_slope: 0.2,
            reorganized: false,
        }).expect("gat builds");
        compare_fused_vs_reference(&spec, &g, threads, tile_edges);
    }

    /// EdgeConv training (max-gather: its backward kernel must fall back
    /// because of the scattered-write `gather_max_bwd`) stays correct and
    /// bit-identical under the mixed fused/fallback schedule.
    #[test]
    fn edgeconv_step_fused_is_bit_identical(
        g in arb_graph(),
        threads in 1usize..5,
        tile_edges in prop_oneof![Just(2usize), Just(64)],
    ) {
        let spec = edgeconv(&EdgeConvConfig { in_dim: 4, layer_dims: vec![3] })
            .expect("edgeconv builds");
        compare_fused_vs_reference(&spec, &g, threads, tile_edges);
    }

    /// GCN training (gSpMM pattern with edge weights).
    #[test]
    fn gcn_step_fused_is_bit_identical(
        g in arb_graph(),
        threads in 1usize..5,
        tile_edges in prop_oneof![Just(1usize), Just(32)],
    ) {
        let spec = gcn(&GcnConfig { in_dim: 4, layer_dims: vec![4, 2] }).expect("gcn builds");
        compare_fused_vs_reference(&spec, &g, threads, tile_edges);
    }
}

/// `GNNOPT_FUSED` must reject garbage loudly in `Session::new` (the same
/// contract as `GNNOPT_THREADS`). Uses a throwaway process-global env var
/// write, restored immediately — the suite's other tests never read it
/// mid-flight because this test is the only one touching it.
#[test]
fn invalid_gnnopt_fused_is_a_policy_error() {
    let spec = gcn(&GcnConfig {
        in_dim: 2,
        layer_dims: vec![2],
    })
    .expect("gcn builds");
    let graph = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (1, 2)]));
    let compiled = compile(&spec.ir, false, &CompileOptions::ours()).expect("compiles");
    let saved = std::env::var("GNNOPT_FUSED").ok();
    std::env::set_var("GNNOPT_FUSED", "banana");
    let res = Session::builder(&compiled.plan, &graph).build();
    match saved {
        Some(v) => std::env::set_var("GNNOPT_FUSED", v),
        None => std::env::remove_var("GNNOPT_FUSED"),
    }
    assert!(
        matches!(res, Err(gnnopt_exec::ExecError::Policy(_))),
        "expected a policy error, got {res:?}"
    );
}

//! Single-process edge-cut sharded execution with halo exchange.
//!
//! A [`ShardedSession`] splits the CSR graph into `k` vertex shards (a
//! [`gnnopt_graph::Partition`]), builds one fully planned [`Session`]
//! per shard over that shard's *local subgraph* — its own memory plan,
//! its own arena, its own buffer pool — and drives the plan's kernels
//! across the shards with explicit **halo exchanges** in between, the
//! execution structure of distributed GNN systems reproduced inside one
//! process. Results are **bit-identical** to the unsharded session for
//! any shard count: outputs, and, for training plans, every parameter
//! gradient (enforced by the shard-equivalence property suite).
//!
//! # Local subgraphs and validity
//!
//! Shard `s` keeps every edge whose *destination* it owns, plus — when
//! the IR contains a source-grouped reduction — every edge whose
//! *source* it owns (replicated cut edges). Local vertex ids enumerate
//! the shard's owned vertices plus all endpoints of kept edges in
//! ascending global order; the relabeling is monotone, so the local
//! CSR's canonical `(dst, src)` edge order is the global order
//! restricted to the kept edges and every per-destination reduction
//! runs in exactly the unsharded accumulation order — that is where
//! bit-identity comes from.
//!
//! A shard's copy of a value is only *authoritative* on some rows: a
//! vertex value on its owned rows (always), a `ByDst`-anchored edge
//! value (an edge softmax, say) on rows whose destination it owns. The
//! build-time classifier tracks these validity bits per value through
//! the IR's [`gnnopt_core::view`]s — endpoint reads need valid halo
//! rows, group-anchored consumers need group-complete operand rows —
//! and plans the minimal exchange before each kernel. There is no
//! per-op logic: any op the IR can express classifies by its views.
//!
//! # Kernel classification
//!
//! Every kernel of the plan is classified once at build time:
//!
//! * **Sharded** — runs whole (fused or reference path) on every shard
//!   after zero or more pre-exchanges. The common case: a GCN layer
//!   costs one vertex-halo exchange and then runs entirely locally.
//! * **Split** — a kernel mixing incompatibly-anchored group ops (e.g.
//!   GAT's backward, where a `ByDst` softmax gradient feeds a `BySrc`
//!   reduction) runs node-by-node in lockstep across shards, with
//!   replica-row patches mid-kernel.
//! * **Global** — parameter-gradient reductions (`Xᵀ·G` and friends)
//!   reduce over *all* rows; re-associating them per shard would break
//!   bit-identity, so the driver gathers the operands' authoritative
//!   rows, executes the kernel once on the full graph, and scatters the
//!   results back.
//!
//! Every exchange is recorded ([`ExchangeRecord`]) and aggregated into
//! [`RunStats`]: `comm_bytes`, `halo_vertices`, `cut_edges`,
//! `halo_exchanges` — the per-layer communication profile the sharding
//! bench reports.
//!
//! # Choosing the shard count
//!
//! [`ShardedSession::builder`] resolves the shard count by precedence:
//! an explicit [`ShardedSessionBuilder::shards`] pin, then a valid
//! `GNNOPT_SHARDS` environment override (per the builder's
//! [`EnvOverrides`] mode), then `1`. A count of `1` builds a plain
//! [`Session`] — no partitioning, no maps, no overhead.

use crate::session::{
    arena_env, fused_env, gemm_env, guard_env, reorder_env, scan_nonfinite, Bindings, EnvOverrides,
    RunStats, Session,
};
use crate::{contain, refexec, ExecError, Result};
use gnnopt_core::fault;
use gnnopt_core::memplan::{self, Liveness};
use gnnopt_core::view::{self, View};
use gnnopt_core::{
    EdgeGroup, ExecPolicy, ExecutionPlan, IrGraph, NodeId, OpKind, Phase, ReorderPolicy, Space,
};
use gnnopt_graph::{EdgeList, Graph, Partition};
use gnnopt_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Parses the `GNNOPT_SHARDS` override: `Ok(None)` when unset,
/// `Ok(Some(k))` on a positive integer, `Err` on anything else.
pub(crate) fn shards_env() -> std::result::Result<Option<usize>, String> {
    match std::env::var("GNNOPT_SHARDS") {
        Err(_) => Ok(None),
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(k) if k >= 1 => Ok(Some(k)),
            _ => Err(format!(
                "GNNOPT_SHARDS must be a positive integer, got '{s}'"
            )),
        },
    }
}

/// What a recorded inter-shard exchange moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Vertex rows a shard reads through an edge endpoint but does not
    /// own, pulled from their owner shards.
    VertexHalo,
    /// Replicated cut-edge rows patched from the shard owning the
    /// anchoring endpoint.
    EdgeReplica,
    /// Authoritative rows gathered into a full tensor for a global
    /// (parameter-reduction) kernel.
    GlobalGather,
    /// A global kernel's results scattered back into the shard stores.
    GlobalScatter,
}

/// One inter-shard data movement performed during a step.
#[derive(Debug, Clone)]
pub struct ExchangeRecord {
    /// Kernel the exchange ran for.
    pub kernel: usize,
    /// Whether that kernel is a backward kernel.
    pub backward: bool,
    /// Name of the IR value moved.
    pub value: String,
    /// Rows moved (across all shards).
    pub rows: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// What kind of movement this was.
    pub kind: ExchangeKind,
}

/// Per-shard size figures for inspection tools and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Vertices of the local subgraph (owned + halo).
    pub num_vertices: usize,
    /// Edges of the local subgraph (dst-owned + replicated).
    pub num_edges: usize,
    /// Vertices this shard owns.
    pub owned_vertices: usize,
    /// Halo rows: local vertices owned elsewhere that exchanges fill.
    pub halo_rows: usize,
    /// Arena bytes the shard's own memory plan laid out.
    pub arena_bytes: u64,
}

/// How the builder partitions the graph into vertex shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Greedy BFS edge-cut grower ([`Partition::edge_cut_bfs`]) — the
    /// default: frontier growth keeps neighborhoods together.
    #[default]
    Bfs,
    /// Contiguous id-order slices ([`Partition::contiguous`]).
    Contiguous,
    /// Load-balanced slices of an RCM locality ordering — the seam to
    /// the `gnnopt-reorder` machinery ([`Partition::from_order`]).
    Locality,
}

impl ShardStrategy {
    fn partition(self, g: &Graph, k: usize) -> Partition {
        match self {
            ShardStrategy::Bfs => Partition::edge_cut_bfs(g, k),
            ShardStrategy::Contiguous => Partition::contiguous(g, k),
            ShardStrategy::Locality => {
                let el = g.edge_list();
                let perm = gnnopt_reorder::strategies::rcm(&el);
                // `order[i]` = the vertex RCM places at position `i`.
                let order = perm.inverse().as_new_of_old().to_vec();
                Partition::from_order(g, &order, k)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Build-time classification: validity bits simulated through the views.
// ---------------------------------------------------------------------

/// Which rows of a shard's copy of a value are authoritative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bits {
    /// Owned rows are always valid; `halo` says the non-owned endpoint
    /// rows currently hold their owners' values too.
    Vertex { halo: bool },
    /// `dst`: rows whose destination the shard owns are valid; `src`:
    /// rows whose source it owns are valid. Production and the forced
    /// exchange below keep at least one bit set.
    Edge { dst: bool, src: bool },
    /// Parameter values are replicated whole — always valid.
    Param,
}

/// A validity requirement one input read places on a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Need {
    /// Vertex value: halo rows must hold owner values (endpoint read).
    Halo,
    /// Edge value: rows anchored at this endpoint group must be valid
    /// (group-complete consumer).
    Anchor(EdgeGroup),
}

/// Which replica rows an edge patch fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatchSide {
    /// Fill dst-owned cut rows from their source owners.
    Dst,
    /// Fill src-owned cut rows from their destination owners.
    Src,
}

/// A planned inter-shard exchange of one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExOp {
    /// Fill the union halo rows of a vertex value from its owners.
    VertexHalo(NodeId),
    /// Patch one side's replicated cut-edge rows of an edge value.
    EdgePatch(NodeId, PatchSide),
}

/// Where a global kernel assembles a full operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Vertex rows from each vertex's owner shard.
    VertexOwner,
    /// Edge rows from each edge's destination-owner shard.
    EdgeDstOwner,
    /// Edge rows from each edge's source-owner shard.
    EdgeSrcOwner,
    /// Replicated parameter value, cloned from shard 0.
    Param,
}

/// One lockstep step of a split kernel.
#[derive(Debug, Clone)]
struct SplitStep {
    /// Exchanges to run before the node executes on any shard.
    pre: Vec<ExOp>,
    /// The node every shard then executes.
    node: NodeId,
    /// Whether it is a recompute rebuild (skipped on shards that still
    /// hold the stashed value).
    recompute: bool,
}

/// The driver-side plan of one global kernel.
#[derive(Debug, Clone)]
struct GlobalPlan {
    /// External operands to assemble into full tensors, in input order.
    gather: Vec<(NodeId, Source)>,
    /// Recompute nodes to rebuild globally before the members run.
    rebuild: Vec<NodeId>,
}

/// How one kernel of the plan executes under sharding.
#[derive(Clone)]
enum KernelClass {
    /// Whole kernel per shard (fused path included) after `pre`.
    Sharded { pre: Vec<ExOp> },
    /// Node-by-node lockstep with mid-kernel exchanges.
    Split { steps: Vec<SplitStep> },
    /// Executed once by the driver over the full graph.
    Global(GlobalPlan),
}

/// The classifier's product: per-kernel classes plus where each model
/// output's authoritative rows live after the forward pass.
struct Classified {
    classes: Vec<KernelClass>,
    output_sources: Vec<(NodeId, Source)>,
}

enum SimErr {
    /// Whole-kernel simulation hit an intra-kernel anchor conflict.
    MustSplit,
    /// The plan's liveness discipline was violated (a bug, not a split).
    Fatal(String),
}

fn fatal(e: SimErr) -> ExecError {
    match e {
        SimErr::MustSplit => {
            ExecError::Protocol("sharding classifier: split simulation cannot itself split".into())
        }
        SimErr::Fatal(m) => ExecError::Protocol(format!("sharding classifier: {m}")),
    }
}

fn full_bits(space: Space) -> Bits {
    match space {
        Space::Vertex => Bits::Vertex { halo: true },
        Space::Edge => Bits::Edge {
            dst: true,
            src: true,
        },
        Space::Param => Bits::Param,
    }
}

fn satisfied(b: Bits, need: Need) -> bool {
    match (b, need) {
        (Bits::Param, _) => true,
        (Bits::Vertex { halo }, Need::Halo) => halo,
        (Bits::Edge { dst, .. }, Need::Anchor(EdgeGroup::ByDst)) => dst,
        (Bits::Edge { src, .. }, Need::Anchor(EdgeGroup::BySrc)) => src,
        // A mismatched space/need pair cannot arise from the view rules;
        // treat it as unsatisfied so it surfaces as a Fatal error later.
        _ => false,
    }
}

fn grant(b: &mut Bits, need: Need) {
    match (b, need) {
        (Bits::Vertex { halo }, Need::Halo) => *halo = true,
        (Bits::Edge { dst, .. }, Need::Anchor(EdgeGroup::ByDst)) => *dst = true,
        (Bits::Edge { src, .. }, Need::Anchor(EdgeGroup::BySrc)) => *src = true,
        _ => {}
    }
}

/// The validity requirement the `pos`-th input read of `id` places on
/// its operand, if any. Derived entirely from the views: endpoint reads
/// need halo rows — except at the consumer's own output anchor, whose
/// unclaimed rows make the halo read irrelevant — and group-complete
/// edge reads need the group's anchor side valid.
fn need_of(ir: &IrGraph, id: NodeId, pos: usize) -> Option<Need> {
    match view::edge_view(ir, id, pos) {
        v @ (View::BySrc | View::ByDst) => {
            let g = v.endpoint_group().expect("endpoint view has a group");
            (view::output_anchor(ir, id) != Some(g)).then_some(Need::Halo)
        }
        _ => view::required_anchor(ir, id, pos).map(Need::Anchor),
    }
}

fn bits_of(
    ir: &IrGraph,
    local: &HashMap<NodeId, Bits>,
    id: NodeId,
) -> std::result::Result<Bits, SimErr> {
    local.get(&id).copied().ok_or_else(|| {
        SimErr::Fatal(format!(
            "value '{}' read while dead in the bit simulation",
            ir.node(id).name
        ))
    })
}

/// The output validity of `id` given its operands' bits: anchored edge
/// ops claim exactly their anchor side, reductions clear the halo, and
/// row-local ops AND the bits of their same-space aligned operands.
fn out_bits(
    ir: &IrGraph,
    local: &HashMap<NodeId, Bits>,
    id: NodeId,
) -> std::result::Result<Bits, SimErr> {
    let node = ir.node(id);
    match node.space {
        Space::Param => Ok(Bits::Param),
        Space::Vertex => {
            let mut halo = true;
            for pos in 0..node.inputs.len() {
                match view::edge_view(ir, id, pos) {
                    // A reduction's halo rows would need the halo
                    // vertex's complete edge group — never local.
                    View::Reduce(_) => return Ok(Bits::Vertex { halo: false }),
                    View::Aligned => {
                        if let Bits::Vertex { halo: h } = bits_of(ir, local, node.inputs[pos])? {
                            halo &= h;
                        }
                    }
                    _ => {}
                }
            }
            Ok(Bits::Vertex { halo })
        }
        Space::Edge => match view::output_anchor(ir, id) {
            Some(EdgeGroup::ByDst) => Ok(Bits::Edge {
                dst: true,
                src: false,
            }),
            Some(EdgeGroup::BySrc) => Ok(Bits::Edge {
                dst: false,
                src: true,
            }),
            None => {
                let (mut dst, mut src) = (true, true);
                for pos in 0..node.inputs.len() {
                    if view::edge_view(ir, id, pos) == View::Aligned
                        && ir.node(node.inputs[pos]).space == Space::Edge
                    {
                        if let Bits::Edge { dst: d, src: s } = bits_of(ir, local, node.inputs[pos])?
                        {
                            dst &= d;
                            src &= s;
                        }
                    }
                }
                Ok(Bits::Edge { dst, src })
            }
        },
    }
}

enum Mode<'k> {
    /// Whole-kernel simulation: intra-kernel values cannot be exchanged
    /// (they do not exist before the kernel runs) — their requirements
    /// strengthen their own inputs, or force a split.
    Whole { intra: &'k HashSet<NodeId> },
    /// Per-node lockstep: every value is materialized before the next
    /// step, so everything is exchangeable.
    Split,
}

/// Makes `need` hold for value `id`, planning an exchange for external
/// (materialized) values and recursively strengthening the inputs of
/// intra-kernel producers.
fn satisfy(
    plan: &ExecutionPlan,
    id: NodeId,
    need: Need,
    local: &mut HashMap<NodeId, Bits>,
    pre: &mut Vec<ExOp>,
    mode: &Mode<'_>,
) -> std::result::Result<(), SimErr> {
    let b = bits_of(&plan.ir, local, id)?;
    if satisfied(b, need) {
        return Ok(());
    }
    let external = match mode {
        Mode::Whole { intra } => !intra.contains(&id),
        Mode::Split => true,
    };
    if external {
        let ex = match need {
            Need::Halo => ExOp::VertexHalo(id),
            Need::Anchor(EdgeGroup::ByDst) => ExOp::EdgePatch(id, PatchSide::Dst),
            Need::Anchor(EdgeGroup::BySrc) => ExOp::EdgePatch(id, PatchSide::Src),
        };
        if !pre.contains(&ex) {
            pre.push(ex);
        }
        grant(local.get_mut(&id).expect("bits_of checked presence"), need);
        return Ok(());
    }
    // Intra-kernel producer: can its production be strengthened to cover
    // the needed rows?
    if let Need::Anchor(g) = need {
        match view::output_anchor(&plan.ir, id) {
            // Anchored at the needed group: production already grants it
            // (unreachable — satisfied() above would have returned).
            Some(a) if a == g => {
                grant(local.get_mut(&id).expect("checked"), need);
                return Ok(());
            }
            // Anchored at the other group: the opposite side's rows are
            // inherently wrong locally — the kernel must split so the
            // value can be patched after materializing.
            Some(_) => return Err(SimErr::MustSplit),
            None => {}
        }
    }
    let node = plan.ir.node(id);
    for pos in 0..node.inputs.len() {
        let iv = node.inputs[pos];
        match view::edge_view(&plan.ir, id, pos) {
            // Endpoint reads of the strengthened rows touch arbitrary
            // endpoints: the operand needs full halo validity.
            View::BySrc | View::ByDst => satisfy(plan, iv, Need::Halo, local, pre, mode)?,
            View::Aligned => match (plan.ir.node(iv).space, need) {
                (Space::Vertex, Need::Halo) => satisfy(plan, iv, Need::Halo, local, pre, mode)?,
                (Space::Edge, Need::Anchor(g)) => {
                    satisfy(plan, iv, Need::Anchor(g), local, pre, mode)?;
                }
                _ => {}
            },
            // A reduction consumer's extra rows need complete non-local
            // groups — not strengthenable.
            View::Reduce(_) => return Err(SimErr::MustSplit),
            _ => {}
        }
    }
    grant(local.get_mut(&id).expect("checked"), need);
    Ok(())
}

/// Simulates one node: satisfies its input requirements, prevents the
/// unrepresentable no-valid-rows state, and records its output bits.
fn process_node(
    plan: &ExecutionPlan,
    id: NodeId,
    local: &mut HashMap<NodeId, Bits>,
    pre: &mut Vec<ExOp>,
    mode: &Mode<'_>,
) -> std::result::Result<(), SimErr> {
    let node = plan.ir.node(id);
    for pos in 0..node.inputs.len() {
        if let Some(need) = need_of(&plan.ir, id, pos) {
            satisfy(plan, node.inputs[pos], need, local, pre, mode)?;
        }
    }
    let mut b = out_bits(&plan.ir, local, id)?;
    if b == (Bits::Edge {
        dst: false,
        src: false,
    }) {
        // An AND of oppositely-anchored operands would claim no rows at
        // all — unfixable later, since no shard would hold a valid copy.
        // Upgrade every aligned edge operand's dst side first, so the
        // output claims its dst-owned rows.
        for pos in 0..node.inputs.len() {
            let iv = node.inputs[pos];
            if view::edge_view(&plan.ir, id, pos) == View::Aligned
                && plan.ir.node(iv).space == Space::Edge
            {
                satisfy(plan, iv, Need::Anchor(EdgeGroup::ByDst), local, pre, mode)?;
            }
        }
        b = out_bits(&plan.ir, local, id)?;
    }
    local.insert(id, b);
    Ok(())
}

/// The nodes a kernel executes in order: recompute rebuilds (skipping
/// stash-persistent values that are still live), then the members.
fn kernel_order(
    plan: &ExecutionPlan,
    lv: &Liveness,
    kid: usize,
    backward: bool,
    bits: &HashMap<NodeId, Bits>,
) -> Vec<(NodeId, bool)> {
    let kernel = &plan.kernels[kid];
    let mut order = Vec::with_capacity(kernel.recompute.len() + kernel.nodes.len());
    if backward {
        for &r in &kernel.recompute {
            if !(lv.persistent.contains(&r) && bits.contains_key(&r)) {
                order.push((r, true));
            }
        }
    }
    order.extend(kernel.nodes.iter().map(|&n| (n, false)));
    order
}

#[allow(clippy::type_complexity)]
fn simulate_whole(
    plan: &ExecutionPlan,
    lv: &Liveness,
    kid: usize,
    backward: bool,
    bits: &HashMap<NodeId, Bits>,
) -> std::result::Result<(Vec<ExOp>, HashMap<NodeId, Bits>), SimErr> {
    let order = kernel_order(plan, lv, kid, backward, bits);
    let intra: HashSet<NodeId> = order.iter().map(|&(n, _)| n).collect();
    let mut local = bits.clone();
    let mut pre = Vec::new();
    let mode = Mode::Whole { intra: &intra };
    for &(id, _) in &order {
        process_node(plan, id, &mut local, &mut pre, &mode)?;
    }
    Ok((pre, local))
}

#[allow(clippy::type_complexity)]
fn simulate_split(
    plan: &ExecutionPlan,
    lv: &Liveness,
    kid: usize,
    backward: bool,
    bits: &HashMap<NodeId, Bits>,
) -> std::result::Result<(Vec<SplitStep>, HashMap<NodeId, Bits>), SimErr> {
    let order = kernel_order(plan, lv, kid, backward, bits);
    let mut local = bits.clone();
    let mut steps = Vec::with_capacity(order.len());
    for &(id, recompute) in &order {
        let mut pre = Vec::new();
        process_node(plan, id, &mut local, &mut pre, &Mode::Split)?;
        steps.push(SplitStep {
            pre,
            node: id,
            recompute,
        });
    }
    Ok((steps, local))
}

fn source_of(b: Bits) -> Source {
    match b {
        Bits::Param => Source::Param,
        Bits::Vertex { .. } => Source::VertexOwner,
        Bits::Edge { dst: true, .. } => Source::EdgeDstOwner,
        Bits::Edge { .. } => Source::EdgeSrcOwner,
    }
}

fn simulate_global(
    plan: &ExecutionPlan,
    lv: &Liveness,
    kid: usize,
    backward: bool,
    bits: &mut HashMap<NodeId, Bits>,
) -> std::result::Result<GlobalPlan, SimErr> {
    let kernel = &plan.kernels[kid];
    let mut rebuild = Vec::new();
    let mut have: HashSet<NodeId> = kernel.nodes.iter().copied().collect();
    if backward {
        for &r in &kernel.recompute {
            if !(lv.persistent.contains(&r) && bits.contains_key(&r)) {
                rebuild.push(r);
                have.insert(r);
            }
        }
    }
    let mut gather = Vec::new();
    let mut seen = HashSet::new();
    for &id in rebuild.iter().chain(&kernel.nodes) {
        for &iv in &plan.ir.node(id).inputs {
            if have.contains(&iv) || !seen.insert(iv) {
                continue;
            }
            gather.push((iv, source_of(bits_of(&plan.ir, bits, iv)?)));
        }
    }
    // Results are scattered to every shard as fully valid rows.
    for &id in &kernel.nodes {
        bits.insert(id, full_bits(plan.ir.node(id).space));
    }
    Ok(GlobalPlan { gather, rebuild })
}

/// Kernels that must execute once, globally: any kernel producing a
/// parameter-space value from non-parameter inputs (a cross-row
/// reduction whose per-shard re-association would break bit-identity),
/// closed under the `Gather(Max)` ↔ `GatherMaxBwd` pairing — the argmax
/// table records local edge ids, so the pair must agree on which graph
/// it indexes.
fn global_kernels(plan: &ExecutionPlan) -> Vec<bool> {
    let mut global = vec![false; plan.kernels.len()];
    for k in &plan.kernels {
        for &nid in &k.nodes {
            let node = plan.ir.node(nid);
            if node.space == Space::Param
                && node
                    .inputs
                    .iter()
                    .any(|&i| plan.ir.node(i).space != Space::Param)
            {
                global[k.id] = true;
            }
        }
    }
    let node_kernel = plan.node_kernel();
    loop {
        let mut changed = false;
        for k in &plan.kernels {
            for &nid in &k.nodes {
                if let OpKind::GatherMaxBwd { fwd } = plan.ir.node(nid).kind {
                    if let Some(&fk) = node_kernel.get(&fwd) {
                        if global[k.id] != global[fk] {
                            global[k.id] = true;
                            global[fk] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    global
}

fn classify(plan: &ExecutionPlan, lv: &Liveness) -> Result<Classified> {
    let global = global_kernels(plan);
    let mut classes: Vec<KernelClass> = (0..plan.kernels.len())
        .map(|_| KernelClass::Sharded { pre: Vec::new() })
        .collect();
    let mut bits: HashMap<NodeId, Bits> = HashMap::new();
    for n in plan.ir.nodes() {
        if matches!(
            n.kind,
            OpKind::InputVertex | OpKind::InputEdge | OpKind::Param
        ) {
            bits.insert(n.id, full_bits(n.space));
        }
    }

    let mut step = |kid: usize, backward: bool, bits: &mut HashMap<NodeId, Bits>| -> Result<()> {
        if global[kid] {
            classes[kid] =
                KernelClass::Global(simulate_global(plan, lv, kid, backward, bits).map_err(fatal)?);
        } else {
            match simulate_whole(plan, lv, kid, backward, bits) {
                Ok((pre, local)) => {
                    *bits = local;
                    classes[kid] = KernelClass::Sharded { pre };
                }
                Err(SimErr::MustSplit) => {
                    let (steps, local) =
                        simulate_split(plan, lv, kid, backward, bits).map_err(fatal)?;
                    *bits = local;
                    classes[kid] = KernelClass::Split { steps };
                }
                Err(e @ SimErr::Fatal(_)) => return Err(fatal(e)),
            }
        }
        // Mirror the runtime's memory discipline so later kernels see
        // exactly the values (and bits) that are still live.
        if backward {
            for &r in &plan.kernels[kid].recompute {
                if !lv.persistent.contains(&r) {
                    bits.remove(&r);
                }
            }
        }
        for &d in &lv.kernel_deaths[kid] {
            bits.remove(&d);
        }
        Ok(())
    };

    for kid in 0..plan.kernels.len() {
        if memplan::kernel_phase(plan, kid) == Phase::Forward {
            step(kid, false, &mut bits)?;
        }
    }
    let output_sources = plan
        .ir
        .outputs()
        .iter()
        .map(|&o| {
            bits.get(&o)
                .map(|&b| (o, source_of(b)))
                .ok_or_else(|| fatal(SimErr::Fatal(format!("output node {o} not live"))))
        })
        .collect::<Result<Vec<_>>>()?;
    if plan.training {
        // The forward→backward boundary drops every non-persistent value.
        bits.retain(|n, _| lv.persistent.contains(n));
        if let Some(seed) = plan.ir.nodes().iter().find(|n| n.kind == OpKind::GradSeed) {
            bits.insert(seed.id, full_bits(seed.space));
        }
        for kid in 0..plan.kernels.len() {
            if memplan::kernel_phase(plan, kid) == Phase::Backward {
                step(kid, true, &mut bits)?;
            }
        }
    }
    Ok(Classified {
        classes,
        output_sources,
    })
}

// ---------------------------------------------------------------------
// Shard maps: local graphs, relabelings and static exchange routes.
// ---------------------------------------------------------------------

/// What the IR reads through the graph structure — decides which halo
/// rows and replica edges the shards must carry at all.
struct IrNeeds {
    /// Some un-anchored consumer reads vertex rows through edge sources.
    uses_src: bool,
    /// Some un-anchored consumer reads vertex rows through edge dests.
    uses_dst: bool,
    /// Some reduction groups by source: shards must replicate the cut
    /// edges whose source they own, so those groups stay complete.
    need_src_edges: bool,
}

fn ir_needs(ir: &IrGraph) -> IrNeeds {
    let mut needs = IrNeeds {
        uses_src: false,
        uses_dst: false,
        need_src_edges: false,
    };
    for n in ir.nodes() {
        let group = match &n.kind {
            OpKind::GatherMaxBwd { fwd } => Some(view::gather_max_bwd_group(ir, *fwd)),
            k => k.reduction_group(),
        };
        if group == Some(EdgeGroup::BySrc) {
            needs.need_src_edges = true;
        }
        for pos in 0..n.inputs.len() {
            if let Some(g) = view::edge_view(ir, n.id, pos).endpoint_group() {
                // Reads at the consumer's own anchor only touch owned
                // endpoints on the rows the shard claims.
                if view::output_anchor(ir, n.id) == Some(g) {
                    continue;
                }
                match g {
                    EdgeGroup::BySrc => needs.uses_src = true,
                    EdgeGroup::ByDst => needs.uses_dst = true,
                }
            }
        }
    }
    needs
}

/// Row map entry: `(local destination row, source shard, source row)`.
type RowMap = Vec<(u32, u32, u32)>;

/// The static routing tables of one sharded build: local↔global id
/// maps, owner-row lookups for global assembly, and the exchange routes
/// every halo/replica patch replays.
struct ShardMaps {
    part: Partition,
    /// Per shard: global vertex id of each local row, ascending.
    l2g_vertex: Vec<Vec<u32>>,
    /// Per shard: global edge id of each local edge row, ascending.
    l2g_edge: Vec<Vec<u32>>,
    /// Per global vertex: its row in its owner shard.
    owner_vertex_row: Vec<u32>,
    /// Per global edge: its row in the shard owning its destination.
    owner_edge_row_dst: Vec<u32>,
    /// Per global edge: its row in the shard owning its source
    /// (`u32::MAX` when source-side replication is off).
    owner_edge_row_src: Vec<u32>,
    /// Per shard: the union halo set — non-owned local vertices some
    /// endpoint read touches — with their owner rows.
    halo_rows: Vec<RowMap>,
    /// Per shard: dst-owned cut-edge rows, pulled from source owners.
    patch_dst: Vec<RowMap>,
    /// Per shard: src-owned cut-edge rows, pulled from dest owners.
    patch_src: Vec<RowMap>,
    cut_edges: u64,
}

impl ShardMaps {
    /// Builds the maps and the per-shard local subgraphs. Local vertex
    /// ids enumerate owned vertices and kept-edge endpoints in
    /// ascending global order (a monotone relabeling), so the local
    /// CSR's canonical edge order is the global order restricted to the
    /// kept edges — the invariant every reduction's bit-identity rests
    /// on.
    fn build(ir: &IrGraph, graph: &Graph, part: Partition) -> (Self, Vec<Graph>) {
        let needs = ir_needs(ir);
        let n = graph.num_vertices();
        let ne = graph.num_edges();
        let k = part.num_shards();
        let owner = part.owner();
        let src = graph.src_slice();
        let dst = graph.dst_slice();

        // Kept edges per shard, ascending global id: all dst-owned, plus
        // src-owned cut edges when some reduction groups by source.
        let mut kept: Vec<Vec<u32>> = vec![Vec::new(); k];
        for e in 0..ne {
            let so = owner[src[e] as usize] as usize;
            let d_o = owner[dst[e] as usize] as usize;
            kept[d_o].push(e as u32);
            if needs.need_src_edges && so != d_o {
                kept[so].push(e as u32);
            }
        }

        // Local vertex sets: owned ∪ kept-edge endpoints.
        let mut l2g_vertex: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut g2l: Vec<Vec<u32>> = vec![vec![u32::MAX; n]; k];
        {
            let mut in_shard = vec![false; n];
            for (s, kept_s) in kept.iter().enumerate() {
                in_shard.iter_mut().for_each(|b| *b = false);
                for v in 0..n {
                    if owner[v] as usize == s {
                        in_shard[v] = true;
                    }
                }
                for &e in kept_s {
                    in_shard[src[e as usize] as usize] = true;
                    in_shard[dst[e as usize] as usize] = true;
                }
                for (v, &present) in in_shard.iter().enumerate() {
                    if present {
                        g2l[s][v] = l2g_vertex[s].len() as u32;
                        l2g_vertex[s].push(v as u32);
                    }
                }
            }
        }
        let mut owner_vertex_row = vec![0u32; n];
        for v in 0..n {
            owner_vertex_row[v] = g2l[owner[v] as usize][v];
        }

        let mut owner_edge_row_dst = vec![0u32; ne];
        let mut owner_edge_row_src = if needs.need_src_edges {
            vec![u32::MAX; ne]
        } else {
            Vec::new()
        };
        for (s, kept_s) in kept.iter().enumerate() {
            for (i, &e) in kept_s.iter().enumerate() {
                let e = e as usize;
                if owner[dst[e] as usize] as usize == s {
                    owner_edge_row_dst[e] = i as u32;
                }
                if needs.need_src_edges && owner[src[e] as usize] as usize == s {
                    owner_edge_row_src[e] = i as u32;
                }
            }
        }

        // Local subgraphs. The monotone relabeling keeps the canonical
        // (dst, src) order, so local edge row `i` IS global edge
        // `kept[s][i]` — debug-checked below.
        let graphs: Vec<Graph> = (0..k)
            .map(|s| {
                let pairs: Vec<(u32, u32)> = kept[s]
                    .iter()
                    .map(|&e| {
                        (
                            g2l[s][src[e as usize] as usize],
                            g2l[s][dst[e as usize] as usize],
                        )
                    })
                    .collect();
                let lg = Graph::from_edge_list(&EdgeList::from_pairs(l2g_vertex[s].len(), &pairs));
                debug_assert_eq!(lg.num_edges(), kept[s].len());
                debug_assert!((0..lg.num_edges()).all(|i| {
                    let e = kept[s][i] as usize;
                    lg.src(i) == g2l[s][src[e] as usize] as usize
                        && lg.dst(i) == g2l[s][dst[e] as usize] as usize
                }));
                lg
            })
            .collect();

        // Union halo sets and replica patch routes.
        let mut halo_rows: Vec<RowMap> = vec![Vec::new(); k];
        let mut patch_dst: Vec<RowMap> = vec![Vec::new(); k];
        let mut patch_src: Vec<RowMap> = vec![Vec::new(); k];
        for (s, kept_s) in kept.iter().enumerate() {
            let mut mark = vec![false; l2g_vertex[s].len()];
            for (i, &e) in kept_s.iter().enumerate() {
                let e = e as usize;
                let (sv, dv) = (src[e] as usize, dst[e] as usize);
                let (so, d_o) = (owner[sv] as usize, owner[dv] as usize);
                if d_o == s {
                    if needs.uses_src && so != s {
                        mark[g2l[s][sv] as usize] = true;
                    }
                    if so != s && needs.need_src_edges {
                        patch_dst[s].push((i as u32, so as u32, owner_edge_row_src[e]));
                    }
                }
                if needs.need_src_edges && so == s && d_o != s {
                    patch_src[s].push((i as u32, d_o as u32, owner_edge_row_dst[e]));
                    if needs.uses_dst {
                        mark[g2l[s][dv] as usize] = true;
                    }
                }
            }
            for (l, &m) in mark.iter().enumerate() {
                if m {
                    let gv = l2g_vertex[s][l] as usize;
                    halo_rows[s].push((l as u32, owner[gv], owner_vertex_row[gv]));
                }
            }
        }

        let cut_edges = part.cut_edges(graph);
        let maps = Self {
            part,
            l2g_vertex,
            l2g_edge: kept,
            owner_vertex_row,
            owner_edge_row_dst,
            owner_edge_row_src,
            halo_rows,
            patch_dst,
            patch_src,
            cut_edges,
        };
        (maps, graphs)
    }
}

/// Row-select `t` by `idx` (u32 global rows), preserving trailing shape.
fn select_rows_u32(t: &Tensor, idx: &[u32]) -> Tensor {
    let mut shape = t.shape().to_vec();
    shape[0] = idx.len();
    let mut out = Tensor::zeros(&shape);
    for (i, &g) in idx.iter().enumerate() {
        out.row_mut(i).copy_from_slice(t.row(g as usize));
    }
    out
}

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

/// Sharded execution driver: per-shard planned [`Session`]s plus the
/// static classification and routing tables, executing the plan's
/// kernels across shards with explicit exchanges.
#[derive(Debug)]
struct Multi<'a> {
    plan: &'a ExecutionPlan,
    graph: &'a Graph,
    policy: ExecPolicy,
    shards: Vec<Session<'a>>,
    maps: ShardMaps,
    classes: Vec<KernelClass>,
    output_sources: Vec<(NodeId, Source)>,
    fwd_kernels: Vec<usize>,
    bwd_kernels: Vec<usize>,
    /// Driver-held full tensors during a global kernel.
    gvalues: HashMap<NodeId, Tensor>,
    /// Global softmax stashes of globally-executed `EdgeSoftmax` nodes.
    gaux_softmax: HashMap<NodeId, (Tensor, Tensor)>,
    /// Global argmax tables of globally-executed `Gather(Max)` nodes.
    gaux_argmax: HashMap<NodeId, Vec<u32>>,
    records: Vec<ExchangeRecord>,
    stats: RunStats,
    /// Set when a panic unwound out of a driver-side execution path
    /// (split steps, global kernels, exchanges) and was contained at the
    /// kernel boundary: the step's results are unreliable, so every
    /// subsequent step refuses with [`ExecError::Poisoned`]. Panics
    /// inside a shard's own kernels poison that shard's [`Session`]
    /// instead.
    poisoned: Option<String>,
}

/// Human-readable label of a kernel launch for fault diagnostics —
/// the driver-side twin of `Session::kernel_label`, usable while shard
/// sessions are mutably borrowed.
fn kernel_label(plan: &ExecutionPlan, kid: usize, backward: bool) -> String {
    let names: Vec<&str> = plan.kernels[kid]
        .nodes
        .iter()
        .map(|&n| plan.ir.node(n).name.as_str())
        .collect();
    format!(
        "K{kid} {} [{}]",
        if backward { "bwd" } else { "fwd" },
        names.join("+")
    )
}

/// Order-sensitive checksum of the staged exchange buffers (FNV-style
/// over f32 bit patterns): taken right after staging and re-verified
/// right before scattering, so any corruption of the staging seam — the
/// place a future wire or spill transport plugs in — is caught at the
/// exchange that caused it, not epochs later.
fn staging_checksum(staged: &[Vec<f32>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for buf in staged {
        for v in buf {
            h = (h.rotate_left(5) ^ u64::from(v.to_bits())).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl std::fmt::Debug for ShardMaps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMaps")
            .field("num_shards", &self.part.num_shards())
            .field("cut_edges", &self.cut_edges)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for KernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelClass::Sharded { pre } => write!(f, "Sharded({} pre)", pre.len()),
            KernelClass::Split { steps } => write!(f, "Split({} steps)", steps.len()),
            KernelClass::Global(g) => write!(f, "Global({} gathered)", g.gather.len()),
        }
    }
}

impl<'a> Multi<'a> {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn record(
        &mut self,
        kid: usize,
        backward: bool,
        nid: NodeId,
        rows: u64,
        bytes: u64,
        kind: ExchangeKind,
    ) {
        self.stats.comm_bytes += bytes;
        self.stats.halo_exchanges += 1;
        self.records.push(ExchangeRecord {
            kernel: kid,
            backward,
            value: self.plan.ir.node(nid).name.clone(),
            rows,
            bytes,
            kind,
        });
    }

    /// Distributes the caller's global bindings into per-shard local
    /// bindings (row selection, not communication — not recorded).
    fn local_bindings(&self, bindings: &Bindings) -> Result<Vec<Bindings>> {
        let k = self.num_shards();
        let mut out = vec![Bindings::new(); k];
        for n in self.plan.ir.nodes() {
            let rows = match n.kind {
                OpKind::InputVertex => self.graph.num_vertices(),
                OpKind::InputEdge => self.graph.num_edges(),
                OpKind::Param => n.dim.heads,
                _ => continue,
            };
            let t = bindings
                .get(&n.name)
                .ok_or_else(|| ExecError::MissingBinding(n.name.clone()))?;
            let cols = match n.kind {
                OpKind::Param => n.dim.feat,
                _ => n.dim.total(),
            };
            if t.rows() != rows || t.cols() != cols {
                return Err(ExecError::BindingShape {
                    name: n.name.clone(),
                    expected: (rows, cols),
                    got: t.shape().to_vec(),
                });
            }
            for (s, shard_bindings) in out.iter_mut().enumerate() {
                let local = match n.kind {
                    OpKind::InputVertex => select_rows_u32(t, &self.maps.l2g_vertex[s]),
                    OpKind::InputEdge => select_rows_u32(t, &self.maps.l2g_edge[s]),
                    _ => t.clone(),
                };
                shard_bindings.insert(&n.name, local);
            }
        }
        Ok(out)
    }

    /// Refuses to start work after a driver-side contained panic.
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(ExecError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    fn begin(&mut self, bindings: &Bindings) -> Result<()> {
        self.check_poisoned()?;
        self.records.clear();
        self.gvalues.clear();
        self.gaux_softmax.clear();
        self.gaux_argmax.clear();
        self.stats = RunStats::default();
        let locals = self.local_bindings(bindings)?;
        for (s, lb) in locals.iter().enumerate() {
            let sess = &mut self.shards[s];
            let _scope = sess.scope();
            sess.begin_forward(lb)?;
        }
        self.stats.shards = self.num_shards();
        self.stats.threads = self.policy.threads;
        self.stats.arena = self.shards[0].arena();
        self.stats.reorder = ReorderPolicy::None;
        self.stats.cut_edges = self.maps.cut_edges;
        self.stats.halo_vertices = self.maps.halo_rows.iter().map(|h| h.len() as u64).sum();
        self.stats.planned_peak_bytes = self
            .shards
            .iter()
            .map(|s| s.memory_plan().arena_bytes)
            .sum();
        Ok(())
    }

    /// Folds the per-shard run stats into the composed step stats.
    fn absorb_shard_stats(&mut self) {
        self.stats.peak_value_bytes = self.shards.iter().map(|s| s.stats().peak_value_bytes).sum();
        self.stats.boundary_bytes = self.shards.iter().map(|s| s.stats().boundary_bytes).sum();
        // Shards run sequentially, so scratch high-water is a max, and
        // fused-kernel counts are per-plan figures (identical across
        // shards), not per-launch tallies.
        self.stats.scratch_bytes = self
            .shards
            .iter()
            .map(|s| s.stats().scratch_bytes)
            .max()
            .unwrap_or(0);
        self.stats.fused_kernels = self.shards[0].stats().fused_kernels;
        self.stats.fallback_allocs = self.shards.iter().map(|s| s.stats().fallback_allocs).sum();
    }

    fn run_forward_phase(&mut self, bindings: &Bindings) -> Result<()> {
        self.begin(bindings)?;
        let t0 = Instant::now();
        for i in 0..self.fwd_kernels.len() {
            let kid = self.fwd_kernels[i];
            self.run_kernel(kid, false)?;
        }
        self.stats.forward_seconds = t0.elapsed().as_secs_f64();
        for sess in &mut self.shards {
            let _scope = sess.scope();
            sess.finish_forward();
        }
        self.absorb_shard_stats();
        Ok(())
    }

    fn run_backward_phase(&mut self, seed: Tensor) -> Result<()> {
        self.check_poisoned()?;
        let seed_node = self
            .plan
            .ir
            .nodes()
            .iter()
            .find(|n| n.kind == OpKind::GradSeed)
            .ok_or_else(|| ExecError::Protocol("plan was compiled for inference".into()))?;
        let (rows, id, space) = (seed.rows(), seed_node.id, seed_node.space);
        let _ = rows;
        let _ = id;
        for s in 0..self.num_shards() {
            let local = match space {
                Space::Vertex => select_rows_u32(&seed, &self.maps.l2g_vertex[s]),
                Space::Edge => select_rows_u32(&seed, &self.maps.l2g_edge[s]),
                Space::Param => seed.clone(),
            };
            let sess = &mut self.shards[s];
            let _scope = sess.scope();
            sess.begin_backward(local)?;
        }
        let t0 = Instant::now();
        for i in 0..self.bwd_kernels.len() {
            let kid = self.bwd_kernels[i];
            self.run_kernel(kid, true)?;
        }
        self.stats.backward_seconds = t0.elapsed().as_secs_f64();
        for sess in &mut self.shards {
            let _scope = sess.scope();
            sess.finish_backward();
        }
        self.absorb_shard_stats();
        Ok(())
    }

    fn run_kernel(&mut self, kid: usize, backward: bool) -> Result<()> {
        // Swap the class out so the borrow checker lets the exchange and
        // execution methods take `&mut self` while we iterate it.
        let class = std::mem::replace(
            &mut self.classes[kid],
            KernelClass::Sharded { pre: Vec::new() },
        );
        // Containment boundary for the driver's own execution paths
        // (split lockstep steps, global kernels, exchanges): a panic
        // surfaces as a typed error and poisons the driver. Panics
        // inside a shard's `exec_kernel` are already contained there and
        // arrive here as `Err(KernelPanic)`, poisoning that shard.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_class(kid, backward, &class)
        }));
        self.classes[kid] = class;
        match r {
            Ok(r) => r,
            Err(p) => {
                let kernel = kernel_label(self.plan, kid, backward);
                let payload = contain::payload_str(p.as_ref());
                self.poisoned = Some(format!("kernel '{kernel}' panicked: {payload}"));
                Err(ExecError::KernelPanic { kernel, payload })
            }
        }
    }

    fn run_class(&mut self, kid: usize, backward: bool, class: &KernelClass) -> Result<()> {
        match class {
            KernelClass::Sharded { pre } => {
                for &ex in pre {
                    self.exchange(ex, kid, backward)?;
                }
                for sess in &mut self.shards {
                    let _scope = sess.scope();
                    sess.exec_kernel(kid, backward)?;
                }
            }
            KernelClass::Split { steps } => {
                let (plan, guard) = (self.plan, self.policy.guard);
                for step in steps {
                    for &ex in &step.pre {
                        self.exchange(ex, kid, backward)?;
                    }
                    for sess in &mut self.shards {
                        let _scope = sess.scope();
                        if step.recompute && sess.has_value(step.node) {
                            continue; // stash-persistent value still live
                        }
                        let t = sess.exec_node(step.node)?;
                        if guard {
                            scan_nonfinite(&t, &plan.ir.node(step.node).name, || {
                                kernel_label(plan, kid, backward)
                            })?;
                        }
                        sess.insert_value(step.node, t);
                    }
                }
                if backward {
                    for i in 0..self.plan.kernels[kid].recompute.len() {
                        let r = self.plan.kernels[kid].recompute[i];
                        if !self.shards[0].is_persistent(r) {
                            for sess in &mut self.shards {
                                let _scope = sess.scope();
                                sess.drop_value(r);
                            }
                        }
                    }
                }
                for sess in &mut self.shards {
                    let _scope = sess.scope();
                    sess.evict_after(kid);
                }
            }
            KernelClass::Global(gp) => self.run_global(kid, backward, gp)?,
        }
        Ok(())
    }

    /// Replays one static exchange route for one value: gather the
    /// source rows from their owner shards into staging buffers,
    /// **validate** them, then scatter into each shard's copy in place.
    ///
    /// The staging buffers are exactly the seam a future transport (a
    /// wire, a spilled file — ROADMAP item 4) replaces, so they are not
    /// trusted blindly: every buffer must hold exactly `rows × cols`
    /// floats for its route (always checked), and in debug builds — or
    /// whenever failpoints are armed — an order-sensitive checksum
    /// taken at staging must still match at scatter time. Violations
    /// are [`ExecError::Exchange`], naming the value, kernel and shard.
    ///
    /// Hosts the `exchange` failpoint: `corrupt` drops one staged float
    /// (caught by the count check), `nan` flips one staged float to NaN
    /// (caught by the checksum), every other action returns
    /// [`ExecError::Injected`].
    fn exchange(&mut self, ex: ExOp, kid: usize, backward: bool) -> Result<()> {
        let (nid, kind) = match ex {
            ExOp::VertexHalo(v) => (v, ExchangeKind::VertexHalo),
            ExOp::EdgePatch(v, _) => (v, ExchangeKind::EdgeReplica),
        };
        let k = self.num_shards();
        let cols = self.shards[0].value(nid)?.cols();
        let mut staged: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut rows = 0u64;
        for s in 0..k {
            let map: &RowMap = match ex {
                ExOp::VertexHalo(_) => &self.maps.halo_rows[s],
                ExOp::EdgePatch(_, PatchSide::Dst) => &self.maps.patch_dst[s],
                ExOp::EdgePatch(_, PatchSide::Src) => &self.maps.patch_src[s],
            };
            let mut buf = Vec::new();
            for &(_, os, or) in map {
                buf.extend_from_slice(self.shards[os as usize].value(nid)?.row(or as usize));
            }
            rows += map.len() as u64;
            staged.push(buf);
        }
        let deep_check = cfg!(debug_assertions) || fault::armed();
        let stage_sum = deep_check.then(|| staging_checksum(&staged));
        match fault::check("exchange") {
            None => {}
            Some(fault::FaultAction::Corrupt) => {
                if let Some(b) = staged.iter_mut().find(|b| !b.is_empty()) {
                    b.pop();
                }
            }
            Some(fault::FaultAction::Nan) => {
                if let Some(v) = staged.iter_mut().flat_map(|b| b.iter_mut()).next() {
                    *v = f32::NAN;
                }
            }
            Some(_) => {
                return Err(ExecError::Injected {
                    site: "exchange".into(),
                })
            }
        }
        let describe = |s: usize| {
            format!(
                "value '{}' into shard {s} at kernel '{}'",
                self.plan.ir.node(nid).name,
                kernel_label(self.plan, kid, backward)
            )
        };
        for (s, buf) in staged.iter().enumerate() {
            let map: &RowMap = match ex {
                ExOp::VertexHalo(_) => &self.maps.halo_rows[s],
                ExOp::EdgePatch(_, PatchSide::Dst) => &self.maps.patch_dst[s],
                ExOp::EdgePatch(_, PatchSide::Src) => &self.maps.patch_src[s],
            };
            if buf.len() != map.len() * cols {
                return Err(ExecError::Exchange(format!(
                    "staging buffer of {} holds {} floats, expected {} rows x {cols} cols",
                    describe(s),
                    buf.len(),
                    map.len(),
                )));
            }
        }
        if let Some(expected) = stage_sum {
            let got = staging_checksum(&staged);
            if got != expected {
                return Err(ExecError::Exchange(format!(
                    "staging checksum mismatch for {} ({got:#018x} != {expected:#018x})",
                    describe(0),
                )));
            }
        }
        let bytes: u64 = staged.iter().map(|b| 4 * b.len() as u64).sum();
        for (s, buf) in staged.iter().enumerate() {
            let map: &RowMap = match ex {
                ExOp::VertexHalo(_) => &self.maps.halo_rows[s],
                ExOp::EdgePatch(_, PatchSide::Dst) => &self.maps.patch_dst[s],
                ExOp::EdgePatch(_, PatchSide::Src) => &self.maps.patch_src[s],
            };
            if map.is_empty() {
                continue;
            }
            let t = self.shards[s].value_mut(nid)?;
            for (i, &(dl, _, _)) in map.iter().enumerate() {
                t.row_mut(dl as usize)
                    .copy_from_slice(&buf[i * cols..(i + 1) * cols]);
            }
        }
        self.record(kid, backward, nid, rows, bytes, kind);
        Ok(())
    }

    /// Assembles the full (global-row) tensor of a value from the
    /// shards' authoritative rows.
    fn assemble_value(&self, id: NodeId, src: Source) -> Result<Tensor> {
        match src {
            Source::Param => Ok(self.shards[0].value(id)?.clone()),
            Source::VertexOwner => {
                let refs: Vec<&Tensor> = self
                    .shards
                    .iter()
                    .map(|s| s.value(id))
                    .collect::<Result<Vec<_>>>()?;
                let mut shape = refs[0].shape().to_vec();
                shape[0] = self.graph.num_vertices();
                let mut out = Tensor::zeros(&shape);
                for v in 0..self.graph.num_vertices() {
                    let s = self.maps.part.owner_of(v);
                    out.row_mut(v)
                        .copy_from_slice(refs[s].row(self.maps.owner_vertex_row[v] as usize));
                }
                Ok(out)
            }
            Source::EdgeDstOwner | Source::EdgeSrcOwner => {
                let refs: Vec<&Tensor> = self
                    .shards
                    .iter()
                    .map(|s| s.value(id))
                    .collect::<Result<Vec<_>>>()?;
                let mut shape = refs[0].shape().to_vec();
                shape[0] = self.graph.num_edges();
                let mut out = Tensor::zeros(&shape);
                for e in 0..self.graph.num_edges() {
                    let (s, row) = match src {
                        Source::EdgeDstOwner => (
                            self.maps.part.owner_of(self.graph.dst(e)),
                            self.maps.owner_edge_row_dst[e],
                        ),
                        _ => (
                            self.maps.part.owner_of(self.graph.src(e)),
                            self.maps.owner_edge_row_src[e],
                        ),
                    };
                    out.row_mut(e).copy_from_slice(refs[s].row(row as usize));
                }
                Ok(out)
            }
        }
    }

    /// Executes one node over the full graph with driver-held operands
    /// — the global path for parameter reductions.
    fn exec_global_node(&mut self, id: NodeId) -> Result<Tensor> {
        let plan = self.plan;
        let node = plan.ir.node(id);
        let (t, aux_out) = {
            let mut inputs: Vec<&Tensor> = Vec::with_capacity(node.inputs.len());
            for &iv in &node.inputs {
                inputs.push(
                    self.gvalues
                        .get(&iv)
                        .ok_or_else(|| ExecError::ValueNotLive {
                            node: plan.ir.node(iv).name.clone(),
                        })?,
                );
            }
            let aux_in = match &node.kind {
                OpKind::EdgeSoftmax => self
                    .gaux_softmax
                    .get(&id)
                    .map_or(refexec::AuxIn::None, |(m, d)| refexec::AuxIn::Softmax(m, d)),
                OpKind::GatherMaxBwd { fwd } => {
                    refexec::AuxIn::Argmax(self.gaux_argmax.get(fwd).ok_or_else(|| {
                        ExecError::ValueNotLive {
                            node: format!("global argmax aux of node {fwd}"),
                        }
                    })?)
                }
                _ => refexec::AuxIn::None,
            };
            refexec::exec_op(&self.policy, self.graph, &plan.ir, node, &inputs, aux_in)?
        };
        match aux_out {
            refexec::AuxOut::Softmax(m, d) => {
                self.gaux_softmax.insert(id, (m, d));
            }
            refexec::AuxOut::Argmax(a) => {
                self.gaux_argmax.insert(id, a);
            }
            refexec::AuxOut::None => {}
        }
        Ok(t)
    }

    fn run_global(&mut self, kid: usize, backward: bool, gp: &GlobalPlan) -> Result<()> {
        let plan = self.plan;
        // Assemble external operands from their authoritative rows.
        for &(nid, src) in &gp.gather {
            let t = self.assemble_value(nid, src)?;
            let rows = t.rows() as u64;
            let bytes = t.byte_size() as u64;
            self.record(kid, backward, nid, rows, bytes, ExchangeKind::GlobalGather);
            self.gvalues.insert(nid, t);
        }
        // Rebuild recomputed values globally (their shard copies died).
        for &r in &gp.rebuild {
            let t = self.exec_global_node(r)?;
            self.gvalues.insert(r, t);
        }
        for i in 0..plan.kernels[kid].nodes.len() {
            let id = plan.kernels[kid].nodes[i];
            let t = self.exec_global_node(id)?;
            if self.policy.guard {
                scan_nonfinite(&t, &plan.ir.node(id).name, || {
                    kernel_label(plan, kid, backward)
                })?;
            }
            self.gvalues.insert(id, t);
        }
        // Scatter the members' results back into the shard stores.
        for i in 0..plan.kernels[kid].nodes.len() {
            let id = plan.kernels[kid].nodes[i];
            let t = self.gvalues.remove(&id).expect("just inserted");
            let node = plan.ir.node(id);
            match node.space {
                Space::Param => {
                    for sess in &mut self.shards {
                        let _scope = sess.scope();
                        sess.insert_value(id, t.clone());
                    }
                    let rows = self.num_shards() as u64 * t.rows() as u64;
                    let bytes = self.num_shards() as u64 * t.byte_size() as u64;
                    self.record(kid, backward, id, rows, bytes, ExchangeKind::GlobalScatter);
                }
                Space::Vertex | Space::Edge => {
                    let mut rows = 0u64;
                    let mut bytes = 0u64;
                    for s in 0..self.num_shards() {
                        let idx = match node.space {
                            Space::Vertex => &self.maps.l2g_vertex[s],
                            _ => &self.maps.l2g_edge[s],
                        };
                        let local = select_rows_u32(&t, idx);
                        rows += local.rows() as u64;
                        bytes += local.byte_size() as u64;
                        let sess = &mut self.shards[s];
                        let _scope = sess.scope();
                        sess.insert_value(id, local);
                    }
                    self.record(kid, backward, id, rows, bytes, ExchangeKind::GlobalScatter);
                }
            }
        }
        self.gvalues.clear();
        for sess in &mut self.shards {
            let _scope = sess.scope();
            sess.evict_after(kid);
        }
        Ok(())
    }

    fn outputs(&self) -> Result<Vec<Tensor>> {
        self.output_sources
            .iter()
            .map(|&(o, src)| self.assemble_value(o, src))
            .collect()
    }

    fn grads(&self) -> Result<HashMap<String, Tensor>> {
        let mut grads = HashMap::new();
        for &(p, g) in &self.plan.param_grads {
            let name = self.plan.ir.node(p).name.clone();
            grads.insert(name, self.shards[0].value(g)?.clone());
        }
        Ok(grads)
    }

    fn summaries(&self) -> Vec<ShardSummary> {
        let sizes = self.maps.part.shard_sizes();
        (0..self.num_shards())
            .map(|s| ShardSummary {
                num_vertices: self.maps.l2g_vertex[s].len(),
                num_edges: self.maps.l2g_edge[s].len(),
                owned_vertices: sizes[s],
                halo_rows: self.maps.halo_rows[s].len(),
                arena_bytes: self.shards[s].memory_plan().arena_bytes,
            })
            .collect()
    }
}

/// Builds a [`ShardedSession`]: the shard count, partition strategy and
/// per-shard session knobs made explicit, with the same `GNNOPT_*`
/// override treatment as [`crate::SessionBuilder`] plus the
/// `GNNOPT_SHARDS` override.
#[derive(Debug)]
pub struct ShardedSessionBuilder<'a> {
    plan: &'a ExecutionPlan,
    graph: &'a Graph,
    shards: Option<usize>,
    strategy: ShardStrategy,
    policy: Option<ExecPolicy>,
    fused: Option<bool>,
    arena: Option<bool>,
    env: EnvOverrides,
}

impl<'a> ShardedSessionBuilder<'a> {
    /// Pins the shard count. An explicit pin outranks `GNNOPT_SHARDS`.
    /// Clamped to the vertex count; `1` builds a plain session.
    #[must_use]
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = Some(k);
        self
    }

    /// Chooses the partitioning strategy (default
    /// [`ShardStrategy::Bfs`]).
    #[must_use]
    pub fn strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the plan's own [`ExecPolicy`] for every shard and the
    /// driver's global kernels.
    #[must_use]
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Pins fused execution on or off for the per-shard sessions.
    #[must_use]
    pub fn fused(mut self, fused: bool) -> Self {
        self.fused = Some(fused);
        self
    }

    /// Pins the per-shard static arenas on or off (default: on).
    #[must_use]
    pub fn arena(mut self, arena: bool) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Chooses how the `GNNOPT_*` overrides apply (default
    /// [`EnvOverrides::Loud`]).
    #[must_use]
    pub fn env(mut self, env: EnvOverrides) -> Self {
        self.env = env;
        self
    }

    /// Resolves the shard count and builds the session: a plain
    /// [`Session`] for one shard, the sharded driver otherwise.
    ///
    /// # Errors
    ///
    /// As [`crate::SessionBuilder::build`], plus — under
    /// [`EnvOverrides::Loud`] — [`ExecError::Policy`] when
    /// `GNNOPT_SHARDS` is not a positive integer.
    pub fn build(self) -> Result<ShardedSession<'a>> {
        let loud = self.env == EnvOverrides::Loud;
        let env_shards = if self.env == EnvOverrides::Off {
            None
        } else {
            match shards_env() {
                Ok(v) => v,
                Err(e) if loud => return Err(ExecError::Policy(e)),
                Err(_) => None,
            }
        };
        let k = self
            .shards
            .or(env_shards)
            .unwrap_or(1)
            .clamp(1, self.graph.num_vertices().max(1));
        if k == 1 {
            let mut b = Session::builder(self.plan, self.graph).env(self.env);
            if let Some(p) = self.policy {
                b = b.policy(p);
            }
            if let Some(f) = self.fused {
                b = b.fused(f);
            }
            if let Some(a) = self.arena {
                b = b.arena(a);
            }
            return Ok(ShardedSession {
                inner: Inner::Single(Box::new(b.build()?)),
            });
        }

        // Resolve policy / fused / arena exactly like SessionBuilder.
        let mut policy = self.policy.unwrap_or(self.plan.exec);
        let mut env_fused = None;
        let mut env_arena = None;
        if self.env != EnvOverrides::Off {
            fn apply<T>(
                r: std::result::Result<Option<T>, String>,
                loud: bool,
            ) -> Result<Option<T>> {
                match r {
                    Ok(v) => Ok(v),
                    Err(e) if loud => Err(ExecError::Policy(e)),
                    Err(_) => Ok(None),
                }
            }
            if loud && policy.is_auto() {
                gnnopt_tensor::parallel::env_threads().map_err(ExecError::Policy)?;
            }
            env_fused = apply(fused_env(), loud)?;
            env_arena = apply(arena_env(), loud)?;
            policy.reorder = apply(reorder_env(), loud)?.unwrap_or(policy.reorder);
            policy.gemm = apply(gemm_env(), loud)?.unwrap_or(policy.gemm);
            policy.guard = apply(guard_env(), loud)?.unwrap_or(policy.guard);
            match fault::install_from_env() {
                Ok(_) => {}
                Err(e) if loud => return Err(ExecError::Policy(e)),
                Err(_) => {}
            }
        }
        self.graph.validate().map_err(ExecError::Graph)?;
        let fused = self.fused.or(env_fused).unwrap_or(policy.fused);
        policy.fused = fused;
        let arena = self.arena.or(env_arena).unwrap_or(true);
        // Shard-local ids must stay aligned with the exchange maps, so
        // runtime reordering is pinned off under sharding.
        policy.reorder = ReorderPolicy::None;
        let policy = policy.resolved(gnnopt_tensor::parallel::available_threads);

        let part = self.strategy.partition(self.graph, k);
        let lv = memplan::liveness(self.plan);
        let classified = classify(self.plan, &lv)?;
        let (maps, graphs) = ShardMaps::build(&self.plan.ir, self.graph, part);
        let shards: Vec<Session<'a>> = graphs
            .into_iter()
            .map(|g| Session::assemble_owned(self.plan, g, policy, fused, arena))
            .collect::<Result<_>>()?;
        let fwd_kernels = shards[0].fwd_kernel_ids().to_vec();
        let bwd_kernels = shards[0].bwd_kernel_ids().to_vec();
        Ok(ShardedSession {
            inner: Inner::Multi(Box::new(Multi {
                plan: self.plan,
                graph: self.graph,
                policy,
                shards,
                maps,
                classes: classified.classes,
                output_sources: classified.output_sources,
                fwd_kernels,
                bwd_kernels,
                gvalues: HashMap::new(),
                gaux_softmax: HashMap::new(),
                gaux_argmax: HashMap::new(),
                records: Vec::new(),
                stats: RunStats::default(),
                poisoned: None,
            })),
        })
    }
}

#[derive(Debug)]
enum Inner<'a> {
    Single(Box<Session<'a>>),
    Multi(Box<Multi<'a>>),
}

/// Edge-cut sharded execution of a compiled plan: one planned
/// [`Session`] per vertex shard, halo exchanges in between,
/// bit-identical results to the unsharded session. See the [module
/// docs](self) for the execution model.
#[derive(Debug)]
pub struct ShardedSession<'a> {
    inner: Inner<'a>,
}

impl<'a> ShardedSession<'a> {
    /// Starts a [`ShardedSessionBuilder`]. Defaults: shard count from
    /// `GNNOPT_SHARDS` (else `1`), BFS edge-cut partitioning, the
    /// plan's own policy, [`EnvOverrides::Loud`].
    pub fn builder(plan: &'a ExecutionPlan, graph: &'a Graph) -> ShardedSessionBuilder<'a> {
        ShardedSessionBuilder {
            plan,
            graph,
            shards: None,
            strategy: ShardStrategy::default(),
            policy: None,
            fused: None,
            arena: None,
            env: EnvOverrides::default(),
        }
    }

    /// True when a contained kernel panic poisoned the session — in the
    /// driver itself or in any shard's per-shard [`Session`]. A poisoned
    /// session refuses further steps with [`ExecError::Poisoned`]; its
    /// pools stay consistent and it can be dropped safely. Rebuild from
    /// the same plan to continue.
    pub fn poisoned(&self) -> bool {
        match &self.inner {
            Inner::Single(s) => s.poisoned(),
            Inner::Multi(m) => m.poisoned.is_some() || m.shards.iter().any(Session::poisoned),
        }
    }

    /// The number of shards the session executes over.
    pub fn num_shards(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Multi(m) => m.num_shards(),
        }
    }

    /// Runs the forward kernels across shards and assembles the model
    /// outputs (declaration order) from the owner shards' rows.
    ///
    /// # Errors
    ///
    /// As [`Session::forward`].
    pub fn forward(&mut self, bindings: &Bindings) -> Result<Vec<Tensor>> {
        match &mut self.inner {
            Inner::Single(s) => s.forward(bindings),
            Inner::Multi(m) => {
                m.run_forward_phase(bindings)?;
                m.outputs()
            }
        }
    }

    /// Runs the backward kernels with the given `∂L/∂output` seed and
    /// returns parameter gradients keyed by name — bit-identical to the
    /// unsharded session's.
    ///
    /// # Errors
    ///
    /// As [`Session::backward`].
    pub fn backward(&mut self, seed: Tensor) -> Result<HashMap<String, Tensor>> {
        match &mut self.inner {
            Inner::Single(s) => s.backward(seed),
            Inner::Multi(m) => {
                m.run_backward_phase(seed)?;
                m.grads()
            }
        }
    }

    /// One full training step (forward then backward) without the
    /// output/gradient assembly clones — the steady-state timing entry
    /// point, mirroring [`Session::step`].
    ///
    /// # Errors
    ///
    /// As [`Session::step`].
    pub fn step(&mut self, bindings: &Bindings, seed: &Tensor) -> Result<()> {
        match &mut self.inner {
            Inner::Single(s) => s.step(bindings, seed),
            Inner::Multi(m) => {
                m.run_forward_phase(bindings)?;
                m.run_backward_phase(seed.clone())
            }
        }
    }

    /// Measured statistics of the most recent run, with the sharding
    /// figures ([`RunStats::shards`], [`RunStats::comm_bytes`],
    /// [`RunStats::halo_vertices`], [`RunStats::cut_edges`],
    /// [`RunStats::halo_exchanges`]) filled in.
    pub fn stats(&self) -> RunStats {
        match &self.inner {
            Inner::Single(s) => s.stats(),
            Inner::Multi(m) => m.stats,
        }
    }

    /// Every inter-shard exchange of the most recent step, in execution
    /// order — the per-kernel communication profile. Empty for a
    /// single-shard session.
    pub fn exchanges(&self) -> &[ExchangeRecord] {
        match &self.inner {
            Inner::Single(_) => &[],
            Inner::Multi(m) => &m.records,
        }
    }

    /// Per-shard size figures (one entry per shard).
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        match &self.inner {
            Inner::Single(s) => vec![ShardSummary {
                num_vertices: s.graph().num_vertices(),
                num_edges: s.graph().num_edges(),
                owned_vertices: s.graph().num_vertices(),
                halo_rows: 0,
                arena_bytes: s.memory_plan().arena_bytes,
            }],
            Inner::Multi(m) => m.summaries(),
        }
    }

    /// The vertex partition (`None` for a single-shard session).
    pub fn partition(&self) -> Option<&Partition> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Multi(m) => Some(&m.maps.part),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::{compile, BinaryFn, CompileOptions, Dim, IrGraph, ReduceFn, ScatterFn};
    use gnnopt_graph::generators;

    fn gcn_ir(feat: usize) -> IrGraph {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(feat));
        let w1 = ir.param("w1", feat, feat);
        let x = ir.linear(h, w1).unwrap();
        let e = ir.scatter(ScatterFn::CopyU, x, x).unwrap();
        let v = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, e).unwrap();
        let r = ir.unary(gnnopt_core::UnaryFn::Relu, v).unwrap();
        let w2 = ir.param("w2", feat, feat);
        let x2 = ir.linear(r, w2).unwrap();
        let e2 = ir.scatter(ScatterFn::CopyU, x2, x2).unwrap();
        let y = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, e2).unwrap();
        ir.mark_output(y);
        ir
    }

    fn gat_like_ir(feat: usize) -> IrGraph {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(feat));
        let w = ir.param("w", feat, feat);
        let x = ir.linear(h, w).unwrap();
        let s = ir.scatter(ScatterFn::Bin(BinaryFn::Add), x, x).unwrap();
        let a = ir.edge_softmax(s).unwrap();
        let m = ir.scatter(ScatterFn::CopyU, x, x).unwrap();
        let wm = ir.binary(BinaryFn::Mul, a, m).unwrap();
        let v = ir.gather(ReduceFn::Sum, EdgeGroup::ByDst, wm).unwrap();
        ir.mark_output(v);
        ir
    }

    fn max_ir(feat: usize) -> IrGraph {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(feat));
        let w = ir.param("w", feat, feat);
        let x = ir.linear(h, w).unwrap();
        let e = ir.scatter(ScatterFn::CopyU, x, x).unwrap();
        let v = ir.gather(ReduceFn::Max, EdgeGroup::ByDst, e).unwrap();
        ir.mark_output(v);
        ir
    }

    fn run_pair(ir: &IrGraph, g: &Graph, k: usize, fused: bool) {
        let plan = compile(ir, true, &CompileOptions::ours()).unwrap().plan;
        let mut bindings = Bindings::new();
        let mut col = 0.1f32;
        for n in plan.ir.nodes() {
            let t = match n.kind {
                OpKind::InputVertex => Tensor::from_fn(&[g.num_vertices(), n.dim.total()], |i| {
                    ((i % 13) as f32 - 6.0) * 0.17 + col
                }),
                OpKind::InputEdge => Tensor::from_fn(&[g.num_edges(), n.dim.total()], |i| {
                    ((i % 7) as f32 - 3.0) * 0.29 + col
                }),
                OpKind::Param => Tensor::from_fn(&[n.dim.heads, n.dim.feat], |i| {
                    ((i % 11) as f32 - 5.0) * 0.13 + col
                }),
                _ => continue,
            };
            col += 0.31;
            bindings.insert(&n.name, t);
        }
        let seed = Tensor::from_fn(
            &[
                g.num_vertices(),
                plan.ir.node(plan.ir.outputs()[0]).dim.total(),
            ],
            |i| ((i % 5) as f32 - 2.0) * 0.41,
        );

        let mut plain = Session::builder(&plan, g)
            .policy(ExecPolicy::serial())
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let ref_out = plain.forward(&bindings).unwrap();
        let ref_grads = plain.backward(seed.clone()).unwrap();

        let mut sharded = ShardedSession::builder(&plan, g)
            .shards(k)
            .policy(ExecPolicy::serial())
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        assert_eq!(sharded.num_shards(), k.clamp(1, g.num_vertices()));
        let out = sharded.forward(&bindings).unwrap();
        let grads = sharded.backward(seed).unwrap();

        for (a, b) in ref_out.iter().zip(&out) {
            assert_eq!(a.as_slice(), b.as_slice(), "forward outputs diverge");
        }
        assert_eq!(ref_grads.len(), grads.len());
        for (name, gref) in &ref_grads {
            assert_eq!(
                gref.as_slice(),
                grads[name].as_slice(),
                "gradient of '{name}' diverges"
            );
        }
    }

    #[test]
    fn gcn_matches_unsharded_bit_for_bit() {
        let g = Graph::from_edge_list(&generators::rmat(5, 6, 0.55, 0.2, 0.2, 11));
        for k in [2, 3, 4] {
            run_pair(&gcn_ir(4), &g, k, false);
        }
        run_pair(&gcn_ir(4), &g, 2, true);
    }

    #[test]
    fn softmax_model_matches_unsharded_bit_for_bit() {
        let g = Graph::from_edge_list(&generators::rmat(5, 5, 0.5, 0.25, 0.15, 3));
        for k in [2, 4] {
            run_pair(&gat_like_ir(3), &g, k, false);
        }
        run_pair(&gat_like_ir(3), &g, 3, true);
    }

    #[test]
    fn gather_max_matches_unsharded_bit_for_bit() {
        let g = Graph::from_edge_list(&generators::rmat(5, 4, 0.45, 0.3, 0.15, 7));
        for k in [2, 3] {
            run_pair(&max_ir(3), &g, k, false);
        }
    }

    #[test]
    fn star_and_ring_extremes_match() {
        // Extreme hub: every spoke's edge is cut unless it shares the
        // hub's shard.
        let star = Graph::from_edge_list(&generators::star(17));
        run_pair(&gcn_ir(3), &star, 3, false);
        let ring = Graph::from_edge_list(&generators::ring(12));
        run_pair(&gat_like_ir(2), &ring, 4, false);
    }

    #[test]
    fn shard_count_clamps_and_one_is_plain() {
        let g = Graph::from_edge_list(&generators::ring(6));
        let plan = compile(&gcn_ir(2), false, &CompileOptions::ours())
            .unwrap()
            .plan;
        let s = ShardedSession::builder(&plan, &g)
            .shards(1)
            .policy(ExecPolicy::serial())
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        assert_eq!(s.num_shards(), 1);
        assert!(s.partition().is_none());
        let s = ShardedSession::builder(&plan, &g)
            .shards(99)
            .policy(ExecPolicy::serial())
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        assert_eq!(s.num_shards(), 6, "shard count clamps to |V|");
    }

    #[test]
    fn comm_stats_and_records_are_reported() {
        let g = Graph::from_edge_list(&generators::rmat(5, 5, 0.55, 0.2, 0.2, 5));
        let plan = compile(&gcn_ir(3), true, &CompileOptions::ours())
            .unwrap()
            .plan;
        let mut bindings = Bindings::new();
        bindings.insert("h", Tensor::ones(&[g.num_vertices(), 3]));
        bindings.insert("w1", Tensor::ones(&[3, 3]));
        bindings.insert("w2", Tensor::ones(&[3, 3]));
        let seed = Tensor::ones(&[g.num_vertices(), 3]);
        let mut s = ShardedSession::builder(&plan, &g)
            .shards(2)
            .policy(ExecPolicy::serial())
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        s.step(&bindings, &seed).unwrap();
        let st = s.stats();
        assert_eq!(st.shards, 2);
        assert!(st.cut_edges > 0, "rmat with 2 shards must cut edges");
        assert!(st.halo_vertices > 0);
        assert!(st.comm_bytes > 0);
        assert_eq!(
            st.halo_exchanges,
            s.exchanges().len() as u64,
            "stats count the recorded exchanges"
        );
        // The GCN's weight gradients are global kernels: both gathers
        // and scatters must appear.
        assert!(s
            .exchanges()
            .iter()
            .any(|r| r.kind == ExchangeKind::GlobalGather));
        assert!(s
            .exchanges()
            .iter()
            .any(|r| r.kind == ExchangeKind::VertexHalo && !r.backward));
        let sums = s.shard_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(
            sums.iter().map(|x| x.owned_vertices).sum::<usize>(),
            g.num_vertices()
        );
        assert!(sums.iter().all(|x| x.arena_bytes > 0));
    }

    #[test]
    fn shards_env_parses_loudly() {
        // Mirror the ambient environment rather than mutating it (other
        // tests run concurrently in this process): unset parses to
        // None, a positive integer to Some, anything else errors.
        match std::env::var("GNNOPT_SHARDS") {
            Err(_) => assert_eq!(shards_env().unwrap(), None),
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(k) if k >= 1 => assert_eq!(shards_env().unwrap(), Some(k)),
                _ => assert!(shards_env().is_err()),
            },
        }
    }
}
